#!/usr/bin/env python3
"""Watch p99 interactivity live, window by window, during a big run.

A :class:`repro.telemetry.Telemetry` attachment maintains fixed-memory
windowed streams over the run's lifecycle hooks.  This example subscribes a
window-close callback on the ``interactivity`` stream of a ``cluster_scale``
run and prints each window's sample count and p50/p99 the moment the
simulation clock crosses the window boundary — the "what is p99 right now"
question a QoS controller would ask mid-run, answered in O(window) memory.

At the end, the stream's run-level sketch estimates are pinned against the
exact percentiles the metrics collector computes from every retained sample:
within 1 % relative error on large runs, and always inside the exact order
statistics at a ±1.5 % rank window.

Run with::

    python examples/live_telemetry.py                # full cluster_scale
    python examples/live_telemetry.py --sessions 80 --hours 3   # CI-sized
"""

import argparse
import sys

from repro.api import Simulation
from repro.telemetry import Telemetry

QUANTILES = (0.5, 0.9, 0.99)
RANK_TOLERANCE = 0.015
RELATIVE_TOLERANCE = 0.01
MIN_SAMPLES_FOR_RELATIVE = 1000


def show_window(snapshot) -> None:
    """Print one closed window (the live view a QoS trigger would consume)."""
    if snapshot.count == 0:
        return
    p50 = snapshot.quantiles.get("p50")
    p99 = snapshot.quantiles.get("p99")
    bar = "#" * min(40, snapshot.count)
    print(f"  [{snapshot.start:>8.0f}s..{snapshot.end:>8.0f}s] "
          f"n={snapshot.count:<5} p50={p50:7.3f}s p99={p99:7.3f}s {bar}")


def pin_against_exact(stream_summary, exact_values) -> None:
    """Assert the sketch estimates sit on top of the exact percentiles."""
    ordered = sorted(exact_values)
    n = len(ordered)
    for q in QUANTILES:
        estimate = stream_summary[f"p{q * 100:g}"]
        exact = _exact_percentile(ordered, q)
        low = ordered[max(0, min(n - 1, int((q - RANK_TOLERANCE) * n)))]
        high = ordered[max(0, min(n - 1, int((q + RANK_TOLERANCE) * n)))]
        assert low <= estimate <= high, (
            f"p{q * 100:g}: sketch {estimate} outside exact rank window "
            f"[{low}, {high}]")
        if n >= MIN_SAMPLES_FOR_RELATIVE and exact > 0:
            relative = abs(estimate - exact) / exact
            assert relative <= RELATIVE_TOLERANCE, (
                f"p{q * 100:g}: sketch {estimate} vs exact {exact} "
                f"({relative:.2%} > {RELATIVE_TOLERANCE:.0%})")
        print(f"  p{q * 100:<4g} sketch={estimate:8.4f}s "
              f"exact={exact:8.4f}s  ok")


def _exact_percentile(ordered, q):
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--sessions", type=int, default=None,
                        help="override cluster_scale's session count")
    parser.add_argument("--hours", type=float, default=None,
                        help="override cluster_scale's duration (hours)")
    parser.add_argument("--window", type=float, default=900.0,
                        help="tumbling window length in simulated seconds")
    args = parser.parse_args()

    overrides = {}
    if args.sessions is not None:
        overrides["num_sessions"] = args.sessions
    if args.hours is not None:
        overrides["duration_hours"] = args.hours

    telemetry = Telemetry(window_s=args.window, quantiles=QUANTILES)
    telemetry.on_window("interactivity", show_window)

    print(f"live interactivity windows ({args.window:g} s each):")
    simulation = (Simulation.from_scenario("cluster_scale", **overrides)
                  .with_telemetry(telemetry))
    result = simulation.run()

    report = telemetry.last
    overall = report.overall("interactivity")
    print(f"\nrun complete: {overall['count']} interactivity samples in "
          f"{len(report.windows('interactivity'))} windows "
          f"(simulated {report.sim_time_s:,.0f} s)")

    exact_values = [t.interactivity_delay for t in result.collector.tasks
                    if t.interactivity_delay is not None]
    assert overall["count"] == len(exact_values), (
        "stream and collector disagree on sample count")
    print("pinning stream sketch against the collector's exact percentiles:")
    pin_against_exact(overall, exact_values)
    print("\nlive telemetry OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
