#!/usr/bin/env python3
"""Compare NotebookOS against the paper's baselines on the same workload.

Replays one AdobeTrace-style excerpt under all four scheduling policies —
Reservation, Batch, NotebookOS, and NotebookOS (LCP) — and prints the
trade-off the paper's evaluation revolves around: GPU-hours provisioned
versus interactivity.

The four runs go through the ``repro.api`` façade's sweep machinery: pass
``--workers 4`` to run the policies in parallel processes, and re-run the
script to be served from the on-disk result store (``.repro_results/`` by
default; results are identical either way).

Run with::

    python examples/policy_comparison.py [--sessions N] [--hours H] [--workers W]
"""

import argparse

from repro.api import ResultStore, SweepGrid, run_specs

POLICIES = ("reservation", "batch", "notebookos", "lcp")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=60,
                        help="number of notebook sessions (default 60; at very "
                             "small scales the replicated kernels' fixed floor "
                             "dominates and NotebookOS saves little)")
    parser.add_argument("--hours", type=float, default=6.0,
                        help="trace duration in hours (default 6)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the 4 policy runs")
    parser.add_argument("--no-store", action="store_true",
                        help="do not read or write the on-disk result store")
    args = parser.parse_args()

    grid = SweepGrid(scenario="excerpt", policies=POLICIES, seeds=(args.seed,),
                     generator_grid={"num_sessions": [args.sessions],
                                     "duration_hours": [args.hours]})
    store = None if args.no_store else ResultStore()
    outcomes = run_specs(grid.expand(), workers=args.workers, store=store,
                         progress=print)
    results = {outcome.spec.policy: outcome.result for outcome in outcomes}

    trace_tasks = sum(len(r.collector.tasks) for r in results.values()) // len(results)
    print(f"\nWorkload: {args.sessions} sessions, ~{trace_tasks} cell tasks, "
          f"{args.hours:.1f} hours")

    header = (f"{'policy':<14}{'GPU-hours':>12}{'saved vs Res.':>15}"
              f"{'interact p50 (s)':>18}{'interact p95 (s)':>18}{'TCT p50 (s)':>13}"
              f"{'migrations':>12}")
    print("\n" + header)
    print("-" * len(header))
    reservation_hours = results["reservation"].provisioned_gpu_hours
    for policy in POLICIES:
        result = results[policy]
        interactivity = result.interactivity_cdf
        tct = result.tct_cdf
        print(f"{policy:<14}"
              f"{result.provisioned_gpu_hours:>12.1f}"
              f"{reservation_hours - result.provisioned_gpu_hours:>15.1f}"
              f"{interactivity.percentile(0.5):>18.2f}"
              f"{interactivity.percentile(0.95):>18.2f}"
              f"{tct.percentile(0.5):>13.1f}"
              f"{result.migration_count():>12d}")

    if store is not None:
        print(f"\nresult store: {store.hits}/{len(outcomes)} cache hits "
              f"({store.root.resolve()})")
    print("\nExpected shape (paper, Figures 8 and 9): Batch provisions the fewest "
          "GPUs but has the worst interactivity; Reservation has the best "
          "interactivity but the highest cost; NotebookOS matches Reservation's "
          "interactivity at a fraction of the GPU hours; LCP trades a little "
          "interactivity for slightly fewer GPUs.")


if __name__ == "__main__":
    main()
