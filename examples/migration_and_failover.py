#!/usr/bin/env python3
"""Exercise the executor election, replica migration, and failure handling.

This example builds a deliberately over-constrained cluster (three 8-GPU
servers) and a burst of sessions that all want 8 GPUs at once.  With GPUs
oversubscribed, some executor elections fail (every replica yields), forcing
the Global Scheduler to migrate replicas to scaled-out servers — the §3.2.3
machinery — with state handed off through the distributed data store.

The run is assembled through the ``repro.api`` façade: an explicit trace, an
explicit (undersized) cluster configuration, and a ``MIGRATION`` lifecycle
hook that observes every replica move as it happens — no platform wiring,
no core edits.

Run with::

    python examples/migration_and_failover.py
"""

from repro.api import MIGRATION, Simulation
from repro.core import ClusterConfig, PlatformConfig
from repro.metrics.collector import EventKind
from repro.workload import SessionTrace, TaskRecord, Trace


def build_contended_trace(num_sessions: int = 6) -> Trace:
    """Sessions that all submit 8-GPU training cells at nearly the same time."""
    sessions = []
    code = ("model = build_model()\n"
            "for epoch in range(3):\n"
            "    loss = train_epoch(model, loader, optimizer)\n"
            "    history.append(loss)\n")
    for index in range(num_sessions):
        tasks = [TaskRecord(session_id=f"s{index}", submit_time=120.0 + step * 900.0,
                            duration=420.0, gpus=8, code=code, task_index=step)
                 for step in range(2)]
        sessions.append(SessionTrace(session_id=f"s{index}", user_id=f"user-{index}",
                                     start_time=0.0, end_time=3 * 3600.0,
                                     gpus_requested=8, tasks=tasks))
    return Trace(name="contended", sessions=sessions)


def main() -> None:
    trace = build_contended_trace()
    cluster_config = ClusterConfig(initial_hosts=3, max_hosts=12)
    live_migrations = []
    simulation = (
        Simulation.from_trace(trace)
        .with_policy("notebookos")
        .with_config(
            cluster_config=cluster_config,
            platform_config=PlatformConfig(scaling_buffer_hosts=0,
                                           autoscaler_interval_s=30.0))
        .on(MIGRATION, lambda t, kernel, src, dst:
            live_migrations.append((t, kernel, src, dst))))

    print(f"Cluster: {cluster_config.initial_hosts} hosts x "
          f"{cluster_config.host_spec.num_gpus} GPUs, "
          f"{len(trace)} sessions each requesting 8 GPUs\n")
    result = simulation.run()
    platform = simulation.platform

    migrations = result.collector.events_of_kind(EventKind.KERNEL_MIGRATION)
    scale_outs = result.collector.events_of_kind(EventKind.SCALE_OUT)
    assert len(live_migrations) == len(migrations), \
        "the MIGRATION hook and the metrics collector must agree"
    print(f"Completed tasks      : {len(result.collector.completed_tasks())}"
          f" / {trace.total_task_count}")
    print(f"Kernel migrations    : {len(migrations)} "
          f"(all {len(live_migrations)} also observed live via the hook bus)")
    print(f"Scale-out operations : {len(scale_outs)}")
    print(f"Final cluster size   : {len(platform.cluster.active_hosts)} hosts")
    print(f"Aborted migrations   : {platform.global_scheduler.migrations_aborted}")
    print("\nMigration events:")
    for time, kernel, source, target in live_migrations[:10]:
        print(f"  t={time / 60.0:7.1f} min  {kernel}: {source} -> {target}")

    interactivity = result.interactivity_cdf
    print("\nInteractivity delay (s): "
          f"p50={interactivity.percentile(0.5):.2f}  "
          f"p95={interactivity.percentile(0.95):.2f}  "
          f"max={interactivity.summary()['max']:.2f}")
    print("The tail comes from elections that failed (all replicas yielded) and "
          "had to wait for a migration or a scale-out — exactly the behaviour "
          "the paper describes for an oversubscribed cluster (§5.3.3).")


if __name__ == "__main__":
    main()
