#!/usr/bin/env python3
"""Close the loop: a QoS target that fights a host-failure storm.

The ``failure_storm`` scenario runs the ``cluster_scale`` workload shape on
a deliberately tight cluster while a chaos process kills one random GPU
server every 10 simulated minutes.  This example attaches the
``repro.qos`` control plane with a single declarative target —

    p99 interactivity over 300 s windows must stay below 60 s

— wired to the ``autoscaler_override`` action: on breach, the controller
raises the auto-scaler's minimum-host floor by two hosts and freezes
scale-in for 15 simulated minutes, so backfill outruns the storm.

Everything the controller does is observable through three lifecycle hook
topics (``qos_breach``, ``qos_action``, ``qos_recover``) and the
``RUN_END`` ``stats["qos"]`` summary; this example prints the full
breach/action/recovery timeline and checks that the loop actually closed —
at least one breach led to an action led to a recovery.

Run with::

    python examples/qos_control.py
"""

from repro.api import (
    QOS_ACTION,
    QOS_BREACH,
    QOS_RECOVER,
    RUN_END,
    Simulation,
)

TARGET = "interactivity:p99>60:autoscaler_override,extra_hosts=2,hold_s=900"
WINDOW_S = 300.0


def main() -> None:
    timeline = []
    qos_stats = {}

    def on_breach(time, name, detail):
        timeline.append((time, "breach", name, detail))

    def on_action(time, name, action, detail):
        timeline.append((time, "action", f"{name} -> {action}", detail))

    def on_recover(time, name, detail):
        timeline.append((time, "recover", name, detail))

    simulation = (
        Simulation.from_scenario("failure_storm")
        .with_qos(TARGET, window_s=WINDOW_S)
        .on(QOS_BREACH, on_breach)
        .on(QOS_ACTION, on_action)
        .on(QOS_RECOVER, on_recover)
        .on(RUN_END, lambda p, r, stats: qos_stats.update(stats.get("qos", {}))))
    result = simulation.run()
    platform = simulation.platform

    summary = result.summary()
    print(f"failure_storm under QoS control "
          f"(target: {TARGET.split(':', 1)[0]} p99 < 60s)")
    print(f"tasks completed : {summary['tasks_completed']}")
    print(f"interact p50    : {summary['interactivity_p50_s']:.2f}s")
    print(f"host failures   : {len(platform.chaos_log)} "
          f"(final cluster: {platform.cluster.active_host_count} hosts)")

    print(f"\nControl-loop timeline ({len(timeline)} events):")
    for time, kind, what, detail in timeline:
        extra = ""
        if "value" in detail:
            extra = (f"  {detail['stat']}={detail['value']:.2f} "
                     f"(threshold {detail['threshold']:g})")
        print(f"  t={time / 60.0:6.1f} min  {kind:<7} {what}{extra}")

    print("\nPer-target summary:")
    for name, entry in sorted(qos_stats.get("targets", {}).items()):
        print(f"  {name}: breaches={entry['breaches']} "
              f"recoveries={entry['recoveries']} "
              f"actions={entry['actions_fired']} ({entry['action']}) "
              f"final={entry['final_state']}")

    # The loop must demonstrably close: breach -> action -> recovery, in
    # that order, all present both on the hook bus and in stats["qos"].
    kinds = [kind for _, kind, _, _ in timeline]
    assert "breach" in kinds, "the storm must breach the target at least once"
    assert "action" in kinds, "every breach must fire the configured action"
    assert "recover" in kinds, "the mitigation must bring the target back"
    assert kinds.index("breach") < kinds.index("action") < kinds.index("recover"), \
        "the loop must close in breach -> action -> recover order"
    target_stats = next(iter(qos_stats["targets"].values()))
    assert target_stats["breaches"] >= 1
    assert target_stats["actions_fired"] >= 1
    assert target_stats["recoveries"] >= 1
    assert len(qos_stats["timeline"]) == len(timeline), \
        "stats timeline and hook timeline must agree"
    print("\nLoop closed: breach -> action -> recovery, with the hook "
          "timeline and RUN_END stats in agreement.")


if __name__ == "__main__":
    main()
