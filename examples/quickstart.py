#!/usr/bin/env python3
"""Quickstart: run a small IDLT workload on NotebookOS and print the results.

Everything goes through the ``repro.api`` façade: a :class:`Simulation` is
built from a generated trace, a policy is selected by registry name, and a
lifecycle hook counts scale-out events live — without touching any core
code.  The run replays a two-hour AdobeTrace-style workload with 15 notebook
sessions and prints the headline metrics: interactivity delay, task
completion time, provisioned GPU hours, migrations, and scale-out
operations.

Run with::

    python examples/quickstart.py
"""

from repro.api import SCALE_OUT, Simulation
from repro.workload import AdobeTraceGenerator


def main() -> None:
    print("Generating a 2-hour IDLT workload with 15 notebook sessions...")
    trace = AdobeTraceGenerator(seed=42, num_sessions=15,
                                duration_hours=2.0).generate()
    print(f"  sessions: {len(trace)}   cell tasks: {trace.total_task_count}")

    print("\nReplaying the workload on NotebookOS (replicated kernels, "
          "on-demand GPUs)...")
    scale_outs = []
    simulation = (Simulation.from_trace(trace)
                  .with_policy("notebookos")
                  .with_seed(42)
                  .on(SCALE_OUT, lambda t, hosts, reason:
                      scale_outs.append((t, hosts, reason))))
    result = simulation.run()

    summary = result.summary()
    print("\nResults")
    print("-" * 60)
    for key, value in summary.items():
        print(f"  {key:35s} {value}")

    interactivity = result.interactivity_cdf
    print("\nInteractivity delay percentiles (seconds)")
    print("-" * 60)
    for q in (0.50, 0.90, 0.95, 0.99):
        print(f"  p{int(q * 100):<4d} {interactivity.percentile(q):10.3f}")

    if scale_outs:
        t, hosts, reason = scale_outs[0]
        print(f"\nLifecycle hooks saw {len(scale_outs)} scale-out events; the "
              f"first added {hosts} host(s) at t={t / 60.0:.1f} min ({reason}).")
    print(f"Final cluster size: "
          f"{simulation.platform.cluster.active_host_count} hosts.")

    print("\nThe executor election committed GPUs immediately for "
          f"{result.collector.immediate_commit_fraction():.1%} of requests and "
          f"reused the previous executor {result.collector.same_executor_fraction():.1%} "
          "of the time (the paper reports 89.6% / 89.45%).")


if __name__ == "__main__":
    main()
