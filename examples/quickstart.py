#!/usr/bin/env python3
"""Quickstart: run a small IDLT workload on NotebookOS and print the results.

This example generates a two-hour AdobeTrace-style workload with 15 notebook
sessions, replays it on the simulated NotebookOS platform, and prints the
headline metrics: interactivity delay, task completion time, provisioned GPU
hours, migrations, and scale-out operations.

Run with::

    python examples/quickstart.py
"""

from repro import run_experiment
from repro.workload import AdobeTraceGenerator


def main() -> None:
    print("Generating a 2-hour IDLT workload with 15 notebook sessions...")
    trace = AdobeTraceGenerator(seed=42, num_sessions=15,
                                duration_hours=2.0).generate()
    print(f"  sessions: {len(trace)}   cell tasks: {trace.total_task_count}")

    print("\nReplaying the workload on NotebookOS (replicated kernels, "
          "on-demand GPUs)...")
    result = run_experiment(trace, policy="notebookos", seed=42)

    summary = result.summary()
    print("\nResults")
    print("-" * 60)
    for key, value in summary.items():
        print(f"  {key:35s} {value}")

    interactivity = result.interactivity_cdf
    print("\nInteractivity delay percentiles (seconds)")
    print("-" * 60)
    for q in (0.50, 0.90, 0.95, 0.99):
        print(f"  p{int(q * 100):<4d} {interactivity.percentile(q):10.3f}")

    print("\nThe executor election committed GPUs immediately for "
          f"{result.collector.immediate_commit_fraction():.1%} of requests and "
          f"reused the previous executor {result.collector.same_executor_fraction():.1%} "
          "of the time (the paper reports 89.6% / 89.45%).")


if __name__ == "__main__":
    main()
