#!/usr/bin/env python3
"""Reproduce the §2.3 workload analysis that motivates NotebookOS.

Generates synthetic Adobe-, Philly-, and Alibaba-style traces from the
percentile statistics published in the paper and prints the three
observations that motivate the system:

1. IDLT tasks are very short (75 % finish within 5 minutes);
2. IDLT tasks arrive rarely (75 % of IATs are at most 8 minutes, far longer
   than in BDLT traces);
3. reserved GPUs are idle the vast majority of the time.

Run with::

    python examples/workload_characterization.py
"""

from repro.workload import (
    AdobeTraceGenerator,
    AlibabaTraceGenerator,
    PhillyTraceGenerator,
    characterize_trace,
)


def main() -> None:
    print("Generating synthetic traces calibrated to the published percentiles...")
    traces = {
        "AdobeTrace (IDLT)": AdobeTraceGenerator.characterization_preset(
            seed=3, num_sessions=120, duration_hours=24.0 * 10).generate(),
        "PhillyTrace (BDLT)": PhillyTraceGenerator(
            seed=3, num_sessions=120, duration_hours=24.0 * 10).generate(),
        "AlibabaTrace (BDLT)": AlibabaTraceGenerator(
            seed=3, num_sessions=120, duration_hours=24.0 * 10).generate(),
    }

    characterizations = {name: characterize_trace(trace, timeline_samples=150)
                         for name, trace in traces.items()}

    print(f"\n{'trace':<22}{'dur p50 (s)':>12}{'dur p75 (s)':>12}"
          f"{'IAT p50 (s)':>12}{'IAT p75 (s)':>12}")
    print("-" * 70)
    for name, character in characterizations.items():
        summary = character.summary()
        print(f"{name:<22}{summary['duration_p50']:>12.0f}"
              f"{summary['duration_p75']:>12.0f}"
              f"{summary['iat_p50']:>12.0f}{summary['iat_p75']:>12.0f}")
    print("\nPaper reference: duration p50 = 120 / 621 / 957 s and IAT p50 = "
          "300 / 44 / 38 s for Adobe / Philly / Alibaba.")

    adobe = characterizations["AdobeTrace (IDLT)"]
    print("\nGPU utilization of the IDLT trace (Observation 3):")
    print(f"  reserved GPU time idle          : "
          f"{adobe.fraction_reserved_gpu_time_idle():.1%}  (paper: > 81%)")
    print(f"  sessions using GPUs <= 5% of life: "
          f"{adobe.fraction_sessions_with_low_usage(0.05):.1%}  (paper: 74-75%)")
    print(f"  sessions with zero GPU usage     : "
          f"{adobe.fraction_sessions_with_low_usage(0.0):.1%}  (paper: ~70%)")


if __name__ == "__main__":
    main()
