#!/usr/bin/env python3
"""Inject host failures mid-run and watch the platform heal itself.

The failure storm is a first-class platform feature: setting
:attr:`PlatformConfig.host_failure_interval_s` spawns
:func:`repro.core.chaos.chaos_process` alongside the workload.  Every few
simulated minutes it picks a random active GPU server (from the platform's
own seeded ``"chaos"`` substream, so the victim sequence is a pure function
of the run seed), fails every kernel replica hosted there (§3.2.5 — each is
recreated from persisted state on another host via the Global Scheduler's
placement path), and decommissions the dead server.  The auto-scaler then
provisions replacements as demand requires.  Because replica recreation
rides the same batched request path as kernel creation, this exercises the
fused replica-start chains under churn.

Everything observable arrives through the ``repro.api`` lifecycle
:class:`~repro.api.HookBus` — placement decisions, scale events, and the
discrete ``replica_failure`` platform events — plus the platform's
``chaos_log`` of executed failures; the final consistency checks pin the
hook counts against the metrics collector.

The same stressor is registered as the ``failure_storm`` scenario::

    python -m repro.experiments run failure_storm

Run with::

    python examples/failure_injection.py
"""

from repro.api import (
    PLACEMENT_DECISION,
    PLATFORM_EVENT,
    SCALE_IN,
    SCALE_OUT,
    Simulation,
)
from repro.core import ClusterConfig, PlatformConfig
from repro.metrics.collector import EventKind
from repro.workload import SessionTrace, TaskRecord, Trace

FAILURE_INTERVAL_S = 600.0      # one host failure every 10 simulated minutes
MIN_SURVIVING_HOSTS = 2


def build_steady_trace(num_sessions: int = 8, hours: float = 2.0) -> Trace:
    """Long-lived sessions that train periodically — churn fodder."""
    sessions = []
    code = ("for epoch in range(2):\n"
            "    loss = train_epoch(model, loader, optimizer)\n"
            "    history.append(loss)\n")
    for index in range(num_sessions):
        tasks = [TaskRecord(session_id=f"s{index}",
                            submit_time=180.0 + index * 37.0 + step * 1200.0,
                            duration=300.0, gpus=2, code=code, task_index=step)
                 for step in range(4)]
        sessions.append(SessionTrace(
            session_id=f"s{index}", user_id=f"user-{index}",
            start_time=index * 11.0, end_time=hours * 3600.0,
            gpus_requested=2, tasks=tasks))
    return Trace(name="failure-injection", sessions=sessions)


def main() -> None:
    trace = build_steady_trace()
    counts = {"placements": 0, "scale_out_hosts": 0, "scale_in_hosts": 0,
              "replica_failures": 0}

    def on_platform_event(time, kind, detail):
        if kind == EventKind.REPLICA_FAILURE:
            counts["replica_failures"] += 1

    simulation = (
        Simulation.from_trace(trace)
        .with_policy("notebookos")
        .with_seed(11)
        .with_config(
            cluster_config=ClusterConfig(initial_hosts=4, max_hosts=10),
            platform_config=PlatformConfig(
                autoscaler_interval_s=120.0,
                host_failure_interval_s=FAILURE_INTERVAL_S,
                min_surviving_hosts=MIN_SURVIVING_HOSTS))
        .on(PLACEMENT_DECISION,
            lambda t, kernel_id, decision:
            counts.__setitem__("placements", counts["placements"] + 1))
        .on(SCALE_OUT,
            lambda t, hosts, reason:
            counts.__setitem__("scale_out_hosts",
                               counts["scale_out_hosts"] + hosts))
        .on(SCALE_IN,
            lambda t, hosts:
            counts.__setitem__("scale_in_hosts",
                               counts["scale_in_hosts"] + hosts))
        .on(PLATFORM_EVENT, on_platform_event))

    platform = simulation.build(trace)
    result = platform.run_workload(trace)
    failures = platform.chaos_log

    collector = result.collector
    print(f"Sessions: {len(trace)}, tasks completed: "
          f"{len(collector.completed_tasks())} / {trace.total_task_count}")
    print(f"\nInjected host failures ({len(failures)}):")
    for time, host_id, replicas in failures:
        print(f"  t={time / 60.0:6.1f} min  {host_id} failed "
              f"({replicas} replica{'s' if replicas != 1 else ''} recreated)")
    print(f"\nReplica failures handled : {counts['replica_failures']}")
    print(f"Placement decisions      : {counts['placements']}")
    print(f"Hosts scaled out         : {counts['scale_out_hosts']}")
    print(f"Hosts scaled in          : {counts['scale_in_hosts']}")
    print(f"Final cluster size       : {platform.cluster.active_host_count} hosts")

    # The hook bus and the collector must tell the same story.
    recorded = len(collector.events_of_kind(EventKind.REPLICA_FAILURE))
    assert counts["replica_failures"] == recorded, \
        f"hook saw {counts['replica_failures']} failures, collector {recorded}"
    # Every handled replica surfaces as a replica_failure event.  The last
    # storm round can be cut short when the workload drains mid-recovery, so
    # the hook count may trail the log by at most that round's replicas.
    doomed_total = sum(n for _, _, n in failures)
    last_round = failures[-1][2] if failures else 0
    assert doomed_total - last_round <= counts["replica_failures"] <= doomed_total, \
        (f"hook saw {counts['replica_failures']} replica failures, chaos log "
         f"doomed {doomed_total} (last round {last_round})")
    assert len(collector.completed_tasks()) == trace.total_task_count, \
        "the platform must finish the workload despite the injected failures"
    print("\nConsistency checks passed: hook counts match the collector, and "
          "every task completed despite the churn.")


if __name__ == "__main__":
    main()
