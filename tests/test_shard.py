"""Tests for repro.shard — partition, barriers, merge, and bit-identity.

The load-bearing guarantees, in increasing order of integration:

* the session partition is a deterministic round-robin that preserves
  every session and each shard's original trace order;
* the barrier schedule is derived by multiplication (never accumulation)
  and ends exactly at the horizon;
* frame merging and result merging are pure, order-stable functions of
  their inputs in shard order;
* ``num_shards=1`` is byte-identical to a plain serial run (the frozen
  reference path);
* for any K, in-process serial execution and one-process-per-shard
  parallel execution produce byte-identical merged collectors;
* a shard failing mid-epoch tears the run down with a diagnosable error
  instead of hanging the barrier.
"""

import hashlib
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.timeline import Timeline
from repro.api import RunSpec, Simulation
from repro.metrics.collector import ExperimentResult
from repro.shard import (
    GlobalFrame,
    ShardContext,
    ShardExecutionError,
    ShardFrame,
    ShardPlan,
    merge_results,
    partition_sessions,
    run_sharded,
    shard_traces,
)
from repro.shard.merge import (
    merge_timelines_sum,
    merge_timelines_weighted_mean,
)
from repro.shard.plan import default_epoch_s
from repro.shard.runner import _drive_serial
from repro.workload.trace import SessionTrace, Trace


def _digest(result: ExperimentResult) -> str:
    payload = json.dumps(result.collector.to_dict(), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def _sessions(count: int, seed: int = 0) -> list:
    import random

    rng = random.Random(seed)
    sessions = []
    for i in range(count):
        start = rng.uniform(0, 10_000)
        sessions.append(SessionTrace(
            session_id=f"s{i:04d}", user_id=f"u{i % 7}", start_time=start,
            end_time=start + rng.uniform(100, 5_000),
            gpus_requested=rng.choice([1, 2, 4, 8])))
    return sessions


# ----------------------------------------------------------------------
# Partition properties.
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(count=st.integers(0, 120), num_shards=st.integers(1, 9),
       seed=st.integers(0, 1000))
def test_partition_preserves_and_balances(count, num_shards, seed):
    sessions = _sessions(count, seed)
    parts = partition_sessions(sessions, num_shards)
    assert len(parts) == num_shards
    # Every session lands on exactly one shard.
    merged = [s.session_id for part in parts for s in part]
    assert sorted(merged) == sorted(s.session_id for s in sessions)
    # Round-robin over arrival order balances to within one session.
    sizes = [len(part) for part in parts]
    assert max(sizes) - min(sizes) <= 1
    # Within a shard, original trace order is preserved (the platform
    # creates session processes in trace order; bit-identity depends on it).
    index = {s.session_id: i for i, s in enumerate(sessions)}
    for part in parts:
        ranks = [index[s.session_id] for s in part]
        assert ranks == sorted(ranks)


@settings(max_examples=20, deadline=None)
@given(count=st.integers(1, 60), num_shards=st.integers(1, 6),
       seed=st.integers(0, 100))
def test_partition_is_deterministic(count, num_shards, seed):
    sessions = _sessions(count, seed)
    once = partition_sessions(sessions, num_shards)
    twice = partition_sessions(list(sessions), num_shards)
    assert [[s.session_id for s in part] for part in once] == \
           [[s.session_id for s in part] for part in twice]


def test_shard_traces_names_and_interval():
    trace = Trace(name="toy", sessions=_sessions(10), sample_interval=30.0)
    subs = shard_traces(trace, 3)
    assert [t.name for t in subs] == [
        "toy[shard 0/3]", "toy[shard 1/3]", "toy[shard 2/3]"]
    assert all(t.sample_interval == 30.0 for t in subs)
    assert sum(len(t.sessions) for t in subs) == 10


# ----------------------------------------------------------------------
# Plan / barrier schedule.
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(horizon=st.floats(1.0, 1e7), epoch=st.floats(1.0, 1e5))
def test_barrier_schedule_covers_horizon(horizon, epoch):
    trace = Trace(name="toy", sessions=_sessions(4))
    plan = ShardPlan.from_trace(trace, 2, epoch_s=epoch, horizon=horizon)
    barriers = plan.barrier_times
    assert barriers[-1] == horizon
    assert list(barriers) == sorted(set(barriers))  # strictly increasing
    # Every interior barrier is an exact multiple of the epoch (derived by
    # multiplication, so all processes agree on the floats bit-for-bit).
    for k, barrier in enumerate(barriers[:-1]):
        assert barrier == (k + 1) * plan.epoch_s
        assert barrier < horizon


def test_plan_round_trips_and_default_epoch():
    trace = Trace(name="toy", sessions=_sessions(12))
    plan = ShardPlan.from_trace(trace, 4)
    assert plan == ShardPlan.from_dict(plan.to_dict())
    assert plan.num_epochs == len(plan.barrier_times)
    assert default_epoch_s(0.0) == 60.0
    assert default_epoch_s(3600.0) == 60.0          # clamped up
    assert default_epoch_s(64 * 3600.0) == 1800.0   # clamped down
    assert default_epoch_s(64 * 600.0) == 600.0     # horizon / 64


# ----------------------------------------------------------------------
# Frame merge and the mailbox.
# ----------------------------------------------------------------------
def _frame(shard, epoch=0, time=60.0, **overrides):
    frame = ShardFrame(shard=shard, epoch=epoch, time=time, dispatched=10,
                       active_hosts=5, total_gpus=40, committed_gpus=8,
                       subscribed_gpus=16, idle_gpu_histogram={8: 3, 4: 2},
                       sessions_active=4)
    for key, value in overrides.items():
        setattr(frame, key, value)
    return frame


def test_global_frame_merges_aggregates_and_routes_messages():
    frames = [
        _frame(0, messages=[(1, {"kind": "hint"})]),
        _frame(1, idle_gpu_histogram={8: 1}, messages=[(0, {"kind": "ack"}),
                                                       (1, {"kind": "self"})]),
    ]
    merged = GlobalFrame.merge(frames)
    assert merged.active_hosts == 10
    assert merged.total_gpus == 80
    assert merged.committed_gpus == 16
    assert merged.idle_gpu_histogram == {8: 4, 4: 2}
    assert merged.sessions_active == 8
    assert merged.deliveries[1] == [{"kind": "hint"}, {"kind": "self"}]
    assert merged.deliveries[0] == [{"kind": "ack"}]
    # Round-trips through the wire format used by the parallel driver.
    assert GlobalFrame.from_dict(merged.to_dict()).to_dict() == merged.to_dict()


def test_global_frame_merge_rejects_barrier_skew():
    with pytest.raises(ValueError, match="skew"):
        GlobalFrame.merge([_frame(0, epoch=1), _frame(1, epoch=2)])


def test_shard_context_mailbox_and_stats():
    context = ShardContext(0, 2)
    context.send(1, {"kind": "hint"})
    with pytest.raises(ValueError):
        context.send(7, {"kind": "lost"})
    frame = context.make_frame(0, 60.0, dispatched=5,
                               aggregate={"active_hosts": 1, "total_gpus": 8,
                                          "committed_gpus": 0,
                                          "subscribed_gpus": 0},
                               idle_gpu_histogram={8: 1}, sessions_active=1)
    assert frame.messages == [[1, {"kind": "hint"}]]

    other = ShardContext(1, 2)
    peer = other.make_frame(0, 60.0, dispatched=3,
                            aggregate={"active_hosts": 1, "total_gpus": 8,
                                       "committed_gpus": 0,
                                       "subscribed_gpus": 0},
                            idle_gpu_histogram={8: 1}, sessions_active=1)
    merged = GlobalFrame.merge([frame, peer])
    other.absorb_global(merged)
    assert other.drain_inbox() == [{"kind": "hint"}]
    assert other.drain_inbox() == []
    stats = other.stats_payload()
    assert stats["epochs"] == 1
    assert stats["messages_received"] == 1
    assert stats["dispatched_per_epoch"] == [3]


# ----------------------------------------------------------------------
# Timeline merge combinators.
# ----------------------------------------------------------------------
def test_merge_timelines_sum_is_stepwise():
    a = Timeline("x")
    a.record(0.0, 1.0)
    a.record(10.0, 3.0)
    b = Timeline("x")
    b.record(5.0, 2.0)
    merged = merge_timelines_sum("x", [a, b])
    # Before b's first sample it contributes 0; after, the step values add.
    assert merged.points == [(0.0, 1.0), (5.0, 3.0), (10.0, 5.0)]


def test_merge_timelines_weighted_mean():
    values = [Timeline("sr"), Timeline("sr")]
    weights = [Timeline("hosts"), Timeline("hosts")]
    values[0].record(0.0, 2.0)
    weights[0].record(0.0, 3.0)
    values[1].record(0.0, 1.0)
    weights[1].record(0.0, 1.0)
    merged = merge_timelines_weighted_mean("sr", values, weights)
    assert merged.points == [(0.0, (2.0 * 3 + 1.0 * 1) / 4)]
    # Zero total weight falls back to the plain mean instead of dividing.
    zero_w = [Timeline("hosts"), Timeline("hosts")]
    merged = merge_timelines_weighted_mean("sr", values, zero_w)
    assert merged.points == [(0.0, 1.5)]


def test_merge_results_validations():
    with pytest.raises(ValueError):
        merge_results([], trace_name="x")
    spec = RunSpec.from_scenario("smoke", seed=7)
    result = Simulation.from_spec(spec).run()
    other = ExperimentResult.from_dict(result.to_dict())
    other.policy = "different"
    with pytest.raises(ValueError, match="policies"):
        merge_results([result, other], trace_name="x")


# ----------------------------------------------------------------------
# Bit-identity: reference path, serial vs parallel, sketch mode.
# ----------------------------------------------------------------------
def test_single_shard_is_byte_identical_to_plain_run():
    spec = RunSpec.from_scenario("smoke", seed=7)
    plain = Simulation.from_spec(spec).run()
    sharded = run_sharded(spec, 1)
    assert sharded.mode == "reference"
    assert _digest(sharded.result) == _digest(plain)


@settings(max_examples=3, deadline=None)
@given(num_shards=st.integers(2, 4), seed=st.sampled_from([7, 11]))
def test_serial_and_parallel_sharding_are_byte_identical(num_shards, seed):
    spec = RunSpec.from_scenario("smoke", seed=seed)
    serial = run_sharded(spec, num_shards, parallel=False)
    parallel = run_sharded(spec, num_shards, parallel=True)
    assert serial.mode == "serial" and parallel.mode == "parallel"
    assert _digest(serial.result) == _digest(parallel.result)
    # Determinism across repeated parallel runs, too.
    again = run_sharded(spec, num_shards, parallel=True)
    assert _digest(again.result) == _digest(parallel.result)
    # Shard payloads carry the barrier accounting.
    for index, payload in enumerate(parallel.shard_payloads):
        stats = payload["shard"]
        assert stats["index"] == index
        assert stats["epochs"] == len(stats["dispatched_per_epoch"])
        assert payload["memory"]["peak_rss_bytes"] > 0


def test_sharded_run_merges_the_full_workload():
    spec = RunSpec.from_scenario("smoke", seed=7)
    plain = Simulation.from_spec(spec).run()
    sharded = run_sharded(spec, 2, parallel=False)
    assert sharded.result.trace_name == plain.trace_name
    assert len(sharded.result.collector.tasks) == len(plain.collector.tasks)
    # Task stream is time-merged.
    submitted = [t.submitted_at for t in sharded.result.collector.tasks]
    assert submitted == sorted(submitted)
    events = [e.time for e in sharded.result.collector.events]
    assert events == sorted(events)


def test_sketch_mode_sharding_is_byte_identical_across_modes():
    spec = RunSpec.from_scenario("smoke", seed=7)
    serial = run_sharded(spec, 2, parallel=False, sketch=True)
    parallel = run_sharded(spec, 2, parallel=True, sketch=True)
    assert serial.result.collector.sketch_mode
    assert _digest(serial.result) == _digest(parallel.result)


# ----------------------------------------------------------------------
# Failure handling.
# ----------------------------------------------------------------------
class _FailingRuntime:
    """Stands in for a ShardRuntime that dies mid-epoch."""

    def __init__(self, fail_epoch):
        self.fail_epoch = fail_epoch
        self.aborted = False

    def setup(self):
        pass

    def step_epoch(self, epoch, time):
        if epoch >= self.fail_epoch:
            raise RuntimeError("shard blew up mid-epoch")
        return _frame(0, epoch=epoch, time=time)

    def absorb(self, frame):
        pass

    def abort(self):
        self.aborted = True


def test_serial_driver_tears_down_on_mid_epoch_failure():
    trace = Trace(name="toy", sessions=_sessions(4))
    plan = ShardPlan.from_trace(trace, 2, epoch_s=60.0, horizon=600.0)
    healthy = _FailingRuntime(fail_epoch=10_000)
    failing = _FailingRuntime(fail_epoch=2)
    # Frames must agree on shard index for the merge; patch them apart.
    healthy.step_epoch = lambda e, t: _frame(0, epoch=e, time=t)
    with pytest.raises(RuntimeError, match="mid-epoch"):
        _drive_serial([healthy, failing], plan)
    assert healthy.aborted and failing.aborted


def test_parallel_driver_surfaces_worker_errors():
    spec = RunSpec.from_scenario("smoke", seed=7).to_dict()
    spec["policy"] = "no-such-policy"
    with pytest.raises(ShardExecutionError, match="no-such-policy"):
        run_sharded(spec, 2, parallel=True)


def test_run_sharded_rejects_bad_shard_counts():
    spec = RunSpec.from_scenario("smoke", seed=7)
    with pytest.raises(ValueError):
        run_sharded(spec, 0)


# ----------------------------------------------------------------------
# Full-trace replays (slow lane).
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_excerpt_serial_vs_parallel_bit_identity_full_trace():
    spec = RunSpec.from_scenario("excerpt", seed=7)
    serial = run_sharded(spec, 4, parallel=False)
    parallel = run_sharded(spec, 4, parallel=True)
    assert _digest(serial.result) == _digest(parallel.result)


@pytest.mark.slow
@pytest.mark.parametrize("policy", ["reservation", "batch", "lcp"])
def test_excerpt_policies_shard_deterministically(policy):
    spec = RunSpec.from_scenario("excerpt", policy=policy, seed=7)
    serial = run_sharded(spec, 2, parallel=False)
    parallel = run_sharded(spec, 2, parallel=True)
    assert _digest(serial.result) == _digest(parallel.result)
