"""CLI tests for the ``telemetry`` and ``trace`` experiment subcommands."""

import json

from repro.api import ResultStore, RunSpec
from repro.experiments.__main__ import main
from repro.telemetry import TelemetryReport


def test_telemetry_command_prints_report(capsys):
    assert main(["telemetry", "smoke", "--window", "600"]) == 0
    out = capsys.readouterr().out
    assert "interactivity" in out
    assert "task_submit" in out
    assert "p99" in out


def test_telemetry_command_stream_table_and_json(tmp_path, capsys):
    out_path = tmp_path / "telemetry.json"
    assert main(["telemetry", "smoke", "--window", "600",
                 "--stream", "interactivity", "--spans",
                 "--json", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "interactivity" in out

    report = TelemetryReport.from_dict(json.loads(out_path.read_text()))
    assert report.overall("interactivity")["count"] > 0
    assert report.span_counts["task"] > 0


def test_telemetry_command_sketch_mode(capsys):
    assert main(["telemetry", "smoke", "--window", "600", "--sketch"]) == 0
    assert "task_complete" in capsys.readouterr().out


def test_telemetry_command_store_artifact(tmp_path, capsys):
    assert main(["telemetry", "smoke", "--window", "600",
                 "--store-artifact", "--store-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    spec = RunSpec.from_scenario("smoke")
    loaded = ResultStore(tmp_path).load_artifact(spec, "telemetry")
    assert loaded is not None
    assert TelemetryReport.from_dict(loaded).overall("task_submit")["count"] > 0


def test_telemetry_command_rejects_unknown_stream_and_scenario(capsys):
    assert main(["telemetry", "smoke", "--stream", "nope"]) == 2
    assert "error:" in capsys.readouterr().err
    assert main(["telemetry", "no_such_scenario"]) == 2
    assert "error:" in capsys.readouterr().err


def test_trace_command_writes_chrome_trace(tmp_path, capsys):
    out_path = tmp_path / "smoke.trace.json"
    assert main(["trace", "smoke", "--out", str(out_path)]) == 0
    assert "spans" in capsys.readouterr().out

    document = json.loads(out_path.read_text())
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    assert events
    assert {event["ph"] for event in events} <= {"M", "X", "i"}
    for event in events:
        assert {"name", "ph", "pid", "tid"} <= set(event)
        if event["ph"] != "M":
            assert "ts" in event


def test_trace_command_timeline_variant(tmp_path, capsys):
    out_path = tmp_path / "smoke.timeline.json"
    assert main(["trace", "smoke", "--out", str(out_path), "--timeline"]) == 0
    capsys.readouterr()
    document = json.loads(out_path.read_text())
    assert document["spans"]
    assert all("name" in span and "start" in span for span in document["spans"])
