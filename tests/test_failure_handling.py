"""Failure-injection and recovery tests: replica failures, migration under
pressure, scale-out limits, and the oracle provisioning curve."""

import pytest

from repro.cluster.resources import ResourceRequest
from repro.core import ClusterConfig, NotebookOSPlatform, PlatformConfig
from repro.core.distributed_kernel import ReplicaState
from repro.metrics.collector import EventKind
from repro.policies import NotebookOSPolicy, oracle_gpu_timeline
from repro.workload import SessionTrace, TaskRecord, Trace


def build_platform(initial_hosts=4, max_hosts=12, **config_kwargs):
    policy = NotebookOSPolicy()
    platform = NotebookOSPlatform(
        policy,
        cluster_config=ClusterConfig(initial_hosts=initial_hosts, max_hosts=max_hosts),
        platform_config=PlatformConfig(**config_kwargs))
    return platform, policy


def start_kernel(platform, session_id="s1", gpus=2):
    process = platform.env.process(platform.global_scheduler.start_kernel(
        session_id, ResourceRequest(gpus=gpus)))
    return platform.env.run(until=process)


# ----------------------------------------------------------------------
# Replica failure handling (§3.2.5).
# ----------------------------------------------------------------------

def test_replica_failure_is_replaced_and_kernel_stays_at_full_strength():
    platform, _policy = build_platform()
    kernel = start_kernel(platform)
    assert len(kernel.active_replicas) == 3
    victim = kernel.active_replicas[0]

    process = platform.env.process(
        platform.global_scheduler.handle_replica_failure(kernel, victim))
    new_replica = platform.env.run(until=process)

    assert victim.state == ReplicaState.TERMINATED
    assert new_replica.replica_id != victim.replica_id
    assert len(kernel.active_replicas) == 3
    failures = platform.metrics.events_of_kind(EventKind.REPLICA_FAILURE)
    assert len(failures) == 1


def test_replica_failure_restores_checkpointed_state():
    platform, _policy = build_platform()
    kernel = start_kernel(platform)
    large = [obj for obj in kernel.namespace_objects() if obj.size_bytes >= 1024 ** 2]
    checkpoint = platform.env.process(
        kernel.synchronizer.checkpoint_manager.checkpoint_all(large))
    platform.env.run(until=checkpoint)
    reads_before = len(platform.datastore.read_latencies)

    victim = kernel.active_replicas[1]
    process = platform.env.process(
        platform.global_scheduler.handle_replica_failure(kernel, victim))
    platform.env.run(until=process)
    # The replacement replica read the persisted objects back from storage.
    assert len(platform.datastore.read_latencies) > reads_before


# ----------------------------------------------------------------------
# Migration behaviour.
# ----------------------------------------------------------------------

def test_migration_moves_replica_to_host_with_idle_gpus():
    platform, _policy = build_platform(initial_hosts=4)
    kernel = start_kernel(platform, gpus=4)
    original_hosts = set(kernel.host_ids)
    # Saturate the GPUs on every host currently hosting a replica.
    for replica in kernel.active_replicas:
        replica.host.bind_gpus("someone-else", replica.host.idle_gpus,
                               platform.env.now)
    process = platform.env.process(
        platform.global_scheduler.migrate_replica(kernel, gpus_required=4))
    new_replica = platform.env.run(until=process)
    assert new_replica is not None
    assert new_replica.host_id not in original_hosts
    assert kernel.migrations == 1
    # The target host bound the GPUs exclusively for the migrated replica.
    assert new_replica.host.gpus.owners().get(kernel.kernel_id)
    events = platform.metrics.events_of_kind(EventKind.KERNEL_MIGRATION)
    assert len(events) == 1


def test_migration_aborts_when_no_capacity_can_ever_be_found():
    platform, _policy = build_platform(initial_hosts=3, max_hosts=3,
                                       migration_max_retries=1,
                                       migration_retry_interval_s=1.0)
    kernel = start_kernel(platform, gpus=8)
    for host in platform.cluster.active_hosts:
        if host.idle_gpus:
            host.bind_gpus("blocker", host.idle_gpus, platform.env.now)
    process = platform.env.process(
        platform.global_scheduler.migrate_replica(kernel, gpus_required=8))
    result = platform.env.run(until=process)
    assert result is None
    assert platform.global_scheduler.migrations_aborted == 1
    # The victim replica is returned to service rather than left dangling.
    assert all(r.state in (ReplicaState.IDLE, ReplicaState.EXECUTING)
               for r in kernel.active_replicas)


def test_migration_prefers_prewarmed_containers():
    platform, _policy = build_platform(initial_hosts=4)
    kernel = start_kernel(platform, gpus=8)
    platform.env.run(until=platform.env.now + 200.0)  # let the prewarmer fill pools
    for replica in kernel.active_replicas:
        if replica.host.idle_gpus:
            replica.host.bind_gpus("someone-else", replica.host.idle_gpus,
                                   platform.env.now)
    hits_before = platform.prewarmer.hits
    process = platform.env.process(
        platform.global_scheduler.migrate_replica(kernel, gpus_required=8))
    new_replica = platform.env.run(until=process)
    assert new_replica is not None
    if new_replica.was_prewarmed:
        assert platform.prewarmer.hits == hits_before + 1


# ----------------------------------------------------------------------
# Scale-out limits.
# ----------------------------------------------------------------------

def test_scale_out_respects_max_hosts():
    platform, _policy = build_platform(initial_hosts=3, max_hosts=4)
    process = platform.env.process(
        platform.global_scheduler.scale_out(5, reason="test"))
    hosts = platform.env.run(until=process)
    assert len(hosts) == 1
    assert len(platform.cluster.active_hosts) == 4
    # Further scale-out requests are no-ops at the ceiling.
    process = platform.env.process(
        platform.global_scheduler.scale_out(2, reason="test"))
    assert platform.env.run(until=process) == []


def test_kernel_shutdown_releases_host_subscriptions():
    platform, _policy = build_platform()
    kernel = start_kernel(platform, gpus=2)
    assert any(h.subscribed_gpus > 0 for h in platform.cluster.active_hosts)
    process = platform.env.process(platform.global_scheduler.shutdown_kernel(kernel))
    platform.env.run(until=process)
    assert all(h.subscribed_gpus == 0 for h in platform.cluster.active_hosts)
    assert all(h.container_count == 0 for h in platform.cluster.active_hosts)


# ----------------------------------------------------------------------
# Oracle provisioning curve.
# ----------------------------------------------------------------------

def test_oracle_timeline_matches_hand_computed_demand():
    tasks = [
        TaskRecord(session_id="a", submit_time=100.0, duration=200.0, gpus=2),
        TaskRecord(session_id="a", submit_time=400.0, duration=100.0, gpus=2),
        TaskRecord(session_id="b", submit_time=150.0, duration=100.0, gpus=4),
    ]
    trace = Trace(name="t", sessions=[
        SessionTrace(session_id="a", user_id="u", start_time=0.0, end_time=1000.0,
                     gpus_requested=2, tasks=tasks[:2]),
        SessionTrace(session_id="b", user_id="v", start_time=0.0, end_time=1000.0,
                     gpus_requested=4, tasks=tasks[2:]),
    ])
    oracle = oracle_gpu_timeline(trace, sample_interval=50.0)
    assert oracle.value_at(120.0) == 2
    assert oracle.value_at(200.0) == 6
    assert oracle.value_at(320.0) == 0
    assert oracle.value_at(450.0) == 2
    assert oracle.maximum() == 6
    with pytest.raises(ValueError):
        oracle_gpu_timeline(trace, sample_interval=0.0)
