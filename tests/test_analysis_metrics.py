"""Tests for the analysis helpers, metrics collector, and billing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import CDF, Timeline, describe, geometric_mean, percentile, resample
from repro.analysis.timeline import difference
from repro.metrics import (
    BillingModel,
    EventKind,
    ExperimentResult,
    LatencyBreakdown,
    MetricsCollector,
    REQUEST_STEPS,
    StepLatencies,
)
from repro.metrics.cost import cost_timeline, gpu_hours_saved_by_state_persistence
from repro.workload import SessionTrace, TaskRecord, Trace


# ----------------------------------------------------------------------
# Analysis helpers.
# ----------------------------------------------------------------------

def test_percentile_interpolation():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0.0) == 10.0
    assert percentile(values, 1.0) == 40.0
    assert percentile(values, 0.5) == pytest.approx(25.0)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_cdf_summary_and_probability():
    cdf = CDF.from_values([1.0, 2.0, 3.0, 4.0, 5.0])
    summary = cdf.summary()
    assert summary["count"] == 5
    assert summary["min"] == 1.0
    assert summary["max"] == 5.0
    assert cdf.probability_at_or_below(3.0) == pytest.approx(0.6)
    assert cdf.probability_at_or_below(0.5) == 0.0
    assert len(cdf.points(num_points=3)) == 3


def test_empty_cdf():
    cdf = CDF.from_values([])
    assert cdf.is_empty
    assert cdf.summary() == {"count": 0}
    assert cdf.points() == []


def test_describe_and_geometric_mean():
    stats = describe([2.0, 4.0, 6.0])
    assert stats["mean"] == pytest.approx(4.0)
    assert stats["median"] == pytest.approx(4.0)
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, -1.0])


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_percentiles_are_monotone_property(values):
    cdf = CDF.from_values(values)
    assert cdf.percentile(0.25) <= cdf.percentile(0.75) + 1e-9
    assert cdf.percentile(0.0) == min(values)
    assert cdf.percentile(1.0) == max(values)


def test_timeline_recording_and_integral():
    timeline = Timeline("gpus")
    timeline.record(0.0, 10.0)
    timeline.record(3600.0, 20.0)
    timeline.record(7200.0, 0.0)
    assert timeline.value_at(1800.0) == 10.0
    assert timeline.value_at(5000.0) == 20.0
    assert timeline.maximum() == 20.0
    # 10 GPUs for the first hour + 20 GPUs for the second hour.
    assert timeline.integral() == pytest.approx(10 * 3600 + 20 * 3600)


def test_timeline_rejects_out_of_order_samples():
    timeline = Timeline("x")
    timeline.record(10.0, 1.0)
    with pytest.raises(ValueError):
        timeline.record(5.0, 2.0)


def test_timeline_resample_and_difference():
    timeline = Timeline("a")
    timeline.record(0.0, 5.0)
    timeline.record(100.0, 15.0)
    grid = resample(timeline, 0.0, 200.0, 50.0)
    assert grid.values == [5.0, 5.0, 15.0, 15.0, 15.0]
    other = Timeline("b")
    other.record(0.0, 1.0)
    saved = difference(timeline, other, grid.times)
    assert saved.values == [4.0, 4.0, 14.0, 14.0, 14.0]


# ----------------------------------------------------------------------
# Metrics collector.
# ----------------------------------------------------------------------

def test_task_metrics_delays():
    collector = MetricsCollector()
    task = collector.new_task("s1", "k1", submitted_at=100.0, gpus=2)
    task.started_at = 103.0
    task.completed_at = 200.0
    task.status = "ok"
    assert task.interactivity_delay == pytest.approx(3.0)
    assert task.task_completion_time == pytest.approx(100.0)
    assert task.execution_time == pytest.approx(97.0)
    assert collector.interactivity_cdf().percentile(0.5) == pytest.approx(3.0)
    assert collector.tct_cdf().percentile(0.5) == pytest.approx(100.0)


def test_collector_cluster_sampling_and_gpu_hours():
    collector = MetricsCollector()
    collector.sample_cluster(0.0, provisioned_gpus=80, committed_gpus=10,
                             active_sessions=5, active_trainings=2,
                             subscription_ratio=0.5, provisioned_hosts=10)
    collector.sample_cluster(3600.0, provisioned_gpus=80, committed_gpus=20,
                             active_sessions=6, active_trainings=3,
                             subscription_ratio=0.6, provisioned_hosts=10)
    collector.sample_cluster(7200.0, provisioned_gpus=40, committed_gpus=0,
                             active_sessions=6, active_trainings=0,
                             subscription_ratio=0.3, provisioned_hosts=5)
    assert collector.provisioned_gpu_hours() == pytest.approx(160.0)
    assert collector.committed_gpu_hours() == pytest.approx(30.0)


def test_collector_events_and_executor_stats():
    collector = MetricsCollector()
    collector.record_event(10.0, EventKind.KERNEL_CREATED, "k1")
    collector.record_event(20.0, EventKind.KERNEL_MIGRATION, "k1 -> host-2")
    collector.record_event(30.0, EventKind.SCALE_OUT, "+2 hosts")
    assert len(collector.events_of_kind(EventKind.KERNEL_MIGRATION)) == 1
    collector.record_executor_decision(immediate_commit=True, same_executor=True)
    collector.record_executor_decision(immediate_commit=False, same_executor=True)
    assert collector.immediate_commit_fraction() == pytest.approx(0.5)
    assert collector.same_executor_fraction() == pytest.approx(1.0)


def test_experiment_result_summary_and_savings():
    def build(policy, gpus):
        collector = MetricsCollector()
        task = collector.new_task("s", "k", submitted_at=0.0, gpus=1)
        task.started_at = 1.0
        task.completed_at = 61.0
        collector.sample_cluster(0.0, gpus, 0, 1, 0, 0.0, gpus // 8)
        collector.sample_cluster(3600.0, gpus, 0, 1, 0, 0.0, gpus // 8)
        return ExperimentResult(policy=policy, trace_name="t", collector=collector)

    notebookos = build("notebookos", 80)
    reservation = build("reservation", 240)
    assert notebookos.gpu_hours_saved_vs(reservation) == pytest.approx(160.0)
    summary = notebookos.summary()
    assert summary["policy"] == "notebookos"
    assert summary["tasks_completed"] == 1
    assert summary["provisioned_gpu_hours"] == pytest.approx(80.0)


# ----------------------------------------------------------------------
# Latency breakdown.
# ----------------------------------------------------------------------

def test_step_latencies_accumulate_and_validate():
    steps = StepLatencies()
    steps.record("execute_code", 10.0)
    steps.record("execute_code", 5.0)
    steps.record("gs_process_request", 0.5)
    assert steps.get("execute_code") == 15.0
    assert steps.end_to_end == pytest.approx(15.5)
    with pytest.raises(KeyError):
        steps.record("unknown_step", 1.0)
    with pytest.raises(ValueError):
        steps.record("execute_code", -1.0)


def test_latency_breakdown_table_covers_all_steps():
    breakdown = LatencyBreakdown(policy="notebookos")
    for i in range(5):
        sample = StepLatencies()
        sample.record("gs_process_request", 0.01 * (i + 1))
        sample.record("primary_replica_protocol", 0.03)
        sample.record("execute_code", 60.0)
        breakdown.add(sample)
    table = breakdown.table()
    assert set(table) == set(REQUEST_STEPS) | {"end_to_end"}
    assert table["execute_code"]["p50"] == pytest.approx(60.0)
    assert table["ls_process_request"] == {"count": 0}
    assert len(breakdown) == 5


# ----------------------------------------------------------------------
# Billing model.
# ----------------------------------------------------------------------

def make_billing_trace():
    """One 10-hour session requesting 4 GPUs that trains for 1 hour total."""
    tasks = [TaskRecord(session_id="s", submit_time=3600.0 * i, duration=1200.0, gpus=4)
             for i in range(3)]
    session = SessionTrace(session_id="s", user_id="u", start_time=0.0,
                           end_time=36000.0, gpus_requested=4, tasks=tasks)
    return Trace(name="billing", sessions=[session])


def test_billing_example_from_paper():
    """§5.5.1: $10/hr host -> standby replica $1.44/hr, 4-GPU training $5.75/hr."""
    billing = BillingModel(host_hourly_rate_usd=10.0, gpus_per_host=8)
    standby_hourly = (billing.host_hourly_rate_usd * billing.user_multiplier
                      * billing.standby_replica_fraction)
    assert standby_hourly == pytest.approx(1.4375, abs=1e-3)
    training_hourly = billing.host_hourly_rate_usd * billing.user_multiplier * 0.5
    assert training_hourly == pytest.approx(5.75)


def test_reservation_revenue_exceeds_notebookos_cost_efficiency():
    billing = BillingModel(host_hourly_rate_usd=10.0, gpus_per_host=8)
    trace = make_billing_trace()

    reservation_gpus = Timeline("reservation")
    reservation_gpus.record(0.0, 8)          # one full host reserved
    reservation_gpus.record(36000.0, 8)
    notebookos_gpus = Timeline("notebookos")
    notebookos_gpus.record(0.0, 2)           # oversubscribed: fewer GPUs provisioned
    notebookos_gpus.record(36000.0, 2)

    reservation_report = billing.report("reservation", trace, reservation_gpus)
    notebookos_report = billing.report("notebookos", trace, notebookos_gpus)
    assert notebookos_report.provider_cost_usd < reservation_report.provider_cost_usd
    assert notebookos_report.cost_reduction_vs(reservation_report) > 0.5
    assert -1.0 <= notebookos_report.profit_margin <= 1.0


def test_gpu_hours_saved_decreases_with_longer_reclamation_interval():
    trace = make_billing_trace()
    reports = gpu_hours_saved_by_state_persistence(
        trace, reclamation_intervals_minutes=(15, 30, 60, 90, 120))
    assert len(reports) == 5
    savings = [r.gpu_hours_saved for r in reports]
    assert all(a >= b for a, b in zip(savings, savings[1:]))
    assert savings[0] > 0.0


def test_cost_timeline_is_monotone():
    billing = BillingModel(host_hourly_rate_usd=10.0)
    trace = make_billing_trace()
    gpus = Timeline("g")
    gpus.record(0.0, 16)
    gpus.record(36000.0, 16)
    series = cost_timeline(billing, trace, gpus, policy="reservation", num_points=10)
    assert len(series["time_days"]) == 10
    assert all(a <= b + 1e-9 for a, b in
               zip(series["provider_cost"], series["provider_cost"][1:]))
    assert all(a <= b + 1e-9 for a, b in zip(series["revenue"], series["revenue"][1:]))
