"""Error-path tests for the ``python -m repro.experiments`` CLI.

The CLI is the entry point CI and sweep scripts drive, so its failure modes
must be deliberate: unknown names exit with status 2 and a message that
lists the valid choices, malformed grids are rejected before any simulation
runs, and a corrupt store file degrades to a cache miss instead of crashing
the run.
"""

import json

import pytest

from repro.experiments.__main__ import main
from repro.experiments.scenarios import (
    Scenario,
    ScenarioRegistry,
    default_registry,
    register_config_preset,
)
from repro.experiments.store import ResultStore


# ----------------------------------------------------------------------
# Unknown names.
# ----------------------------------------------------------------------
def test_unknown_scenario_exits_2_and_names_choices(capsys, tmp_path):
    code = main(["run", "no-such-scenario", "--store-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown scenario" in captured.err
    assert "smoke" in captured.err  # the message lists valid choices


def test_unknown_policy_exits_2(capsys, tmp_path):
    code = main(["run", "smoke", "--policy", "no-such-policy",
                 "--store-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 2
    assert "no-such-policy" in captured.err


def test_sweep_unknown_scenario_exits_2(capsys, tmp_path):
    code = main(["sweep", "--scenario", "bogus", "--policies", "notebookos",
                 "--store-dir", str(tmp_path)])
    assert code == 2
    assert "unknown scenario" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Malformed grids and values.
# ----------------------------------------------------------------------
def test_malformed_seeds_exits_2(capsys, tmp_path):
    code = main(["sweep", "--scenario", "smoke", "--policies", "notebookos",
                 "--seeds", "1,two,3", "--store-dir", str(tmp_path)])
    assert code == 2
    assert "two" in capsys.readouterr().err


def test_empty_policy_list_exits_2(capsys, tmp_path):
    code = main(["sweep", "--scenario", "smoke", "--policies", ",,",
                 "--store-dir", str(tmp_path)])
    assert code == 2
    assert "empty sweep" in capsys.readouterr().err


def test_invalid_session_override_exits_2(capsys, tmp_path):
    # Generator kwargs conflicting with the scenario's constraints are
    # rejected by the generator's own validation, surfaced as exit 2.
    code = main(["run", "smoke", "--sessions", "-5",
                 "--store-dir", str(tmp_path)])
    assert code == 2
    assert "num_sessions" in capsys.readouterr().err


def test_unknown_generator_kwarg_is_rejected():
    # API-level: overrides that the generator does not accept fail loudly
    # rather than being silently ignored (they would otherwise poison the
    # spec hash with dead knobs).
    spec = default_registry().get("smoke").instantiate(bogus_knob=3)
    from repro.experiments.scenarios import build_trace
    with pytest.raises(TypeError):
        build_trace(spec)


# ----------------------------------------------------------------------
# Registry conflicts.
# ----------------------------------------------------------------------
def test_duplicate_scenario_registration_conflicts():
    registry = ScenarioRegistry()
    registry.register(Scenario(name="dup", description="first"))
    with pytest.raises(ValueError, match="already registered"):
        registry.register(Scenario(name="dup", description="second"))
    # replace=True is the explicit override.
    registry.register(Scenario(name="dup", description="second"), replace=True)
    assert registry.get("dup").description == "second"


def test_duplicate_config_preset_registration_conflicts():
    from repro.experiments.scenarios import _CONFIG_PRESETS

    name = "test-dup-preset"
    try:
        register_config_preset(name, lambda spec, trace: (None, None))
        with pytest.raises(ValueError, match="already registered"):
            register_config_preset(name, lambda spec, trace: (None, None))
        register_config_preset(name, lambda spec, trace: (None, None),
                               replace=True)
    finally:
        # The preset table is process-global; leave no trace for later tests.
        _CONFIG_PRESETS.pop(name, None)


def test_unknown_config_preset_exits_2(capsys, tmp_path):
    registry = default_registry()
    registry.register(Scenario(name="broken-preset-scenario",
                               description="references a missing preset",
                               generator_kwargs={"num_sessions": 2,
                                                 "duration_hours": 0.5},
                               config_preset="no-such-preset"),
                      replace=True)
    try:
        code = main(["run", "broken-preset-scenario",
                     "--store-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown config preset" in captured.err
    finally:
        registry._scenarios.pop("broken-preset-scenario", None)


# ----------------------------------------------------------------------
# Store corruption.
# ----------------------------------------------------------------------
def test_corrupt_store_file_degrades_to_cache_miss(capsys, tmp_path):
    spec = default_registry().get("smoke").instantiate()
    store = ResultStore(tmp_path)
    path = store.path_for(spec)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{ this is not json")

    assert store.load(spec) is None  # corrupt entry reads as a miss

    code = main(["run", "smoke", "--store-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 0
    assert "ran in" in captured.out  # executed, not served from the store

    # The corrupt entry was overwritten with a valid one: rerun is a hit.
    payload = json.loads(path.read_text())
    assert payload["spec_hash"] == spec.spec_hash()
    code = main(["run", "smoke", "--store-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 0
    assert "cache hit" in captured.out


def test_wrong_schema_version_is_a_miss(tmp_path):
    spec = default_registry().get("smoke").instantiate()
    store = ResultStore(tmp_path)
    path = store.path_for(spec)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"schema_version": 999,
                                "spec_hash": spec.spec_hash(),
                                "spec": spec.to_dict(), "result": {}}))
    assert store.load(spec) is None
