"""Unit and integration tests for the Raft consensus substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raft import (
    KeyValueStateMachine,
    LogEntry,
    RaftCluster,
    RaftConfig,
    RaftLog,
    Role,
)
from repro.simulation import Environment, Network, SeededRandom


# ----------------------------------------------------------------------
# RaftLog unit tests.
# ----------------------------------------------------------------------

def test_empty_log_indices():
    log = RaftLog()
    assert log.last_index == 0
    assert log.last_term == 0
    assert log.term_at(0) == 0
    assert log.entry_at(1) is None


def test_append_assigns_sequential_indices():
    log = RaftLog()
    first = log.append(1, "a")
    second = log.append(1, "b")
    assert (first.index, second.index) == (1, 2)
    assert log.last_index == 2


def test_has_entry_consistency_check():
    log = RaftLog()
    log.append(1, "a")
    log.append(2, "b")
    assert log.has_entry(0, 0)
    assert log.has_entry(1, 1)
    assert log.has_entry(2, 2)
    assert not log.has_entry(2, 1)
    assert not log.has_entry(3, 2)


def test_append_entries_truncates_conflicts():
    log = RaftLog()
    log.append(1, "a")
    log.append(1, "b")
    log.append(1, "c")
    # A new leader in term 2 overwrites index 2 onwards.
    replacement = [LogEntry(term=2, command="B", index=2)]
    log.append_entries(prev_index=1, entries=replacement)
    assert log.last_index == 2
    assert log.entry_at(2).command == "B"
    assert log.entry_at(3) is None


def test_compact_removes_prefix_and_tracks_snapshot():
    log = RaftLog()
    for i in range(5):
        log.append(1, f"cmd-{i}")
    removed = log.compact(3)
    assert removed == 3
    assert log.snapshot_index == 3
    assert log.last_index == 5
    assert log.entry_at(3) is None
    assert log.entry_at(4).command == "cmd-3"
    assert log.has_entry(3, 1)


def test_compact_beyond_last_index_is_clamped():
    log = RaftLog()
    log.append(1, "a")
    log.compact(100)
    assert log.snapshot_index == 1
    assert log.last_index == 1


def test_install_snapshot_resets_log():
    log = RaftLog()
    log.append(1, "a")
    log.install_snapshot(index=10, term=3)
    assert log.last_index == 10
    assert log.last_term == 3
    assert log.entries == []


@settings(max_examples=50, deadline=None)
@given(terms=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=30))
def test_log_append_property_indices_monotone(terms):
    log = RaftLog()
    last_term = 0
    for term in sorted(terms):
        entry = log.append(max(term, last_term), "cmd")
        last_term = max(term, last_term)
        assert entry.index == log.last_index
    indices = [e.index for e in log.entries]
    assert indices == sorted(indices)
    assert len(set(indices)) == len(indices)


# ----------------------------------------------------------------------
# Cluster-level integration tests.
# ----------------------------------------------------------------------

def build_cluster(num_nodes=3, seed=0, default_latency=0.002):
    env = Environment()
    network = Network(env, default_latency=default_latency)
    member_ids = [f"node-{i}" for i in range(num_nodes)]
    cluster = RaftCluster(env, network, member_ids,
                          state_machine_factory=lambda _id: KeyValueStateMachine(),
                          config=RaftConfig(),
                          rng=SeededRandom(seed))
    cluster.start()
    return env, network, cluster


def test_config_validation_rejects_bad_timing():
    with pytest.raises(ValueError):
        RaftConfig(election_timeout_min=0.0).validate()
    with pytest.raises(ValueError):
        RaftConfig(election_timeout_min=0.3, election_timeout_max=0.2).validate()
    with pytest.raises(ValueError):
        RaftConfig(heartbeat_interval=0.5).validate()


def test_single_leader_elected():
    env, _network, cluster = build_cluster()
    env.run(until=2.0)
    leaders = [node for node in cluster.nodes.values() if node.role == Role.LEADER]
    assert len(leaders) == 1


def test_leader_is_stable_without_failures():
    env, _network, cluster = build_cluster(seed=3)
    env.run(until=2.0)
    first_leader = cluster.leader().node_id
    env.run(until=10.0)
    assert cluster.leader().node_id == first_leader
    # Exactly one term bump per successful election round.
    assert cluster.leader().current_term <= 3


def test_proposal_commits_and_applies_on_all_nodes():
    env, _network, cluster = build_cluster()
    env.run(until=2.0)
    leader = cluster.leader()
    event = leader.propose(("set", "x", 41))
    env.run(until=event)
    assert event.value == 41
    env.run(until=env.now + 1.0)
    for node in cluster.nodes.values():
        assert node.state_machine.data.get("x") == 41


def test_proposal_via_follower_is_forwarded_to_leader():
    env, _network, cluster = build_cluster(seed=5)
    env.run(until=2.0)
    leader_id = cluster.leader().node_id
    follower = next(node for node in cluster.nodes.values()
                    if node.node_id != leader_id)
    event = follower.propose(("set", "forwarded", "yes"))
    env.run(until=event)
    env.run(until=env.now + 1.0)
    for node in cluster.nodes.values():
        assert node.state_machine.data.get("forwarded") == "yes"


def test_proposal_before_leader_election_is_buffered():
    env, _network, cluster = build_cluster(seed=8)
    node = next(iter(cluster.nodes.values()))
    event = node.propose(("set", "early", 1))
    env.run(until=event)
    assert node.state_machine.data.get("early") == 1


def test_many_proposals_apply_in_order_on_every_node():
    env, _network, cluster = build_cluster(seed=2)
    env.run(until=2.0)
    leader = cluster.leader()
    events = [leader.propose(("set", f"k{i}", i)) for i in range(20)]
    for event in events:
        env.run(until=event)
    env.run(until=env.now + 1.0)
    reference = None
    for node in cluster.nodes.values():
        sets = [c for c in node.state_machine.applied_commands if c[0] == "set"]
        if reference is None:
            reference = sets
        assert sets == reference
    assert len(reference) == 20


def test_leader_failure_triggers_new_election_and_progress():
    env, network, cluster = build_cluster(seed=4)
    env.run(until=2.0)
    old_leader = cluster.leader()
    network.isolate(old_leader.node_id)
    env.run(until=env.now + 2.0)
    survivors = [node for node in cluster.nodes.values()
                 if node.node_id != old_leader.node_id]
    new_leaders = [node for node in survivors if node.is_leader]
    assert len(new_leaders) == 1
    event = new_leaders[0].propose(("set", "after-failover", True))
    env.run(until=event)
    assert new_leaders[0].state_machine.data["after-failover"] is True


def test_isolated_old_leader_steps_down_on_rejoin():
    env, network, cluster = build_cluster(seed=6)
    env.run(until=2.0)
    old_leader = cluster.leader()
    network.isolate(old_leader.node_id)
    env.run(until=env.now + 2.0)
    network.rejoin(old_leader.node_id)
    env.run(until=env.now + 2.0)
    leaders = [node for node in cluster.nodes.values() if node.is_leader]
    assert len(leaders) == 1
    assert cluster.logs_consistent()


def test_logs_remain_consistent_after_partition_heal():
    env, network, cluster = build_cluster(seed=9)
    env.run(until=2.0)
    leader = cluster.leader()
    follower = next(node for node in cluster.nodes.values()
                    if node.node_id != leader.node_id)
    network.isolate(follower.node_id)
    events = [leader.propose(("set", f"p{i}", i)) for i in range(5)]
    for event in events:
        env.run(until=event)
    network.rejoin(follower.node_id)
    env.run(until=env.now + 3.0)
    assert cluster.logs_consistent()
    assert follower.state_machine.data.get("p4") == 4


def test_remove_member_keeps_cluster_operational():
    env, _network, cluster = build_cluster(seed=10)
    env.run(until=2.0)
    leader = cluster.leader()
    victim = next(node_id for node_id in cluster.member_ids
                  if node_id != leader.node_id)
    cluster.remove_member(victim)
    env.run(until=env.now + 1.0)
    active_leader = cluster.leader()
    assert active_leader is not None
    event = active_leader.propose(("set", "post-removal", 1))
    env.run(until=event)
    assert len(cluster.member_ids) == 2


def test_add_member_catches_up_via_replication():
    env, _network, cluster = build_cluster(seed=11)
    env.run(until=2.0)
    leader = cluster.leader()
    events = [leader.propose(("set", f"seed{i}", i)) for i in range(5)]
    for event in events:
        env.run(until=event)
    new_node = cluster.add_member("node-joiner")
    env.run(until=env.now + 3.0)
    assert new_node.state_machine.data.get("seed4") == 4
    assert cluster.logs_consistent()


def test_migration_like_remove_then_add():
    """Mimics a NotebookOS replica migration: remove one member, add a new one."""
    env, _network, cluster = build_cluster(seed=12)
    env.run(until=2.0)
    leader = cluster.leader()
    event = leader.propose(("set", "before-migration", "state"))
    env.run(until=event)
    victim = next(node_id for node_id in cluster.member_ids
                  if node_id != cluster.leader().node_id)
    cluster.remove_member(victim)
    new_node = cluster.add_member("node-migrated")
    env.run(until=env.now + 3.0)
    assert len(cluster.member_ids) == 3
    assert new_node.state_machine.data.get("before-migration") == "state"
    post = cluster.leader().propose(("set", "after-migration", "ok"))
    env.run(until=post)
    env.run(until=env.now + 1.0)
    assert new_node.state_machine.data.get("after-migration") == "ok"


def test_five_node_cluster_tolerates_two_failures():
    env, network, cluster = build_cluster(num_nodes=5, seed=13)
    env.run(until=2.0)
    members = cluster.member_ids
    leader_id = cluster.leader().node_id
    victims = [m for m in members if m != leader_id][:2]
    for victim in victims:
        network.isolate(victim)
    env.run(until=env.now + 2.0)
    leader = cluster.leader()
    assert leader is not None
    event = leader.propose(("set", "with-two-down", 1))
    env.run(until=event)
    assert event.value == 1


def test_minority_partition_cannot_commit():
    env, network, cluster = build_cluster(seed=14)
    env.run(until=2.0)
    leader = cluster.leader()
    # Isolate the leader: it retains leadership belief but cannot commit.
    network.isolate(leader.node_id)
    env.run(until=env.now + 0.5)
    event = leader.propose(("set", "phantom", 1))
    env.run(until=env.now + 3.0)
    assert not event.triggered
    survivors = [n for n in cluster.nodes.values() if n.node_id != leader.node_id]
    assert all(n.state_machine.data.get("phantom") is None for n in survivors)


def test_elections_counter_increments():
    env, _network, cluster = build_cluster(seed=15)
    env.run(until=2.0)
    total_started = sum(n.elections_started for n in cluster.nodes.values())
    total_won = sum(n.elections_won for n in cluster.nodes.values())
    assert total_started >= 1
    assert total_won >= 1


def test_apply_listener_invoked_for_each_command():
    env, _network, cluster = build_cluster(seed=16)
    env.run(until=2.0)
    leader = cluster.leader()
    seen = []
    leader.add_apply_listener(lambda index, command, result: seen.append(command))
    event = leader.propose(("set", "listened", 1))
    env.run(until=event)
    assert ("set", "listened", 1) in seen


# ----------------------------------------------------------------------
# Safety invariants under message loss and duplication.
#
# Election safety: at most one leader is ever elected per term.
# Log matching: if two logs contain an entry with the same index and term,
# the logs are identical in all entries up to that index.
# ----------------------------------------------------------------------

def build_lossy_cluster(num_nodes=3, seed=0, drop=0.0, duplicate=0.0,
                        default_latency=0.002):
    """A cluster whose every inter-node link drops/duplicates messages."""
    from repro.simulation.network import Link

    env = Environment()
    network = Network(env, default_latency=default_latency,
                      rng=SeededRandom(seed * 7919 + 13))
    member_ids = [f"node-{i}" for i in range(num_nodes)]
    for source in member_ids:
        for destination in member_ids:
            if source != destination:
                network.set_link(source, destination,
                                 Link(latency_fn=lambda: default_latency,
                                      drop_probability=drop,
                                      duplicate_probability=duplicate),
                                 bidirectional=False)
    cluster = RaftCluster(env, network, member_ids,
                          state_machine_factory=lambda _id: KeyValueStateMachine(),
                          config=RaftConfig(),
                          rng=SeededRandom(seed))
    cluster.start()
    return env, network, cluster


def observe_leaders_per_term(env, cluster, until, step=0.025):
    """Advance simulation time, recording every (term -> leaders) sighting."""
    leaders_by_term = {}
    while env.now < until:
        env.run(until=min(until, env.now + step))
        for node in cluster.nodes.values():
            if node.role == Role.LEADER:
                leaders_by_term.setdefault(node.current_term, set()).add(
                    node.node_id)
    return leaders_by_term


def assert_log_matching(cluster):
    """The Raft Log Matching property, checked pairwise over full logs."""
    nodes = list(cluster.nodes.values())
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            common = min(a.log.last_index, b.log.last_index)
            # Find the highest common index where terms agree, then require
            # both logs to be identical up to it.
            for index in range(common, 0, -1):
                term_a, term_b = a.log.term_at(index), b.log.term_at(index)
                if term_a is None or term_b is None:
                    continue  # compacted away on one side
                if term_a == term_b:
                    for j in range(1, index + 1):
                        ea, eb = a.log.entry_at(j), b.log.entry_at(j)
                        if ea is None or eb is None:
                            continue  # snapshot-compacted prefix
                        assert (ea.term, ea.command) == (eb.term, eb.command), (
                            f"log mismatch at {j}: {a.node_id}={ea} "
                            f"{b.node_id}={eb}")
                    break


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_election_safety_under_message_loss(seed):
    env, _network, cluster = build_lossy_cluster(seed=seed, drop=0.10)
    leaders_by_term = observe_leaders_per_term(env, cluster, until=6.0)
    assert leaders_by_term, "no leader was ever elected despite 10% loss"
    for term, leaders in leaders_by_term.items():
        assert len(leaders) <= 1, (
            f"election safety violated: term {term} saw leaders {leaders}")


@pytest.mark.parametrize("seed", [4, 5])
def test_election_safety_under_duplication_and_loss(seed):
    env, network, cluster = build_lossy_cluster(num_nodes=5, seed=seed,
                                                drop=0.05, duplicate=0.20)
    leaders_by_term = observe_leaders_per_term(env, cluster, until=6.0)
    assert network.messages_duplicated > 0, "duplication never triggered"
    assert leaders_by_term
    for term, leaders in leaders_by_term.items():
        assert len(leaders) <= 1


@pytest.mark.parametrize("seed", [6, 7])
def test_log_matching_under_loss_and_duplication(seed):
    env, _network, cluster = build_lossy_cluster(seed=seed, drop=0.08,
                                                 duplicate=0.15)
    env.run(until=2.5)
    leader = cluster.leader()
    assert leader is not None
    events = [leader.propose(("set", f"k{i}", i)) for i in range(15)]
    deadline = env.now + 30.0
    for event in events:
        while not event.processed and env.now < deadline:
            env.run(until=env.now + 0.25)
    env.run(until=env.now + 2.0)
    assert_log_matching(cluster)
    # Committed state machines must agree on the applied prefix.
    applied = [[c for c in n.state_machine.applied_commands if c[0] == "set"]
               for n in cluster.nodes.values()]
    shortest = min(applied, key=len)
    for sequence in applied:
        assert sequence[:len(shortest)] == shortest


def test_duplicated_proposals_apply_once_per_commit():
    """Duplicate AppendEntries deliveries must not double-apply commands."""
    env, network, cluster = build_lossy_cluster(seed=8, duplicate=0.5)
    env.run(until=2.0)
    leader = cluster.leader()
    events = [leader.propose(("set", f"dup{i}", i)) for i in range(10)]
    for event in events:
        env.run(until=event)
    env.run(until=env.now + 2.0)
    assert network.messages_duplicated > 0
    for node in cluster.nodes.values():
        sets = [c for c in node.state_machine.applied_commands
                if c[0] == "set"]
        assert len(sets) == len({c[1] for c in sets}), (
            f"{node.node_id} applied a duplicated command twice: {sets}")


def test_key_value_state_machine_operations():
    machine = KeyValueStateMachine()
    machine.apply(1, ("set", "a", 1))
    machine.apply(2, ("set", "b", 2))
    machine.apply(3, ("delete", "a"))
    machine.apply(4, ("noop",))
    machine.apply(5, "not-a-tuple")
    assert machine.data == {"b": 2}
    snapshot = machine.snapshot()
    machine.apply(6, ("set", "c", 3))
    machine.restore(snapshot)
    assert machine.data == {"b": 2}
