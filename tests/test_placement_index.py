"""Property tests: indexed placement ≡ the frozen sort-based reference.

The :class:`~repro.cluster.index.HostIndex` inside :class:`ClusterState`
answers placement queries from incrementally maintained orderings.  The
contract is *bit-identical host selection*: across arbitrary cluster states
and request streams, the indexed fast path must return exactly the hosts the
seed repository's sort-based implementation returned — including exclusion
lists and both subscription-ratio passes.

``ReferencePlacement`` below is a frozen, literal copy of the seed's
``LeastLoadedPlacement`` query logic (full sorts over materialized host
lists, scanning SR totals).  Hypothesis drives randomized operation
sequences — subscribe / unsubscribe / bind / release / decommission /
provision — against one cluster, interleaved with placement queries whose
answers are compared host-by-host.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.host import Host, HostSpec
from repro.cluster.index import HostIndex, rank_key
from repro.cluster.resources import ResourceRequest
from repro.core.global_scheduler import ClusterState
from repro.core.placement import LeastLoadedPlacement, cluster_subscription_ratio
from repro.simulation.engine import Environment


# ----------------------------------------------------------------------
# Frozen sort-based reference (the seed implementation, verbatim logic).
# ----------------------------------------------------------------------
class ReferencePlacement:
    """The pre-index LeastLoadedPlacement queries, frozen for comparison."""

    def __init__(self, policy: LeastLoadedPlacement) -> None:
        self.policy = policy

    def _rank(self, host):
        return (host.committed_training_gpus, -host.idle_gpus,
                host.subscribed_gpus, host.host_id)

    def _sr_limit(self, hosts, replication_factor):
        policy = self.policy
        if policy.subscription_ratio_limit is not None:
            return policy.subscription_ratio_limit
        total_gpus = sum(h.spec.num_gpus for h in hosts if h.is_active)
        if total_gpus == 0 or replication_factor == 0:
            dynamic = 0.0
        else:
            total_subscribed = sum(h.subscribed_gpus for h in hosts if h.is_active)
            dynamic = total_subscribed / (total_gpus * replication_factor)
        return max(policy.minimum_sr_limit, dynamic)

    def _collect(self, hosts, request, replicas_needed, replication_factor,
                 excluded, sr_limit):
        policy = self.policy
        viable = []
        for host in sorted((h for h in hosts if h.is_active), key=self._rank):
            if host.host_id in excluded:
                continue
            if request.gpus > host.spec.num_gpus:
                continue
            if policy.oversubscription_enabled:
                projected = host.subscribed_gpus + request.gpus
                sr_after = projected / (host.spec.num_gpus * replication_factor)
                if sr_after > sr_limit + 1e-9:
                    continue
            else:
                if not host.pool.can_commit(request):
                    continue
            viable.append(host)
            if len(viable) == replicas_needed:
                break
        return viable

    def candidate_hosts(self, hosts, request, replicas_needed,
                        replication_factor, exclude_hosts=()):
        policy = self.policy
        excluded = set(exclude_hosts)
        balance_limit = min(self._sr_limit(hosts, replication_factor),
                            policy.high_watermark)
        viable = self._collect(hosts, request, replicas_needed,
                               replication_factor, excluded, balance_limit)
        if len(viable) < replicas_needed and policy.oversubscription_enabled:
            viable = self._collect(hosts, request, replicas_needed,
                                   replication_factor, excluded,
                                   policy.high_watermark)
        return viable

    def migration_target(self, hosts, request, replication_factor,
                         exclude_hosts=()):
        excluded = set(exclude_hosts)
        candidates = [h for h in hosts
                      if h.is_active and h.host_id not in excluded
                      and h.idle_gpus >= request.gpus]
        if not candidates:
            return None
        return sorted(candidates, key=self._rank)[0]


# ----------------------------------------------------------------------
# Randomized cluster evolution.
# ----------------------------------------------------------------------
def apply_ops(cluster: ClusterState, rng: random.Random, num_ops: int) -> None:
    """Mutate the cluster through every path that feeds the index."""
    for op_no in range(num_ops):
        op = rng.randrange(7)
        hosts = [h for h in cluster.hosts.values() if h.is_active]
        if op == 0 or not hosts:  # provision a host
            host_id = f"host-p{cluster.env.next_serial('bench-host'):04d}"
            spec = HostSpec(num_gpus=rng.choice((4, 8, 8, 16)))
            cluster.add_host(Host(host_id=host_id, spec=spec), scheduler=None)
        elif op == 1:  # subscribe
            host = rng.choice(hosts)
            host.subscribe(f"k-{rng.randrange(6)}", rng.choice((0, 1, 1, 2, 4)))
        elif op == 2:  # unsubscribe (possibly a no-op)
            host = rng.choice(hosts)
            host.unsubscribe(f"k-{rng.randrange(6)}")
        elif op == 3:  # bind GPUs for a training task
            host = rng.choice(hosts)
            kernel = f"k-{rng.randrange(6)}"
            gpus = rng.randrange(0, 4)
            if host.can_bind_gpus(gpus):
                host.bind_gpus(kernel, gpus, float(op_no))
        elif op == 4:  # release a training task's GPUs
            host = rng.choice(hosts)
            host.release_gpus(f"k-{rng.randrange(6)}", float(op_no))
        elif op == 5 and len(hosts) > 1:  # decommission
            rng.choice(hosts).decommission(float(op_no))
        elif op == 6 and len(hosts) > 1:  # decommission + remove
            host = rng.choice(hosts)
            host.decommission(float(op_no))
            cluster.remove_host(host.host_id)


def make_cluster(seed: int, num_hosts: int, num_ops: int) -> ClusterState:
    rng = random.Random(seed)
    cluster = ClusterState(Environment())
    for i in range(num_hosts):
        spec = HostSpec(num_gpus=rng.choice((4, 8, 8, 16)))
        cluster.add_host(Host(host_id=f"host-{i:04d}", spec=spec),
                         scheduler=None)
    apply_ops(cluster, rng, num_ops)
    return cluster


policies = st.builds(
    LeastLoadedPlacement,
    oversubscription_enabled=st.booleans(),
    subscription_ratio_limit=st.one_of(st.none(), st.floats(0.5, 4.0)),
    high_watermark=st.floats(1.0, 5.0),
)


@given(seed=st.integers(0, 2**32 - 1),
       num_hosts=st.integers(0, 40),
       num_ops=st.integers(0, 120),
       policy=policies,
       data=st.data())
@settings(max_examples=120, deadline=None)
def test_indexed_placement_matches_sorted_reference(seed, num_hosts, num_ops,
                                                    policy, data):
    cluster = make_cluster(seed, num_hosts, num_ops)
    cluster.index.check_consistency()
    reference = ReferencePlacement(policy)
    rng = random.Random(seed ^ 0x5EED)
    active = [h for h in cluster.hosts.values() if h.is_active]

    for _ in range(6):
        gpus = rng.choice((0, 1, 1, 2, 4, 8, 17))
        request = ResourceRequest(millicpus=4000, memory_mb=16384, gpus=gpus,
                                  vram_gb=8.0 * gpus)
        replicas = rng.choice((1, 1, 3, 5))
        replication = rng.choice((1, 3))
        exclude = tuple(h.host_id for h in active
                        if rng.random() < 0.2)

        indexed = policy.candidate_hosts(cluster, request, replicas,
                                         replication, exclude_hosts=exclude)
        expected = reference.candidate_hosts(active, request, replicas,
                                             replication, exclude_hosts=exclude)
        assert indexed.hosts == expected, "candidate_hosts diverged"
        assert indexed.satisfied == (len(expected) >= replicas)

        indexed_target = policy.migration_target(cluster, request, replication,
                                                 exclude_hosts=exclude)
        expected_target = reference.migration_target(active, request,
                                                     replication,
                                                     exclude_hosts=exclude)
        assert indexed_target is expected_target, "migration_target diverged"

        # The slow path (host sequence) must agree with the index too.
        slow = policy.candidate_hosts(active, request, replicas, replication,
                                      exclude_hosts=exclude)
        assert slow.hosts == expected

        # Mutate between queries so queries interleave with index updates.
        apply_ops(cluster, rng, 5)
        active = [h for h in cluster.hosts.values() if h.is_active]

    cluster.index.check_consistency()


@given(seed=st.integers(0, 2**32 - 1),
       num_hosts=st.integers(0, 30),
       num_ops=st.integers(0, 150))
@settings(max_examples=80, deadline=None)
def test_cluster_views_match_scans(seed, num_hosts, num_ops):
    """Aggregates, SR, idle ordering, and the histogram all match scans."""
    cluster = make_cluster(seed, num_hosts, num_ops)
    active = [h for h in cluster.hosts.values() if h.is_active]

    assert cluster.active_host_count == len(active)
    assert cluster.total_gpus() == sum(h.spec.num_gpus for h in active)
    assert cluster.committed_training_gpus() == \
        sum(h.committed_training_gpus for h in active)
    for replication in (1, 3):
        assert cluster.subscription_ratio(replication) == \
            cluster_subscription_ratio(active, replication)
    # idle_hosts preserves the host-dict scan order the seed produced.
    assert cluster.idle_hosts() == [h for h in active if h.is_idle]
    # Ranked iteration is exactly the reference sort.
    ranked = list(cluster.iter_ranked())
    assert ranked == sorted(active, key=rank_key)
    for min_idle in (0, 1, 2, 8, 17):
        assert cluster.hosts_with_idle_gpus(min_idle) == \
            sum(1 for h in active if h.idle_gpus >= min_idle)
        candidates = [h for h in active if h.idle_gpus >= min_idle]
        expected = max(candidates,
                       key=lambda h: (h.idle_gpus, h.host_id)) \
            if candidates else None
        assert cluster.most_idle_host(min_idle) is expected
        # The bucket walk enumerates exactly the qualifying hosts in the
        # (idle desc, host_id asc) order the LCP sort-based scan produced.
        assert list(cluster.iter_hosts_by_idle_desc(min_idle)) == \
            sorted(candidates, key=lambda h: (-h.idle_gpus, h.host_id))


def test_host_cached_counters_match_scans():
    """Host's O(1) counters stay equal to summing its dicts and devices."""
    rng = random.Random(7)
    host = Host(host_id="host-x", spec=HostSpec(num_gpus=8))
    for op_no in range(400):
        op = rng.randrange(4)
        kernel = f"k-{rng.randrange(5)}"
        if op == 0:
            host.subscribe(kernel, rng.choice((0, 1, 2, 4)))
        elif op == 1:
            host.unsubscribe(kernel)
        elif op == 2:
            gpus = rng.randrange(0, 4)
            if host.can_bind_gpus(gpus):
                host.bind_gpus(kernel, gpus, float(op_no))
        else:
            host.release_gpus(kernel, float(op_no))
        assert host.subscribed_gpus == sum(host._subscriptions.values())
        assert host.committed_training_gpus == \
            sum(host._active_trainings.values())
        assert host.allocated_gpus == \
            sum(1 for d in host.gpus.devices if d.is_allocated)
        assert host.idle_gpus == host.gpus.idle_count
        assert host.can_bind_gpus(host.idle_gpus)
        assert not host.can_bind_gpus(host.idle_gpus + 1)


def test_index_add_discard_idempotent():
    index = HostIndex()
    a, b = Host(host_id="a"), Host(host_id="b")
    index.add(a)
    index.add(b)
    index.add(a)  # idempotent re-add
    assert len(index) == 2 and "a" in index
    index.discard(a)
    index.discard(a)  # idempotent re-discard
    assert len(index) == 1 and "a" not in index
    index.reindex(a)  # reindex of an unindexed host is a no-op
    assert list(index.iter_ranked()) == [b]
    index.check_consistency()


def test_empty_cluster_queries():
    cluster = ClusterState(Environment())
    policy = LeastLoadedPlacement()
    request = ResourceRequest(gpus=1)
    decision = policy.candidate_hosts(cluster, request, 3, 3)
    assert decision.hosts == [] and not decision.satisfied
    assert policy.migration_target(cluster, request, 3) is None
    assert cluster.most_idle_host(1) is None
    assert cluster.idle_hosts() == []
    assert cluster.subscription_ratio(3) == 0.0
