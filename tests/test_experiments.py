"""Tests for the ``repro.experiments`` sweep-orchestration subsystem."""

import json

import pytest

from repro.experiments import (
    ResultStore,
    Scenario,
    ScenarioRegistry,
    ScenarioSpec,
    SweepGrid,
    build_trace,
    default_registry,
    run_spec,
    run_specs,
    stable_hash,
)
from repro.experiments.__main__ import main as cli_main
from repro.experiments.store import SCHEMA_VERSION
from repro.metrics.collector import ExperimentResult

# A seconds-scale grid used by the runner tests.
SMALL_KWARGS = {"num_sessions": 6, "duration_hours": 1.0}


def small_spec(policy="notebookos", seed=3):
    return default_registry().get("smoke").instantiate(policy=policy, seed=seed,
                                                       **SMALL_KWARGS)


# ----------------------------------------------------------------------
# Scenario specs and hashing.
# ----------------------------------------------------------------------
def test_stable_hash_is_order_insensitive_and_content_sensitive():
    assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})
    assert stable_hash({"a": 1}) != stable_hash({"a": 2})


def test_spec_hash_covers_every_generator_kwarg():
    scenario = default_registry().get("summer")
    base = scenario.instantiate(seed=5, num_sessions=8)
    bouty = scenario.instantiate(seed=5, num_sessions=8, work_bout_hours=0.5)
    assert base.generator_kwargs != bouty.generator_kwargs
    assert base.spec_hash() != bouty.spec_hash()
    # The old benchmark cache keyed summer traces on (seed, num_sessions)
    # only, so these two would have aliased; the spec hash distinguishes them.
    assert base.spec_hash() == scenario.instantiate(
        seed=5, num_sessions=8).spec_hash()


def test_spec_dict_roundtrip():
    spec = small_spec(policy="lcp", seed=11)
    restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert restored == spec
    assert restored.spec_hash() == spec.spec_hash()


def test_registry_builtins_and_errors():
    registry = default_registry()
    assert {"excerpt", "summer", "smoke"} <= set(registry.names())
    with pytest.raises(KeyError, match="unknown scenario"):
        registry.get("nope")
    fresh = ScenarioRegistry()
    scenario = Scenario(name="custom", description="d", generator="philly")
    fresh.register(scenario)
    assert fresh.get("custom").generator == "philly"
    with pytest.raises(ValueError, match="already registered"):
        fresh.register(scenario)


def test_instantiate_overrides_and_defaults():
    scenario = default_registry().get("excerpt")
    spec = scenario.instantiate()
    assert spec.policy == "notebookos" and spec.seed == 7
    assert spec.generator_kwargs["num_sessions"] == 90
    spec = scenario.instantiate(policy="batch", seed=9, num_sessions=30,
                                duration_hours=None)
    assert spec.policy == "batch" and spec.seed == 9
    assert spec.generator_kwargs["num_sessions"] == 30
    # None overrides are ignored so CLI flags can pass through unset.
    assert spec.generator_kwargs["duration_hours"] == 17.5


def test_build_trace_is_deterministic():
    spec = small_spec()
    first, second = build_trace(spec), build_trace(spec)
    assert len(first) == len(second) == 6
    assert first.total_task_count == second.total_task_count
    assert [t.submit_time for t in first.all_tasks] == \
        [t.submit_time for t in second.all_tasks]


# ----------------------------------------------------------------------
# Sweep expansion.
# ----------------------------------------------------------------------
def test_sweep_grid_expansion():
    grid = SweepGrid(scenario="smoke", policies=("reservation", "batch"),
                     seeds=(1, 2, 3),
                     generator_grid={"num_sessions": [4, 8]})
    specs = grid.expand()
    assert len(specs) == grid.size() == 12
    assert len({spec.spec_hash() for spec in specs}) == 12
    # Policies vary slowest, then seeds, then the generator grid.
    assert [s.policy for s in specs[:6]] == ["reservation"] * 6
    assert [s.seed for s in specs[:2]] == [1, 1]
    assert [s.generator_kwargs["num_sessions"] for s in specs[:2]] == [4, 8]
    # A None seed means the scenario default.
    default_seed = SweepGrid(scenario="smoke").expand()[0].seed
    assert default_seed == default_registry().get("smoke").default_seed


# ----------------------------------------------------------------------
# Result store.
# ----------------------------------------------------------------------
def test_store_miss_save_hit(tmp_path):
    store = ResultStore(tmp_path)
    spec = small_spec()
    assert store.load(spec) is None
    assert store.misses == 1

    outcome = run_spec(spec, store=store)
    assert not outcome.cached
    path = store.path_for(spec)
    assert path.exists()
    assert spec.scenario in str(path.parent)

    loaded = store.load(spec)
    assert isinstance(loaded, ExperimentResult)
    assert loaded.summary() == outcome.result.summary()
    assert store.hits == 1
    entries = list(store.entries())
    assert len(entries) == 1 and entries[0][0] == spec


def test_store_rejects_corrupt_and_mismatched_entries(tmp_path):
    store = ResultStore(tmp_path)
    spec = small_spec()
    run_spec(spec, store=store)
    path = store.path_for(spec)

    payload = json.loads(path.read_text())
    payload["schema_version"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(payload))
    assert store.load(spec) is None

    # Entries written by a different package version are stale: the spec
    # hash covers parameters, not simulator code.
    payload["schema_version"] = SCHEMA_VERSION
    payload["repro_version"] = "0.0.0-older"
    path.write_text(json.dumps(payload))
    assert store.load(spec) is None

    path.write_text("{not json")
    assert store.load(spec) is None
    # A rerun repairs the entry.
    outcome = run_spec(spec, store=store)
    assert not outcome.cached
    assert store.load(spec) is not None


# ----------------------------------------------------------------------
# Runner determinism and caching.
# ----------------------------------------------------------------------
def fingerprint(result):
    return (result.collector.interactivity_cdf().values,
            result.provisioned_gpu_hours,
            [t.executor_replica for t in result.collector.tasks])


def test_serial_and_parallel_runs_are_identical(tmp_path):
    grid = SweepGrid(scenario="smoke", policies=("notebookos", "reservation"),
                     seeds=(3, 4), generator_grid={"num_sessions": [6],
                                                   "duration_hours": [1.0]})
    specs = grid.expand()
    serial_store = ResultStore(tmp_path / "serial")
    parallel_store = ResultStore(tmp_path / "parallel")

    serial = run_specs(specs, workers=1, store=serial_store)
    parallel = run_specs(specs, workers=2, store=parallel_store)
    assert len(serial) == len(parallel) == 4
    for s_out, p_out in zip(serial, parallel):
        assert s_out.spec == p_out.spec
        assert not s_out.cached and not p_out.cached
        assert fingerprint(s_out.result) == fingerprint(p_out.result)

    # A second pass over either store is served entirely from disk and
    # reproduces the same metrics.
    rerun = run_specs(specs, workers=1, store=serial_store)
    assert all(outcome.cached for outcome in rerun)
    for fresh, cached in zip(serial, rerun):
        assert fingerprint(fresh.result) == fingerprint(cached.result)


def test_duplicate_specs_execute_once(tmp_path):
    spec = small_spec()
    messages = []
    outcomes = run_specs([spec, spec], workers=1,
                         store=ResultStore(tmp_path), progress=messages.append)
    assert len(outcomes) == 2
    assert fingerprint(outcomes[0].result) == fingerprint(outcomes[1].result)
    assert len(messages) == 2


def test_runner_without_store():
    outcome = run_spec(small_spec())
    assert not outcome.cached
    assert outcome.result.collector.tasks


# ----------------------------------------------------------------------
# CLI.
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("excerpt", "summer", "smoke"):
        assert name in out


def test_cli_run_and_cache_hit(tmp_path, capsys):
    argv = ["run", "smoke", "--sessions", "6", "--hours", "1.0",
            "--seed", "3", "--store-dir", str(tmp_path)]
    assert cli_main(argv) == 0
    out = capsys.readouterr().out
    assert "ran in" in out and "0/1 cache hits" in out

    assert cli_main(argv) == 0
    out = capsys.readouterr().out
    assert "cache hit" in out and "1/1 cache hits" in out


def test_cli_sweep(tmp_path, capsys):
    argv = ["sweep", "--scenario", "smoke", "--policies", "notebookos,batch",
            "--seeds", "3,4", "--sessions", "6", "--workers", "1",
            "--store-dir", str(tmp_path)]
    assert cli_main(argv) == 0
    out = capsys.readouterr().out
    assert "sweep: 4 runs" in out and "0/4 cache hits" in out

    assert cli_main(argv) == 0
    out = capsys.readouterr().out
    assert "4/4 cache hits" in out


def test_benchmark_trace_cache_keys_on_full_parameter_set():
    from benchmarks import common

    base = common.summer_trace(seed=5, num_sessions=4)
    same = common.summer_trace(seed=5, num_sessions=4)
    assert same is base  # cache hit
    shorter_bouts = common.summer_trace(seed=5, num_sessions=4,
                                        work_bout_hours=0.25, bouts_per_day=0.5)
    assert shorter_bouts is not base
    assert shorter_bouts.total_task_count != base.total_task_count
