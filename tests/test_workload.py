"""Tests for the model registry, trace records, generators, and characterization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import SeededRandom
from repro.workload import (
    AdobeTraceGenerator,
    AlibabaTraceGenerator,
    ApplicationDomain,
    DATASETS,
    MODELS,
    PhillyTraceGenerator,
    SessionTrace,
    TaskRecord,
    Trace,
    assign_workload,
    characterize_trace,
)


# ----------------------------------------------------------------------
# Model / dataset registry (Table 1).
# ----------------------------------------------------------------------

def test_registry_matches_table1_contents():
    assert len(MODELS) == 6
    assert len(DATASETS) == 6
    cv_models = [m for m in MODELS.values()
                 if m.domain == ApplicationDomain.COMPUTER_VISION]
    nlp_models = [m for m in MODELS.values() if m.domain == ApplicationDomain.NLP]
    speech_models = [m for m in MODELS.values()
                     if m.domain == ApplicationDomain.SPEECH_RECOGNITION]
    assert {m.name for m in cv_models} == {"VGG-16", "ResNet-18", "Inception v3"}
    assert {m.name for m in nlp_models} == {"BERT", "GPT-2"}
    assert {m.name for m in speech_models} == {"Deep Speech 2"}


def test_model_parameter_bytes_are_plausible():
    vgg = MODELS["vgg-16"]
    assert 500e6 < vgg.parameter_bytes < 600e6   # ~552 MB of fp32 weights
    resnet = MODELS["resnet-18"]
    assert resnet.parameter_bytes < vgg.parameter_bytes


def test_assign_workload_respects_domain():
    rng = SeededRandom(1)
    for _ in range(50):
        assignment = assign_workload(rng, domain=ApplicationDomain.NLP)
        assert assignment.model.domain == ApplicationDomain.NLP
        assert assignment.dataset.domain == ApplicationDomain.NLP


def test_assign_workload_is_deterministic_per_seed():
    first = assign_workload(SeededRandom(7))
    second = assign_workload(SeededRandom(7))
    assert first == second


# ----------------------------------------------------------------------
# Trace records.
# ----------------------------------------------------------------------

def make_session(tasks=None, start=0.0, end=3600.0, gpus=2):
    return SessionTrace(session_id="s", user_id="u", start_time=start,
                        end_time=end, gpus_requested=gpus, tasks=tasks or [])


def test_task_record_validation():
    with pytest.raises(ValueError):
        TaskRecord(session_id="s", submit_time=-1.0, duration=10.0, gpus=1)
    with pytest.raises(ValueError):
        TaskRecord(session_id="s", submit_time=0.0, duration=-5.0, gpus=1)


def test_session_trace_validation():
    with pytest.raises(ValueError):
        SessionTrace(session_id="s", user_id="u", start_time=100.0, end_time=50.0,
                     gpus_requested=1)


def test_session_iat_and_duty_cycle():
    tasks = [
        TaskRecord(session_id="s", submit_time=0.0, duration=120.0, gpus=2),
        TaskRecord(session_id="s", submit_time=300.0, duration=60.0, gpus=2),
        TaskRecord(session_id="s", submit_time=900.0, duration=60.0, gpus=2),
    ]
    session = make_session(tasks=tasks, end=2400.0)
    assert session.inter_arrival_times() == [300.0, 600.0]
    assert session.gpu_busy_seconds() == 240.0
    assert session.gpu_duty_cycle() == pytest.approx(0.1)
    assert session.gpu_task_count == 3


def test_trace_active_counts_and_oracle_demand():
    tasks_a = [TaskRecord(session_id="a", submit_time=100.0, duration=200.0, gpus=2)]
    tasks_b = [TaskRecord(session_id="b", submit_time=150.0, duration=100.0, gpus=4)]
    trace = Trace(name="t", sessions=[
        make_session(tasks=tasks_a, start=0.0, end=1000.0),
        SessionTrace(session_id="b", user_id="u2", start_time=50.0, end_time=500.0,
                     gpus_requested=4, tasks=tasks_b),
    ])
    assert trace.total_task_count == 2
    assert trace.active_sessions_at(60.0) == 2
    assert trace.active_sessions_at(700.0) == 1
    assert trace.active_trainings_at(200.0) == 2
    assert trace.required_gpus_at(200.0) == 6
    assert trace.required_gpus_at(400.0) == 0


def test_trace_truncation_clips_sessions_and_tasks():
    tasks = [TaskRecord(session_id="a", submit_time=t, duration=50.0, gpus=1)
             for t in (100.0, 2000.0, 5000.0)]
    trace = Trace(name="t", sessions=[make_session(tasks=tasks, end=10000.0)])
    clipped = trace.truncated(3000.0)
    assert clipped.sessions[0].end_time == 3000.0
    assert len(clipped.sessions[0].tasks) == 2
    assert clipped.duration <= 3000.0


# ----------------------------------------------------------------------
# Generators.
# ----------------------------------------------------------------------

def test_adobe_generator_is_deterministic():
    trace_a = AdobeTraceGenerator(seed=3, num_sessions=10, duration_hours=4.0).generate()
    trace_b = AdobeTraceGenerator(seed=3, num_sessions=10, duration_hours=4.0).generate()
    assert trace_a.total_task_count == trace_b.total_task_count
    for sa, sb in zip(trace_a, trace_b):
        assert [t.submit_time for t in sa.tasks] == [t.submit_time for t in sb.tasks]


def test_adobe_generator_different_seeds_differ():
    trace_a = AdobeTraceGenerator(seed=1, num_sessions=10, duration_hours=4.0).generate()
    trace_b = AdobeTraceGenerator(seed=2, num_sessions=10, duration_hours=4.0).generate()
    submits_a = [t.submit_time for t in trace_a.all_tasks]
    submits_b = [t.submit_time for t in trace_b.all_tasks]
    assert submits_a != submits_b


def test_adobe_generator_matches_published_percentiles():
    trace = AdobeTraceGenerator(seed=0, num_sessions=120, duration_hours=24.0).generate()
    character = characterize_trace(trace, timeline_samples=50)
    summary = character.summary()
    # §2.3.1: p50 = 120 s, p75 = 300 s (loose tolerance for sampling noise).
    assert 80.0 < summary["duration_p50"] < 180.0
    assert 200.0 < summary["duration_p75"] < 450.0
    # §2.3.2: IAT p50 = 300 s, minimum 240 s.
    assert 240.0 <= min(character.inter_arrival_times)
    assert 250.0 < summary["iat_p50"] < 600.0


def test_adobe_sessions_persist_to_trace_end():
    generator = AdobeTraceGenerator(seed=5, num_sessions=20, duration_hours=10.0)
    trace = generator.generate()
    assert all(s.end_time == pytest.approx(generator.duration_seconds) for s in trace)
    # Active sessions accumulate over the trace (Figure 7 behaviour).
    early = trace.active_sessions_at(0.05 * generator.duration_seconds)
    late = trace.active_sessions_at(0.99 * generator.duration_seconds)
    assert late >= early
    assert late == len(trace)


def test_adobe_idle_fraction_produces_idle_sessions():
    generator = AdobeTraceGenerator(seed=6, num_sessions=60, duration_hours=24.0,
                                    idle_session_fraction=0.6)
    trace = generator.generate()
    idle_sessions = [s for s in trace if not s.tasks]
    assert 0.4 < len(idle_sessions) / len(trace) < 0.8


def test_characterization_preset_shows_low_utilization():
    trace = AdobeTraceGenerator.characterization_preset(seed=2, num_sessions=80,
                                                        duration_hours=24.0 * 7).generate()
    character = characterize_trace(trace, timeline_samples=100)
    # Observation 3: reserved GPU resources idle the vast majority of the time.
    assert character.fraction_reserved_gpu_time_idle() > 0.6
    assert character.fraction_sessions_with_low_usage(0.05) > 0.5


def test_philly_and_alibaba_have_longer_tasks_and_shorter_iats():
    adobe = AdobeTraceGenerator(seed=1, num_sessions=60, duration_hours=48.0).generate()
    philly = PhillyTraceGenerator(seed=1, num_sessions=60, duration_hours=48.0).generate()
    alibaba = AlibabaTraceGenerator(seed=1, num_sessions=60, duration_hours=48.0).generate()
    adobe_char = characterize_trace(adobe, timeline_samples=0)
    philly_char = characterize_trace(philly, timeline_samples=0)
    alibaba_char = characterize_trace(alibaba, timeline_samples=0)
    # Observation 1: IDLT tasks are much shorter than BDLT tasks.
    assert adobe_char.duration_percentile(0.5) < philly_char.duration_percentile(0.5)
    assert adobe_char.duration_percentile(0.5) < alibaba_char.duration_percentile(0.5)
    # Observation 2: IDLT tasks are submitted less frequently.
    assert adobe_char.iat_percentile(0.5) > philly_char.iat_percentile(0.5)
    assert adobe_char.iat_percentile(0.5) > alibaba_char.iat_percentile(0.5)


def test_generator_rejects_bad_parameters():
    with pytest.raises(ValueError):
        AdobeTraceGenerator(num_sessions=0)
    with pytest.raises(ValueError):
        AdobeTraceGenerator(duration_hours=0)
    with pytest.raises(ValueError):
        AdobeTraceGenerator(idle_session_fraction=1.5)
    with pytest.raises(ValueError):
        AdobeTraceGenerator(gpu_choices=(1, 2), gpu_weights=(1.0,))


def test_generated_tasks_never_overlap_within_a_session():
    trace = AdobeTraceGenerator(seed=9, num_sessions=30, duration_hours=12.0).generate()
    for session in trace:
        tasks = sorted(session.tasks, key=lambda t: t.submit_time)
        for first, second in zip(tasks, tasks[1:]):
            assert second.submit_time >= first.end_time


def test_gpu_cells_have_code_exercising_state_replication():
    trace = AdobeTraceGenerator(seed=4, num_sessions=10, duration_hours=6.0).generate()
    gpu_tasks = [t for t in trace.all_tasks if t.is_gpu_task]
    assert gpu_tasks
    assert all(task.code for task in gpu_tasks)
    from repro.statesync import analyze_code

    replicating = sum(1 for task in gpu_tasks
                      if analyze_code(task.code).names_to_replicate)
    assert replicating / len(gpu_tasks) > 0.9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_generator_produces_valid_traces_property(seed):
    trace = AdobeTraceGenerator(seed=seed, num_sessions=5, duration_hours=3.0).generate()
    for session in trace:
        assert session.end_time >= session.start_time
        for task in session.tasks:
            assert task.submit_time >= 0
            assert task.duration >= 0
            assert 0 <= task.gpu_utilization <= 1.0
            assert task.gpus >= 0
