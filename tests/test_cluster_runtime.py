"""Unit tests for containers, prewarmer, data store, and VM provisioner."""

import pytest

from repro.cluster import (
    ContainerLatencyModel,
    ContainerPrewarmer,
    ContainerRuntime,
    ContainerState,
    DistributedDataStore,
    HDFS_BACKEND,
    PrewarmPolicy,
    REDIS_BACKEND,
    ResourceRequest,
    S3_BACKEND,
    VMProvisioner,
)
from repro.simulation import Environment, SeededRandom


# ----------------------------------------------------------------------
# Containers and runtime.
# ----------------------------------------------------------------------

def test_cold_start_slower_than_warm_start():
    env = Environment()
    runtime = ContainerRuntime(env, "host-1", rng=SeededRandom(1))
    resources = ResourceRequest()

    def run():
        cold_start_begin = env.now
        cold = yield env.process(runtime.provision(resources, prewarmed=False))
        cold_time = env.now - cold_start_begin
        warm_start_begin = env.now
        warm = yield env.process(runtime.provision(resources, prewarmed=True))
        warm_time = env.now - warm_start_begin
        return cold, warm, cold_time, warm_time

    process = env.process(run())
    cold, warm, cold_time, warm_time = env.run(until=process)
    assert cold.state == ContainerState.WARM
    assert warm.state == ContainerState.WARM
    assert cold_time > warm_time
    assert runtime.cold_starts == 1
    assert runtime.warm_starts == 1


def test_container_assign_release_and_terminate():
    env = Environment()
    runtime = ContainerRuntime(env, "host-1", rng=SeededRandom(2))

    def run():
        container = yield env.process(runtime.provision(ResourceRequest()))
        container.assign("kernel-1", "replica-1")
        assert container.is_running
        container.release_to_pool()
        assert container.is_warm
        container.assign("kernel-2", "replica-2")
        yield env.process(runtime.terminate(container))
        return container

    process = env.process(run())
    container = env.run(until=process)
    assert container.state == ContainerState.TERMINATED
    assert runtime.terminations == 1
    assert container.lifetime(env.now) > 0


def test_container_assign_in_bad_state_raises():
    env = Environment()
    runtime = ContainerRuntime(env, "host-1", rng=SeededRandom(3))

    def run():
        container = yield env.process(runtime.provision(ResourceRequest()))
        container.terminate(env.now)
        with pytest.raises(RuntimeError):
            container.assign("k", "r")
        with pytest.raises(RuntimeError):
            container.release_to_pool()
        return True

    process = env.process(run())
    assert env.run(until=process) is True


def test_latency_model_bounds():
    rng = SeededRandom(4)
    model = ContainerLatencyModel()
    colds = [model.cold_start(rng) for _ in range(200)]
    warms = [model.warm_start(rng) for _ in range(200)]
    assert min(colds) >= 5.0
    assert min(warms) >= 0.1
    assert sum(colds) / len(colds) > sum(warms) / len(warms)


# ----------------------------------------------------------------------
# Prewarmer.
# ----------------------------------------------------------------------

def test_prewarmer_initial_pool_and_take():
    env = Environment()
    prewarmer = ContainerPrewarmer(env, PrewarmPolicy(initial_per_host=2, min_per_host=1))
    runtime = ContainerRuntime(env, "host-1", rng=SeededRandom(5))
    prewarmer.register_host("host-1", runtime)
    env.run(until=120.0)
    assert prewarmer.available("host-1") == 2
    container = prewarmer.take("host-1")
    assert container is not None
    assert prewarmer.available("host-1") == 1
    assert prewarmer.hits == 1


def test_prewarmer_miss_on_empty_pool():
    env = Environment()
    prewarmer = ContainerPrewarmer(env, PrewarmPolicy(initial_per_host=0))
    runtime = ContainerRuntime(env, "host-1", rng=SeededRandom(6))
    prewarmer.register_host("host-1", runtime)
    env.run(until=10.0)
    assert prewarmer.take("host-1") is None
    assert prewarmer.misses == 1


def test_prewarmer_maintenance_replenishes_pool():
    env = Environment()
    policy = PrewarmPolicy(initial_per_host=1, min_per_host=1, replenish_interval=10.0)
    prewarmer = ContainerPrewarmer(env, policy)
    runtime = ContainerRuntime(env, "host-1", rng=SeededRandom(7))
    prewarmer.register_host("host-1", runtime)
    prewarmer.start_maintenance()
    env.run(until=120.0)
    assert prewarmer.available("host-1") >= 1
    prewarmer.take("host-1")
    env.run(until=300.0)
    assert prewarmer.available("host-1") >= 1


def test_prewarmer_put_back_respects_max():
    env = Environment()
    policy = PrewarmPolicy(initial_per_host=0, min_per_host=0, max_per_host=1)
    prewarmer = ContainerPrewarmer(env, policy)
    runtime = ContainerRuntime(env, "host-1", rng=SeededRandom(8))
    prewarmer.register_host("host-1", runtime)

    def run():
        first = yield env.process(runtime.provision(ResourceRequest()))
        second = yield env.process(runtime.provision(ResourceRequest()))
        prewarmer.put_back("host-1", first)
        prewarmer.put_back("host-1", second)
        return True

    process = env.process(run())
    env.run(until=process)
    env.run(until=env.now + 10.0)
    assert prewarmer.available("host-1") == 1


def test_prewarmer_unregister_host_drops_pool():
    env = Environment()
    prewarmer = ContainerPrewarmer(env, PrewarmPolicy(initial_per_host=1))
    runtime = ContainerRuntime(env, "host-1", rng=SeededRandom(9))
    prewarmer.register_host("host-1", runtime)
    prewarmer.unregister_host("host-1")
    env.run(until=120.0)
    assert prewarmer.available("host-1") == 0
    assert prewarmer.total_available() == 0


# ----------------------------------------------------------------------
# Distributed data store.
# ----------------------------------------------------------------------

def test_datastore_write_then_read_roundtrip():
    env = Environment()
    store = DistributedDataStore(env, backend="s3", rng=SeededRandom(10))

    def run():
        pointer = yield env.process(store.write("model-weights", 200 * 1024 ** 2, "kernel-1"))
        stored = yield env.process(store.read("model-weights"))
        return pointer, stored

    process = env.process(run())
    pointer, stored = env.run(until=process)
    assert pointer.key == "model-weights"
    assert pointer.backend == "s3"
    assert stored.size_bytes == 200 * 1024 ** 2
    assert store.object_count() == 1
    assert len(store.write_latencies) == 1
    assert len(store.read_latencies) == 1


def test_datastore_read_missing_key_raises():
    env = Environment()
    store = DistributedDataStore(env, backend="redis")

    def run():
        yield env.process(store.read("nope"))

    process = env.process(run())
    with pytest.raises(KeyError):
        env.run(until=process)


def test_datastore_versioning_on_rewrite():
    env = Environment()
    store = DistributedDataStore(env, backend="redis", rng=SeededRandom(11))

    def run():
        first = yield env.process(store.write("obj", 1024, "k"))
        second = yield env.process(store.write("obj", 2048, "k"))
        return first, second

    process = env.process(run())
    first, second = env.run(until=process)
    assert first.version == 1
    assert second.version == 2


def test_datastore_node_cache_accelerates_reads():
    env = Environment()
    store = DistributedDataStore(env, backend="s3", rng=SeededRandom(12))
    size = 500 * 1024 ** 2

    def run():
        yield env.process(store.write("data", size, "k", node_id="replica-1"))
        start = env.now
        yield env.process(store.read("data", node_id="replica-1"))
        cached_latency = env.now - start
        start = env.now
        yield env.process(store.read("data", node_id="replica-2"))
        uncached_latency = env.now - start
        return cached_latency, uncached_latency

    process = env.process(run())
    cached, uncached = env.run(until=process)
    assert cached < uncached
    assert store.cache_hits == 1
    assert store.cache_misses == 1


def test_datastore_backend_selection_and_validation():
    env = Environment()
    assert DistributedDataStore(env, backend="hdfs").backend is HDFS_BACKEND
    assert DistributedDataStore(env, backend=REDIS_BACKEND).backend is REDIS_BACKEND
    assert DistributedDataStore(env, backend=S3_BACKEND).backend is S3_BACKEND
    with pytest.raises(ValueError):
        DistributedDataStore(env, backend="tape")


def test_datastore_redis_faster_than_s3_for_small_objects():
    env = Environment()
    s3 = DistributedDataStore(env, backend="s3", rng=SeededRandom(13))
    redis = DistributedDataStore(env, backend="redis", rng=SeededRandom(13))

    def run(store, key):
        yield env.process(store.write(key, 1024, "k"))

    process_s3 = env.process(run(s3, "a"))
    process_redis = env.process(run(redis, "b"))
    env.run(until=process_s3)
    env.run(until=process_redis)
    assert sum(redis.write_latencies) < sum(s3.write_latencies)


def test_datastore_delete_and_invalidate():
    env = Environment()
    store = DistributedDataStore(env, backend="redis", rng=SeededRandom(14))

    def run():
        yield env.process(store.write("x", 10, "k", node_id="n1"))
        return True

    env.run(until=env.process(run()))
    assert store.contains("x")
    store.invalidate_cache("n1")
    assert store.delete("x")
    assert not store.delete("x")
    assert store.object_count() == 0


# ----------------------------------------------------------------------
# VM provisioner.
# ----------------------------------------------------------------------

def test_provision_immediately_creates_hosts_without_delay():
    env = Environment()
    provisioner = VMProvisioner(env, rng=SeededRandom(15))
    hosts = provisioner.provision_immediately(3)
    assert len(hosts) == 3
    assert env.now == 0.0
    assert provisioner.hosts_provisioned == 3
    assert len({host.host_id for host in hosts}) == 3


def test_provision_has_boot_delay_and_callback():
    env = Environment()
    provisioner = VMProvisioner(env, boot_time_mean=60.0, rng=SeededRandom(16))
    ready = []
    provisioner.on_host_ready(lambda host, request: ready.append((host, request)))

    def run():
        host = yield env.process(provisioner.provision(reason="burst"))
        return host

    process = env.process(run())
    host = env.run(until=process)
    assert env.now >= 20.0
    assert ready and ready[0][0] is host
    assert ready[0][1].reason == "burst"
    assert provisioner.mean_provisioning_time() == pytest.approx(env.now)


def test_provisioner_release_decommissions_host():
    env = Environment()
    provisioner = VMProvisioner(env, rng=SeededRandom(17))
    host = provisioner.provision_immediately(1)[0]
    provisioner.release(host)
    assert not host.is_active
    assert provisioner.hosts_released == 1


def test_mean_provisioning_time_none_without_requests():
    env = Environment()
    provisioner = VMProvisioner(env)
    assert provisioner.mean_provisioning_time() is None
