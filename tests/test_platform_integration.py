"""Integration tests: the full platform replaying traces under every policy."""

import pytest

from repro import run_experiment
from repro.core import ClusterConfig, NotebookOSPlatform, PlatformConfig
from repro.core.config import PlatformConfig as _PlatformConfig
from repro.metrics.collector import EventKind
from repro.policies import (
    BatchPolicy,
    LargeContainerPoolPolicy,
    NotebookOSPolicy,
    ReservationPolicy,
    make_policy,
)
from repro.workload import AdobeTraceGenerator, SessionTrace, TaskRecord, Trace


def small_trace(seed=1, sessions=8, hours=1.5):
    return AdobeTraceGenerator(seed=seed, num_sessions=sessions,
                               duration_hours=hours).generate()


def dense_trace(gpus=4, num_sessions=6, tasks_per_session=3):
    """A hand-built trace with simultaneous GPU-heavy tasks (forces contention)."""
    sessions = []
    for s in range(num_sessions):
        tasks = [TaskRecord(session_id=f"s{s}", submit_time=60.0 + t * 400.0,
                            duration=300.0, gpus=gpus,
                            code="model = train(model, data)\nhistory.append(1)\n",
                            task_index=t)
                 for t in range(tasks_per_session)]
        sessions.append(SessionTrace(session_id=f"s{s}", user_id=f"u{s}",
                                     start_time=0.0, end_time=3600.0,
                                     gpus_requested=gpus, tasks=tasks))
    return Trace(name="dense", sessions=sessions)


# ----------------------------------------------------------------------
# Policy registry.
# ----------------------------------------------------------------------

def test_make_policy_registry():
    assert isinstance(make_policy("notebookos"), NotebookOSPolicy)
    assert isinstance(make_policy("reservation"), ReservationPolicy)
    assert isinstance(make_policy("batch"), BatchPolicy)
    assert isinstance(make_policy("lcp"), LargeContainerPoolPolicy)
    with pytest.raises(ValueError):
        make_policy("slurm")


# ----------------------------------------------------------------------
# End-to-end runs for each policy.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("policy", ["notebookos", "reservation", "batch", "lcp"])
def test_all_policies_complete_every_task(policy):
    trace = small_trace()
    result = run_experiment(trace, policy=policy, seed=3)
    completed = result.collector.completed_tasks()
    assert len(completed) == trace.total_task_count
    assert all(t.status == "ok" for t in completed)
    assert all(t.interactivity_delay is not None and t.interactivity_delay >= 0
               for t in completed)
    assert all(t.task_completion_time >= 0 for t in completed)


def test_notebookos_creates_one_kernel_per_session_with_three_replicas():
    trace = small_trace(sessions=5)
    policy = NotebookOSPolicy()
    platform = NotebookOSPlatform(policy, cluster_config=ClusterConfig(initial_hosts=6))
    platform.run_workload(trace)
    created = platform.metrics.events_of_kind(EventKind.KERNEL_CREATED)
    assert len(created) == 5
    # Kernels are shut down when their sessions end.
    terminated = platform.metrics.events_of_kind(EventKind.KERNEL_TERMINATED)
    assert len(terminated) == 5
    assert not platform.global_scheduler.kernels


def test_notebookos_replicas_on_distinct_hosts():
    trace = small_trace(sessions=3)
    policy = NotebookOSPolicy()
    platform = NotebookOSPlatform(policy, cluster_config=ClusterConfig(initial_hosts=6))

    kernels = []
    original = platform.global_scheduler.start_kernel

    def recording_start_kernel(*args, **kwargs):
        process = original(*args, **kwargs)
        # The generator yields the kernel at completion; capture through the dict.
        return process

    platform.run_workload(trace)
    # After the run the kernels were removed; instead verify via events.
    created = platform.metrics.events_of_kind(EventKind.KERNEL_CREATED)
    for event in created:
        # Detail format: "kernel-N on ['host-a', 'host-b', 'host-c']".
        hosts_part = event.detail.split(" on ")[1]
        hosts = [h.strip(" '[]") for h in hosts_part.split(",")]
        assert len(hosts) == len(set(hosts)) == 3


def test_notebookos_dynamic_binding_releases_gpus_after_tasks():
    trace = small_trace(sessions=6)
    policy = NotebookOSPolicy()
    platform = NotebookOSPlatform(policy, cluster_config=ClusterConfig(initial_hosts=4))
    platform.run_workload(trace)
    # After the workload, no GPUs remain bound anywhere.
    assert all(host.allocated_gpus == 0 for host in platform.cluster.hosts.values())


def test_notebookos_records_sync_and_datastore_latencies():
    trace = small_trace(sessions=6)
    result = run_experiment(trace, policy="notebookos", seed=2)
    assert result.collector.raft_sync_latencies
    assert result.collector.datastore_write_latencies


def test_notebookos_contention_triggers_migrations_or_waits():
    """With tiny hosts and concurrent 4-GPU tasks, elections must sometimes fail."""
    trace = dense_trace(gpus=8, num_sessions=5)
    config = PlatformConfig(scaling_buffer_hosts=0)
    result = run_experiment(trace, policy="notebookos",
                            cluster_config=ClusterConfig(initial_hosts=3, max_hosts=8),
                            platform_config=config)
    completed = result.collector.completed_tasks()
    assert len(completed) == trace.total_task_count
    migrations = result.migration_count()
    waited = any((t.interactivity_delay or 0) > 1.0 for t in completed)
    assert migrations > 0 or waited


def test_reservation_provisioned_gpus_track_reserved_sessions():
    trace = small_trace(sessions=6)
    result = run_experiment(trace, policy="reservation", seed=5)
    peak_reserved = sum(s.gpus_requested for s in trace)
    assert result.collector.provisioned_gpus.maximum() <= peak_reserved
    assert result.collector.provisioned_gpus.maximum() > 0


def test_batch_interactivity_much_worse_than_notebookos():
    trace = small_trace(sessions=8)
    batch = run_experiment(trace, policy="batch", seed=1)
    notebookos = run_experiment(trace, policy="notebookos", seed=1)
    assert batch.interactivity_cdf.percentile(0.5) > \
        notebookos.interactivity_cdf.percentile(0.5) * 10
    # Batch only provisions GPUs while jobs run.
    assert batch.provisioned_gpu_hours < notebookos.provisioned_gpu_hours


def test_lcp_between_notebookos_and_batch_in_interactivity():
    trace = small_trace(sessions=8)
    lcp = run_experiment(trace, policy="lcp", seed=1)
    notebookos = run_experiment(trace, policy="notebookos", seed=1)
    batch = run_experiment(trace, policy="batch", seed=1)
    assert notebookos.interactivity_cdf.percentile(0.5) < \
        lcp.interactivity_cdf.percentile(0.5) < \
        batch.interactivity_cdf.percentile(0.5)


def test_notebookos_saves_gpu_hours_vs_reservation_at_scale():
    trace = AdobeTraceGenerator(seed=11, num_sessions=40,
                                duration_hours=6.0).generate()
    notebookos = run_experiment(trace, policy="notebookos", seed=4)
    reservation = run_experiment(trace, policy="reservation", seed=4)
    saved = notebookos.gpu_hours_saved_vs(reservation)
    assert saved > 0
    # Interactivity stays in the same regime as Reservation (§5.3.2).
    assert notebookos.interactivity_cdf.percentile(0.5) < 2.0


def test_autoscaler_scales_out_under_load_and_in_when_idle():
    trace = dense_trace(gpus=8, num_sessions=8, tasks_per_session=2)
    config = PlatformConfig(autoscaler_interval_s=30.0, scaling_buffer_hosts=0)
    policy = NotebookOSPolicy()
    platform = NotebookOSPlatform(policy,
                                  cluster_config=ClusterConfig(initial_hosts=2,
                                                               max_hosts=20),
                                  platform_config=config)
    result = platform.run_workload(trace, until=7200.0)
    assert result.scale_out_count() >= 1
    # The cluster grew beyond its initial 16 GPUs at some point under load...
    assert result.collector.provisioned_gpus.maximum() > 16
    # ...and idle servers were released again once the load subsided.
    assert len(result.collector.events_of_kind(EventKind.SCALE_IN)) >= 1


def test_experiment_result_wall_clock_and_breakdown():
    trace = small_trace(sessions=4)
    result = run_experiment(trace, policy="notebookos")
    assert result.wall_clock_runtime > 0
    assert len(result.breakdown) == trace.total_task_count
    table = result.breakdown.table()
    assert table["execute_code"]["count"] == trace.total_task_count
    assert table["primary_replica_protocol"]["count"] == trace.total_task_count


def test_reservation_breakdown_has_no_election_step():
    trace = small_trace(sessions=4)
    result = run_experiment(trace, policy="reservation")
    table = result.breakdown.table()
    assert table["primary_replica_protocol"] == {"count": 0}
    assert table["execute_code"]["count"] == trace.total_task_count


def test_deterministic_runs_with_same_seed():
    trace = small_trace(sessions=5)
    first = run_experiment(trace, policy="notebookos", seed=9)
    second = run_experiment(trace, policy="notebookos", seed=9)
    assert first.provisioned_gpu_hours == pytest.approx(second.provisioned_gpu_hours)
    assert first.interactivity_cdf.summary() == second.interactivity_cdf.summary()


def test_platform_active_counts_return_to_zero():
    trace = small_trace(sessions=5)
    policy = NotebookOSPolicy()
    platform = NotebookOSPlatform(policy, cluster_config=ClusterConfig(initial_hosts=4))
    platform.run_workload(trace)
    assert platform.active_session_count == 0
    assert platform.active_training_count == 0
