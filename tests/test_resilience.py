"""Tests for repro.resilience: supervised shard workers, deterministic
epoch recovery, resilient sweeps, and the crash-injection harness.

The load-bearing assertions here are *bit-identity* ones: a run that loses a
worker (SIGKILL, hang, truncated frame) and recovers it via journal replay
must produce a merged collector digest byte-identical to the fault-free run.
Everything else — counters, hook topics, quarantine records — is
observability around that invariant.
"""

import hashlib
import json
import os
import signal

import pytest

from repro.api import (
    SPEC_RETRY,
    WORKER_LOST,
    WORKER_RECOVERED,
    HookBus,
    RunSpec,
)
from repro.experiments.runner import (
    RunOutcome,
    SweepExecutionError,
    run_specs,
)
from repro.experiments.scenarios import build_trace, default_registry
from repro.experiments.store import ResultStore
from repro.resilience import (
    FaultInjection,
    ResilienceMonitor,
    SupervisorConfig,
    backoff_delay,
    backoff_schedule,
)
from repro.resilience.supervisor import drain_and_close
from repro.shard.plan import ShardPlan
from repro.shard.runner import ShardExecutionError, run_sharded


def _digest(result) -> str:
    payload = json.dumps(result.collector.to_dict(), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@pytest.fixture(scope="module")
def smoke_spec():
    return RunSpec.from_scenario("smoke", seed=7)


@pytest.fixture(scope="module")
def smoke_plan(smoke_spec):
    return ShardPlan.from_trace(build_trace(smoke_spec), 2)


@pytest.fixture(scope="module")
def fault_free(smoke_spec):
    """One fault-free K=2 supervised run; its digest is the reference."""
    sharded = run_sharded(smoke_spec, 2)
    return sharded, _digest(sharded.result)


# ----------------------------------------------------------------------
# Backoff schedule (pure function).
# ----------------------------------------------------------------------
def test_backoff_is_deterministic_exponential_and_capped():
    assert backoff_delay(1, 0.5) == 0.5
    assert backoff_delay(2, 0.5) == 1.0
    assert backoff_delay(3, 0.5) == 2.0
    assert backoff_delay(10, 0.5) == 30.0  # default cap
    assert backoff_delay(4, 0.5, cap_s=1.5) == 1.5
    assert backoff_schedule(3, 0.5) == [0.5, 1.0, 2.0]
    assert backoff_schedule(3, 0.5) == backoff_schedule(3, 0.5)


def test_backoff_zero_base_disables_waiting():
    assert backoff_delay(5, 0.0) == 0.0
    assert backoff_schedule(3, 0.0) == [0.0, 0.0, 0.0]


def test_backoff_rejects_zero_attempt():
    with pytest.raises(ValueError, match="1-based"):
        backoff_delay(0, 1.0)


# ----------------------------------------------------------------------
# Config / injection validation.
# ----------------------------------------------------------------------
def test_supervisor_config_validates():
    with pytest.raises(ValueError, match="worker_timeout_s"):
        SupervisorConfig(worker_timeout_s=0.0)
    with pytest.raises(ValueError, match="max_worker_restarts"):
        SupervisorConfig(max_worker_restarts=-1)
    with pytest.raises(ValueError, match="poll_interval_s"):
        SupervisorConfig(poll_interval_s=0.0)


def test_fault_injection_validates_and_roundtrips():
    with pytest.raises(ValueError, match="unknown fault mode"):
        FaultInjection(shard=0, epoch=1, mode="meteor-strike")
    injection = FaultInjection(shard=1, epoch=3, mode="hang", persistent=True)
    assert FaultInjection.from_dict(injection.to_dict()) == injection


def test_drain_and_close_is_idempotent_and_never_raises():
    import multiprocessing

    parent, child = multiprocessing.get_context("fork").Pipe()
    child.send(("frame", {"x": 1}))  # leave data in flight
    drain_and_close(parent)
    drain_and_close(parent)  # double close must not raise
    drain_and_close(None)
    child.close()


# ----------------------------------------------------------------------
# Fault-free supervised runs.
# ----------------------------------------------------------------------
def test_fault_free_run_reports_no_resilience_events(fault_free):
    sharded, _ = fault_free
    assert sharded.mode == "parallel"
    assert sharded.recoveries == 0
    assert not sharded.degraded
    assert sharded.resilience["workers_lost"] == 0
    assert sharded.resilience["events"] == []
    for payload in sharded.shard_payloads:
        assert "resilience" not in payload  # only recovered workers carry it


# ----------------------------------------------------------------------
# Recovery bit-identity: one scenario per failure mode.
# ----------------------------------------------------------------------
def test_sigkill_recovery_is_byte_identical(smoke_spec, fault_free):
    _, reference = fault_free
    sharded = run_sharded(
        smoke_spec, 2,
        fault_injection=FaultInjection(shard=1, epoch=2, mode="sigkill"))
    assert _digest(sharded.result) == reference
    assert sharded.mode == "parallel"
    assert sharded.recoveries == 1
    resilience = sharded.resilience
    assert resilience["workers_lost"] == 1
    assert resilience["workers_recovered"] == 1
    assert resilience["restarts_per_shard"] == {"1": 1}
    assert not resilience["degraded"]
    kinds = [event["event"] for event in resilience["events"]]
    assert kinds == ["worker_lost", "worker_recovered"]
    # The recovered incarnation's payload carries its replay accounting,
    # folded from the worker-side ResilienceContext.
    recovered = sharded.shard_payloads[1]["resilience"]
    assert recovered["recovered"] is True
    assert recovered["incarnation"] == 2
    assert recovered["replayed_epochs"] == 2


def test_truncated_frame_recovery_is_byte_identical(smoke_spec, fault_free):
    _, reference = fault_free
    sharded = run_sharded(
        smoke_spec, 2,
        fault_injection=FaultInjection(shard=0, epoch=1,
                                       mode="truncate_frame"))
    assert _digest(sharded.result) == reference
    assert sharded.recoveries == 1
    reasons = [event.get("reason", "") for event in
               sharded.resilience["events"]]
    assert any("corrupt" in reason or "pipe closed" in reason
               or "died" in reason for reason in reasons)


def test_hang_recovery_is_byte_identical(smoke_spec, fault_free):
    _, reference = fault_free
    sharded = run_sharded(
        smoke_spec, 2,
        fault_injection=FaultInjection(shard=1, epoch=3, mode="hang"),
        supervision=SupervisorConfig(worker_timeout_s=2.0))
    assert _digest(sharded.result) == reference
    assert sharded.resilience["workers_lost"] == 1
    assert sharded.resilience["workers_recovered"] == 1
    assert "hung" in sharded.resilience["events"][0]["reason"]


def test_result_phase_kill_recovery_is_byte_identical(smoke_spec, smoke_plan,
                                                      fault_free):
    _, reference = fault_free
    # epoch >= num_epochs targets the final result send.
    sharded = run_sharded(
        smoke_spec, 2,
        fault_injection=FaultInjection(shard=0, epoch=smoke_plan.num_epochs,
                                       mode="sigkill"))
    assert _digest(sharded.result) == reference
    assert sharded.recoveries == 1
    # The respawn had the full journal: it replayed every epoch.
    assert (sharded.shard_payloads[0]["resilience"]["replayed_epochs"]
            == smoke_plan.num_epochs)


def test_epoch_zero_kill_recovery_is_byte_identical(smoke_spec, fault_free):
    _, reference = fault_free
    sharded = run_sharded(
        smoke_spec, 2,
        fault_injection=FaultInjection(shard=1, epoch=0, mode="sigkill"))
    assert _digest(sharded.result) == reference
    assert sharded.shard_payloads[1]["resilience"]["replayed_epochs"] == 0


# ----------------------------------------------------------------------
# Degradation and deterministic errors.
# ----------------------------------------------------------------------
def test_persistent_failure_degrades_to_serial(smoke_spec, fault_free):
    _, reference = fault_free
    sharded = run_sharded(
        smoke_spec, 2,
        fault_injection=FaultInjection(shard=1, epoch=1, mode="sigkill",
                                       persistent=True),
        supervision=SupervisorConfig(max_worker_restarts=1))
    assert sharded.mode == "degraded"
    assert sharded.degraded
    assert _digest(sharded.result) == reference  # same result, no processes
    resilience = sharded.resilience
    assert resilience["workers_lost"] == 2  # original + one respawn
    assert resilience["degraded_reason"] is not None
    assert "shard 1" in resilience["degraded_reason"]
    assert resilience["events"][-1]["event"] == "degraded_to_serial"


def test_deterministic_worker_error_is_not_retried(smoke_spec):
    # An in-simulation exception would replay identically: it must surface
    # as ShardExecutionError with zero recovery attempts, exactly as the
    # unsupervised driver behaved.
    bad = RunSpec.from_scenario("smoke", policy="no-such-policy", seed=7)
    hooks = HookBus()
    seen = []
    hooks.subscribe(WORKER_LOST, lambda *payload: seen.append(payload))
    with pytest.raises(ShardExecutionError, match="no-such-policy"):
        run_sharded(bad, 2, hooks=hooks)
    assert seen == []


def test_injected_exception_surfaces_as_shard_execution_error(smoke_spec):
    with pytest.raises(ShardExecutionError, match="injected failure"):
        run_sharded(
            smoke_spec, 2,
            fault_injection=FaultInjection(shard=0, epoch=1,
                                           mode="exception"))


# ----------------------------------------------------------------------
# Hook topics.
# ----------------------------------------------------------------------
def test_recovery_publishes_worker_lost_and_recovered(smoke_spec):
    hooks = HookBus()
    lost, recovered = [], []
    hooks.subscribe(WORKER_LOST,
                    lambda time, shard, detail: lost.append((time, shard)))
    hooks.subscribe(WORKER_RECOVERED,
                    lambda time, shard, detail:
                    recovered.append((time, shard)))
    run_sharded(smoke_spec, 2, hooks=hooks,
                fault_injection=FaultInjection(shard=1, epoch=2,
                                               mode="sigkill"))
    assert len(lost) == len(recovered) == 1
    assert lost[0][1] == recovered[0][1] == 1
    # The published time is the simulated barrier time being gathered.
    plan = ShardPlan.from_trace(build_trace(smoke_spec), 2)
    assert lost[0][0] == plan.barrier_times[2]


def test_monitor_payload_shape():
    monitor = ResilienceMonitor()
    monitor.worker_lost(0, 100.0, "test")
    monitor.worker_recovered(0, 100.0, replayed_epochs=1, incarnation=2)
    monitor.degraded("because")
    payload = monitor.payload()
    assert payload["workers_lost"] == 1
    assert payload["workers_recovered"] == 1
    assert payload["restarts_per_shard"] == {"0": 1}
    assert payload["degraded"] is True
    assert payload["degraded_reason"] == "because"
    assert [event["event"] for event in payload["events"]] == [
        "worker_lost", "worker_recovered", "degraded_to_serial"]
    assert monitor.recoveries == 1


# ----------------------------------------------------------------------
# Resilient sweeps: retry, quarantine, salvage, resume.
# ----------------------------------------------------------------------
def _specs(policies, seed=7):
    scenario = default_registry().get("smoke")
    return [scenario.instantiate(policy=policy, seed=seed)
            for policy in policies]


@pytest.mark.parametrize("workers", [1, 2])
def test_sweep_quarantines_bad_spec_and_salvages_rest(tmp_path, workers):
    store = ResultStore(tmp_path)
    specs = _specs(["notebookos", "no-such-policy", "batch"])
    outcomes = run_specs(specs, workers=workers, store=store,
                         retries=1, strict=False)
    assert len(outcomes) == 3
    by_policy = {outcome.spec.policy: outcome for outcome in outcomes}
    bad = by_policy["no-such-policy"]
    assert bad.failed and bad.result is None
    assert bad.attempts == 2  # retries + 1
    assert "no-such-policy" in bad.error
    assert bad.traceback and "UnknownPolicyError" in bad.traceback
    for policy in ("notebookos", "batch"):
        outcome = by_policy[policy]
        assert not outcome.failed
        assert store.load(outcome.spec) is not None  # salvaged AND stored
    assert store.load(bad.spec) is None


def test_sweep_strict_raises_at_end_with_failures_attached(tmp_path):
    store = ResultStore(tmp_path)
    specs = _specs(["notebookos", "no-such-policy"])
    with pytest.raises(SweepExecutionError) as excinfo:
        run_specs(specs, workers=2, store=store, strict=True)
    assert len(excinfo.value.failures) == 1
    assert excinfo.value.failures[0].spec.policy == "no-such-policy"
    # Salvage happened before the raise: the healthy spec is stored.
    assert store.load(specs[0]) is not None


def test_sweep_retry_then_succeed_parallel(tmp_path, monkeypatch):
    """A spec that fails once then succeeds: retried, attempt count == 2.

    The parallel scheduler forks workers, so a parent-side monkeypatch of
    ``_execute_spec`` is inherited; a marker file records the first attempt.
    """
    import repro.experiments.runner as runner_module

    marker = tmp_path / "first-attempt"
    real = runner_module._execute_spec

    def flaky(spec_dict):
        if spec_dict["policy"] == "batch" and not marker.exists():
            marker.write_text("failed once")
            raise RuntimeError("transient failure, attempt 1")
        return real(spec_dict)

    monkeypatch.setattr(runner_module, "_execute_spec", flaky)
    hooks = HookBus()
    retries_seen = []
    hooks.subscribe(SPEC_RETRY, lambda attempt, label, detail:
                    retries_seen.append((attempt, label, detail)))
    outcomes = run_specs(_specs(["notebookos", "batch"]), workers=2,
                         retries=2, hooks=hooks)
    by_policy = {outcome.spec.policy: outcome for outcome in outcomes}
    assert by_policy["batch"].attempts == 2
    assert not by_policy["batch"].failed
    assert by_policy["notebookos"].attempts == 1
    assert len(retries_seen) == 1
    attempt, label, detail = retries_seen[0]
    assert attempt == 1
    assert "batch" in label
    assert "transient failure" in detail["error"]


def test_sweep_survives_sigkilled_worker(tmp_path, monkeypatch):
    """SIGKILL of one sweep worker quarantines only its spec — the old
    ProcessPoolExecutor turned this into BrokenProcessPool for everyone."""
    import repro.experiments.runner as runner_module

    real = runner_module._execute_spec

    def murdered(spec_dict):
        if spec_dict["policy"] == "batch":
            os.kill(os.getpid(), signal.SIGKILL)
        return real(spec_dict)

    monkeypatch.setattr(runner_module, "_execute_spec", murdered)
    outcomes = run_specs(_specs(["notebookos", "batch", "lcp"]), workers=2,
                         strict=False)
    by_policy = {outcome.spec.policy: outcome for outcome in outcomes}
    assert by_policy["batch"].failed
    assert "died" in by_policy["batch"].error
    assert not by_policy["notebookos"].failed
    assert not by_policy["lcp"].failed


def test_sweep_kills_and_quarantines_hung_worker(tmp_path, monkeypatch):
    import time as wallclock

    import repro.experiments.runner as runner_module

    real = runner_module._execute_spec

    def stuck(spec_dict):
        if spec_dict["policy"] == "batch":
            while True:
                wallclock.sleep(0.25)
        return real(spec_dict)

    monkeypatch.setattr(runner_module, "_execute_spec", stuck)
    outcomes = run_specs(_specs(["notebookos", "batch"]), workers=2,
                         spec_timeout_s=1.5, strict=False)
    by_policy = {outcome.spec.policy: outcome for outcome in outcomes}
    assert by_policy["batch"].failed
    assert "timed out" in by_policy["batch"].error
    assert not by_policy["notebookos"].failed


def test_sweep_serial_retry_counts_attempts(monkeypatch, tmp_path):
    import repro.experiments.runner as runner_module

    calls = []
    real = runner_module._execute_spec

    def flaky(spec_dict):
        calls.append(1)
        if len(calls) < 3:
            raise RuntimeError("still warming up")
        return real(spec_dict)

    monkeypatch.setattr(runner_module, "_execute_spec", flaky)
    outcomes = run_specs(_specs(["notebookos"]), workers=1, retries=2)
    assert outcomes[0].attempts == 3
    assert not outcomes[0].failed


def test_sweep_resume_reruns_nothing_stored(tmp_path, monkeypatch):
    store = ResultStore(tmp_path)
    specs = _specs(["notebookos", "batch"])
    first = run_specs(specs, workers=1, store=store)
    assert all(not outcome.cached for outcome in first)

    # Resume: every spec is served from the store; execution would explode.
    import repro.experiments.runner as runner_module

    def forbidden(spec_dict):
        raise AssertionError("resume must not re-run stored specs")

    monkeypatch.setattr(runner_module, "_execute_spec", forbidden)
    second = run_specs(specs, workers=1, store=store)
    assert all(outcome.cached for outcome in second)
    assert [_digest(a.result) for a in first] == \
        [_digest(b.result) for b in second]


def test_run_specs_rejects_negative_retries():
    with pytest.raises(ValueError, match="retries"):
        run_specs(_specs(["notebookos"]), retries=-1)


# ----------------------------------------------------------------------
# Result store: atomicity pinning (satellite b).
# ----------------------------------------------------------------------
def test_store_truncated_entry_is_a_miss_then_repaired(tmp_path):
    spec = _specs(["notebookos"])[0]
    store = ResultStore(tmp_path)
    outcome = run_specs([spec], store=store)[0]
    path = store.path_for(spec)
    full = path.read_text()

    # A write torn mid-flight (the failure os.replace prevents): every
    # truncation prefix must read as a miss, never as garbage or a crash.
    path.write_text(full[:len(full) // 2])
    assert store.load(spec) is None
    store.save(spec, outcome.result.to_dict())
    assert store.load(spec) is not None


def test_store_save_leaves_no_temp_droppings(tmp_path):
    spec = _specs(["notebookos"])[0]
    store = ResultStore(tmp_path)
    run_specs([spec], store=store)
    leftovers = [p for p in tmp_path.rglob("*")
                 if p.is_file() and not p.name.endswith(".json")]
    assert leftovers == []


def test_store_save_is_atomic_under_interrupt(tmp_path, monkeypatch):
    """If the final rename never happens, the old entry must be intact."""
    spec = _specs(["notebookos"])[0]
    store = ResultStore(tmp_path)
    outcome = run_specs([spec], store=store)[0]
    before = store.path_for(spec).read_text()

    real_replace = os.replace

    def exploding_replace(src, dst):
        raise OSError("simulated crash before rename")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError, match="simulated crash"):
        store.save(spec, outcome.result.to_dict())
    monkeypatch.setattr(os, "replace", real_replace)

    assert store.path_for(spec).read_text() == before  # untouched
    assert store.load(spec) is not None


# ----------------------------------------------------------------------
# CLI surfaces (satellite c).
# ----------------------------------------------------------------------
def test_cli_sweep_failure_summary_and_exit_code(tmp_path, capsys):
    from repro.experiments.__main__ import main

    code = main(["sweep", "--scenario", "smoke",
                 "--policies", "notebookos,no-such-policy",
                 "--seeds", "7", "--retries", "1",
                 "--store-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 1
    assert "quarantined" in captured.err
    assert "no-such-policy" in captured.err
    assert "2 attempt(s)" in captured.err
    assert "Traceback" not in captured.err  # summary line, not a dump
    # The healthy spec's row still prints (salvage is visible).
    assert "notebookos" in captured.out


def test_cli_sweep_resume_reports_store_hits(tmp_path, capsys):
    from repro.experiments.__main__ import main

    assert main(["sweep", "--scenario", "smoke", "--policies", "notebookos",
                 "--seeds", "7", "--store-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["sweep", "--scenario", "smoke", "--policies", "notebookos",
                 "--seeds", "7", "--resume",
                 "--store-dir", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "resume: 1 spec(s) served from the store, 0 executed" \
        in captured.out


def test_cli_sweep_resume_requires_store(tmp_path, capsys):
    from repro.experiments.__main__ import main

    code = main(["sweep", "--scenario", "smoke", "--policies", "notebookos",
                 "--resume", "--no-store", "--store-dir", str(tmp_path)])
    assert code == 2
    assert "--resume" in capsys.readouterr().err


def test_cli_run_sharded_smoke(capsys):
    from repro.experiments.__main__ import main

    code = main(["run", "smoke", "--shards", "2", "--worker-timeout", "60",
                 "--no-store"])
    captured = capsys.readouterr()
    assert code == 0
    assert "mode=parallel" in captured.out
    assert "shards=2" in captured.out


# ----------------------------------------------------------------------
# Slow lane: exhaustive bit-identity sweeps (satellite d + acceptance).
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.parametrize("num_shards", [2, 3, 4])
def test_failure_storm_serial_parallel_and_recovered_identical(num_shards):
    spec = RunSpec.from_scenario("failure_storm", seed=11)
    serial = run_sharded(spec, num_shards, parallel=False)
    parallel = run_sharded(spec, num_shards, parallel=True)
    assert _digest(serial.result) == _digest(parallel.result)
    killed = run_sharded(
        spec, num_shards,
        fault_injection=FaultInjection(shard=num_shards - 1, epoch=2,
                                       mode="sigkill"))
    assert _digest(killed.result) == _digest(serial.result)
    assert killed.recoveries == 1


@pytest.mark.slow
@pytest.mark.parametrize("num_shards", [2, 4])
@pytest.mark.parametrize("epoch_kind", ["first", "mid", "last", "result"])
def test_cluster_scale_kill_at_arbitrary_epoch_is_byte_identical(
        num_shards, epoch_kind):
    """Acceptance: SIGKILL of any single worker at an arbitrary epoch —
    including the result phase — recovers with an identical merged digest."""
    scenario = default_registry().get("cluster_scale")
    spec = scenario.instantiate(seed=7, num_sessions=40, duration_hours=2.0)
    plan = ShardPlan.from_trace(build_trace(spec), num_shards)
    epoch = {"first": 0, "mid": plan.num_epochs // 2,
             "last": plan.num_epochs - 1, "result": plan.num_epochs,
             }[epoch_kind]
    reference = run_sharded(spec, num_shards)
    killed = run_sharded(
        spec, num_shards,
        fault_injection=FaultInjection(shard=num_shards - 1, epoch=epoch,
                                       mode="sigkill"))
    assert _digest(killed.result) == _digest(reference.result)
    assert killed.recoveries == 1
    assert killed.mode == "parallel"
