"""Property-style determinism tests for the simulation engine.

These are the regression net for the fast-path engine: randomized
process/timeout/interrupt structures are generated from a seed and executed
twice, and the two runs must produce bit-identical execution traces.  On top
of the raw engine, a full platform experiment must serialize identically
across (a) two independent runs and (b) a JSON round-trip of the resulting
:class:`~repro.metrics.collector.MetricsCollector`.
"""

import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import default_registry
from repro.experiments.runner import _execute_spec
from repro.metrics.collector import ExperimentResult, MetricsCollector
from repro.simulation import AllOf, AnyOf, Environment, Interrupt


# ----------------------------------------------------------------------
# Randomized engine structures.
# ----------------------------------------------------------------------
def run_random_structure(seed: int) -> list:
    """Build and run a random process structure; return its execution trace.

    The structure mixes every engine primitive the simulator relies on:
    plain number sleeps, ``Timeout`` events, child processes joined with
    ``AllOf``/``AnyOf``, bare events signalled across processes, and
    interrupts — all chosen by a seeded PRNG so the same seed always builds
    the same structure.
    """
    rng = random.Random(seed)
    env = Environment()
    trace: list = []
    signals = [env.event() for _ in range(rng.randint(1, 4))]

    def worker(wid: int, depth: int):
        for step in range(rng.randint(1, 5)):
            choice = rng.random()
            if choice < 0.35:
                delay = rng.choice([0.0, 0.5, 1.0, 1.5, rng.random()])
                if rng.random() < 0.5:
                    yield delay                      # number sleep
                else:
                    yield env.timeout(delay)         # classic timeout
                trace.append(("slept", wid, step, env.now))
            elif choice < 0.55 and depth < 2:
                children = [env.process(worker(wid * 10 + c, depth + 1))
                            for c in range(rng.randint(1, 3))]
                joiner = AllOf if rng.random() < 0.7 else AnyOf
                yield joiner(env, children)
                trace.append(("joined", wid, step, env.now))
            elif choice < 0.75 and signals:
                signal = rng.choice(signals)
                if not signal.triggered:
                    signal.succeed((wid, step))
                    trace.append(("signalled", wid, step, env.now))
                yield rng.random() * 0.2
            else:
                try:
                    yield rng.choice([5.0, 10.0, 20.0])
                    trace.append(("long-nap", wid, step, env.now))
                except Interrupt as interrupt:
                    trace.append(("interrupted", wid, step,
                                  interrupt.cause, env.now))

    workers = [env.process(worker(i, 0)) for i in range(rng.randint(2, 6))]

    def interrupter():
        for round_no in range(rng.randint(1, 4)):
            yield rng.random() * 3.0
            victim = rng.choice(workers)
            if victim.is_alive:
                victim.interrupt(f"round-{round_no}")
                trace.append(("interrupt-sent", round_no, env.now))

    def late_signaller():
        yield rng.random() * 2.0
        for signal in signals:
            if not signal.triggered:
                signal.succeed("late")
                trace.append(("late-signal", env.now))

    env.process(interrupter())
    env.process(late_signaller())
    env.run(until=60.0)
    trace.append(("final", env.now))
    return trace


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_structures_replay_identically(seed):
    assert run_random_structure(seed) == run_random_structure(seed)


def test_different_seeds_produce_different_traces():
    # Sanity check that the generator actually varies with the seed (a
    # constant trace would make the property above vacuous).
    traces = {tuple(map(repr, run_random_structure(seed))) for seed in range(8)}
    assert len(traces) > 1


# ----------------------------------------------------------------------
# Full-experiment determinism and collector round-trips.
# ----------------------------------------------------------------------
def _canonical(result_dict: dict) -> str:
    # wall_clock_runtime is the only legitimately nondeterministic field.
    cleaned = dict(result_dict)
    cleaned.pop("wall_clock_runtime", None)
    return json.dumps(cleaned, sort_keys=True)


def test_smoke_experiment_runs_are_bit_identical():
    spec = default_registry().get("smoke").instantiate().to_dict()
    first = _execute_spec(dict(spec))
    second = _execute_spec(dict(spec))
    assert _canonical(first) == _canonical(second)


def test_collector_json_round_trip_is_bit_identical():
    spec = default_registry().get("smoke").instantiate().to_dict()
    result = ExperimentResult.from_dict(_execute_spec(spec))
    collector_dict = result.collector.to_dict()
    round_tripped = MetricsCollector.from_dict(
        json.loads(json.dumps(collector_dict))).to_dict()
    assert json.dumps(round_tripped, sort_keys=True) == \
        json.dumps(collector_dict, sort_keys=True)
