"""Regenerate the golden-metrics fixtures in this directory.

The goldens freeze the key figure outputs of the ``smoke`` scenario —
Figure 9 interactivity/TCT CDF quantiles, Figure 12 cost/revenue, and
Figure 13 GPU-hours saved — plus a SHA-256 digest of the full serialized
:class:`~repro.metrics.collector.MetricsCollector`, so that engine
refactors can be proven output-preserving bit for bit.

Run from the repository root (only when a behavior change is *intended*)::

    PYTHONPATH=src python tests/golden/generate.py

and commit the resulting ``smoke_metrics.json`` and
``mega_smoke_metrics.json`` together with the change that moved the
numbers.  ``tests/test_golden_metrics.py`` asserts the current engine
reproduces these files exactly.

The mega-smoke golden replays a scaled-down ``mega_scale`` scenario
(same platform/cluster config preset, fewer sessions over a shorter
window) so the batched-decision fast path is pinned on the scenario
family it targets, at a size the test suite can afford.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).with_name("smoke_metrics.json")
MEGA_GOLDEN_PATH = Path(__file__).with_name("mega_smoke_metrics.json")

QUANTILES = (0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99)
FIG13_INTERVALS_MIN = (15, 30, 60, 90, 120)
POLICIES = ("notebookos", "reservation")
MEGA_POLICIES = ("notebookos",)
#: Generator overrides that shrink mega_scale to test-suite size.
MEGA_SMOKE_OVERRIDES = {"num_sessions": 150, "duration_hours": 1.0}


def collector_digest(collector) -> str:
    canonical = json.dumps(collector.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def build_goldens() -> dict:
    from repro.experiments import build_trace, default_registry
    from repro.experiments.runner import _execute_spec
    from repro.metrics.collector import ExperimentResult
    from repro.metrics.cost import BillingModel, gpu_hours_saved_by_state_persistence

    scenario = default_registry().get("smoke")
    billing = BillingModel()
    golden: dict = {"scenario": "smoke", "policies": {}}

    for policy in POLICIES:
        spec = scenario.instantiate(policy=policy)
        # Materialize through the same JSON round-trip the runner and the
        # result store use, so the digest pins the serialized form exactly.
        result = ExperimentResult.from_dict(_execute_spec(spec.to_dict()))
        collector = result.collector
        interactivity = collector.interactivity_cdf()
        tct = collector.tct_cdf()
        trace = build_trace(spec)
        report = billing.report(policy, trace, collector.provisioned_gpus)
        golden["policies"][policy] = {
            "collector_sha256": collector_digest(collector),
            "tasks_completed": len(collector.completed_tasks()),
            "interactivity_quantiles": {
                str(q): interactivity.percentile(q) for q in QUANTILES},
            "tct_quantiles": {str(q): tct.percentile(q) for q in QUANTILES},
            "provisioned_gpu_hours": collector.provisioned_gpu_hours(),
            "committed_gpu_hours": collector.committed_gpu_hours(),
            "fig12_cost": {
                "provider_cost_usd": report.provider_cost_usd,
                "revenue_usd": report.revenue_usd,
                "profit_margin": report.profit_margin,
            },
        }

    smoke_trace = build_trace(scenario.instantiate())
    golden["fig13_gpu_hours_saved"] = {
        str(minutes): {"reclamations": r.reclamations,
                       "gpu_hours_saved": r.gpu_hours_saved}
        for minutes, r in zip(
            FIG13_INTERVALS_MIN,
            gpu_hours_saved_by_state_persistence(
                smoke_trace, reclamation_intervals_minutes=FIG13_INTERVALS_MIN))}
    return golden


def build_mega_goldens() -> dict:
    from repro.experiments import default_registry
    from repro.experiments.runner import _execute_spec
    from repro.metrics.collector import ExperimentResult

    scenario = default_registry().get("mega_scale")
    golden: dict = {"scenario": "mega_scale",
                    "overrides": dict(MEGA_SMOKE_OVERRIDES),
                    "policies": {}}
    for policy in MEGA_POLICIES:
        spec = scenario.instantiate(policy=policy, **MEGA_SMOKE_OVERRIDES)
        result = ExperimentResult.from_dict(_execute_spec(spec.to_dict()))
        collector = result.collector
        golden["policies"][policy] = {
            "collector_sha256": collector_digest(collector),
            "tasks_completed": len(collector.completed_tasks()),
        }
    return golden


def main() -> None:
    golden = build_goldens()
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    mega = build_mega_goldens()
    MEGA_GOLDEN_PATH.write_text(json.dumps(mega, indent=2, sort_keys=True) + "\n")
    print(f"wrote {MEGA_GOLDEN_PATH}")


if __name__ == "__main__":
    main()
