"""Tests for the ``repro.profiling`` subsystem.

Pins the three guarantees the profiler makes: a profiled run is
*bit-identical* to a bare one (hook callbacks never touch the timeline), the
report's counters agree with the metrics collector's ground truth, and the
``profile`` CLI wires it all up (including the ``--json`` artifact).
"""

import json

from repro.api import Simulation
from repro.experiments.__main__ import main
from repro.metrics.collector import EventKind
from repro.profiling import ProfileReport, Profiler


def _canonical_collector(result) -> str:
    return json.dumps(result.to_dict()["collector"], sort_keys=True)


def test_profiled_run_is_bit_identical_and_report_is_consistent():
    bare = Simulation.from_scenario("smoke").run()

    profiler = Profiler()
    simulation = Simulation.from_scenario("smoke").with_profiler(profiler)
    profiled = simulation.run()

    assert _canonical_collector(bare) == _canonical_collector(profiled)

    report = profiler.last
    assert isinstance(report, ProfileReport)
    assert set(report.phases) == {"trace_build", "platform_build", "replay"}
    assert all(seconds >= 0.0 for seconds in report.phases.values())
    assert report.wall_time_s == sum(report.phases.values())

    # Engine dispatch counters: a run dispatches entries in batches, every
    # batch holds at least one entry, and the smoke scenario's long sleeps
    # must have exercised the overflow/rebase machinery.
    dispatch = report.dispatch
    assert dispatch["dispatched"] > 0
    assert 0 < dispatch["batches"] <= dispatch["dispatched"]
    assert report.batch_fusion >= 1.0
    assert dispatch["rebases"] > 0
    assert report.events_per_sec > 0

    # Event-class counters must agree with the collector's ground truth.
    collector = profiled.collector
    for kind in (EventKind.SESSION_STARTED, EventKind.KERNEL_CREATED,
                 EventKind.SCALE_OUT):
        recorded = len(collector.events_of_kind(kind))
        assert report.event_counts.get(kind.value, 0) == recorded
    tasks = len(collector.completed_tasks())
    assert report.hook_counts["task_submit"] == report.hook_counts[
        "task_complete"] == tasks
    assert report.sim_time_s > 0

    # JSON round-trip of the report payload.
    payload = json.loads(report.to_json())
    assert payload["dispatch"] == dispatch
    assert payload["derived"]["batch_fusion"] == round(report.batch_fusion, 3)


def test_profiler_resets_between_runs_and_rejects_second_bus():
    profiler = Profiler()
    simulation = Simulation.from_scenario("smoke").with_profiler(profiler)
    simulation.run()
    simulation.run()
    assert len(profiler.reports) == 2
    first, second = profiler.reports
    # Accumulators reset per run: counts must not double.
    assert first.hook_counts["task_submit"] == second.hook_counts["task_submit"]
    assert first.dispatch["dispatched"] == second.dispatch["dispatched"]

    # Reuse across Simulation objects (each creates its own bus): the
    # profiler follows whichever of its simulations runs — attach migrates
    # to the running bus, so nothing double-counts and every run reports.
    other = Simulation.from_scenario("smoke", policy="reservation") \
        .with_profiler(profiler)
    other.run()
    assert len(profiler.reports) == 3
    assert profiler.last.policy == "reservation"
    simulation.run()         # first simulation again: re-attaches and reports
    assert len(profiler.reports) == 4
    assert profiler.last.policy == "notebookos"
    assert profiler.last.hook_counts["task_submit"] == \
        first.hook_counts["task_submit"]


def test_profile_cli_prints_report_and_writes_json(capsys, tmp_path):
    out = tmp_path / "profile.json"
    code = main(["profile", "smoke", "--json", str(out)])
    captured = capsys.readouterr().out
    assert code == 0
    assert "phases:" in captured and "replay" in captured
    assert "dispatch:" in captured and "batches" in captured
    payload = json.loads(out.read_text())
    assert payload["dispatch"]["dispatched"] > 0
    assert payload["phases"]["replay"] > 0


def test_profile_cli_unknown_scenario_exits_2(capsys, tmp_path):
    code = main(["profile", "no-such-scenario"])
    assert code == 2
    assert "unknown scenario" in capsys.readouterr().err
