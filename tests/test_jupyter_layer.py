"""Unit tests for the Jupyter messaging layer, sessions, and server routing."""

import pytest

from repro.jupyter import (
    ExecuteReply,
    ExecuteRequest,
    JupyterMessage,
    JupyterServer,
    MessageType,
    NotebookCell,
    NotebookClient,
    NotebookSession,
    SessionState,
    YieldRequest,
)
from repro.jupyter.messages import merge_replies
from repro.jupyter.provisioner import GatewayProvisioner
from repro.jupyter.session import CellExecution
from repro.cluster import ResourceRequest
from repro.simulation import Environment, Network


# ----------------------------------------------------------------------
# Messages.
# ----------------------------------------------------------------------

def test_execute_request_carries_code_and_gpus():
    request = ExecuteRequest(kernel_id="k1", session_id="s1",
                             code="model.fit(x)", gpus_required=2)
    assert request.msg_type == MessageType.EXECUTE_REQUEST
    assert request.code == "model.fit(x)"
    assert request.gpus_required == 2
    assert request.msg_id


def test_message_ids_are_unique():
    first = ExecuteRequest(kernel_id="k", session_id="s", code="x = 1")
    second = ExecuteRequest(kernel_id="k", session_id="s", code="x = 1")
    assert first.msg_id != second.msg_id


def test_yield_request_preserves_content_and_designates_replica():
    original = ExecuteRequest(kernel_id="k1", session_id="s1", code="train()",
                              gpus_required=4)
    converted = YieldRequest(original, designated_replica="k1-replica-2")
    assert converted.msg_type == MessageType.YIELD_REQUEST
    assert converted.content["code"] == "train()"
    assert converted.designated_replica == "k1-replica-2"
    assert converted.parent_msg_id == original.msg_id


def test_execute_reply_links_to_request():
    request = ExecuteRequest(kernel_id="k1", session_id="s1", code="pass")
    reply = ExecuteReply(request, status="ok", execution_time=12.5,
                         executor_replica="k1-replica-1")
    assert reply.parent_msg_id == request.msg_id
    assert not reply.is_error
    error_reply = ExecuteReply(request, status="error", error="boom")
    assert error_reply.is_error


def test_generic_reply_helper():
    message = JupyterMessage(msg_type=MessageType.KERNEL_INFO_REQUEST,
                             kernel_id="k", session_id="s")
    reply = message.reply(MessageType.KERNEL_INFO_REPLY, {"status": "ok"})
    assert reply.parent_msg_id == message.msg_id
    assert reply.kernel_id == "k"


def test_merge_replies_prefers_executor_reply():
    request = ExecuteRequest(kernel_id="k1", session_id="s1", code="pass")
    standby_a = ExecuteReply(request, status="ok", execution_time=0.0)
    executor = ExecuteReply(request, status="ok", execution_time=30.0,
                            executor_replica="k1-replica-2")
    standby_b = ExecuteReply(request, status="ok", execution_time=0.0)
    merged = merge_replies([standby_a, executor, standby_b])
    assert merged is executor


def test_merge_replies_surfaces_error_only_if_all_error():
    request = ExecuteRequest(kernel_id="k1", session_id="s1", code="pass")
    err = ExecuteReply(request, status="error", error="x")
    ok = ExecuteReply(request, status="ok", execution_time=1.0,
                      executor_replica="r")
    assert merge_replies([err, ok]) is ok
    assert merge_replies([err]) is err
    assert merge_replies([]) is None


# ----------------------------------------------------------------------
# Sessions.
# ----------------------------------------------------------------------

def make_session():
    return NotebookSession(session_id="s1", user_id="u1", kernel_id="k1",
                           gpus_required=2, created_at=0.0)


def test_session_lifecycle_states():
    session = make_session()
    assert session.state == SessionState.PENDING
    session.activate(10.0)
    assert session.is_active
    session.reclaim_idle(100.0)
    assert session.state == SessionState.IDLE_RECLAIMED
    assert session.idle_reclamations == 1
    session.resume(120.0)
    assert session.is_active
    session.terminate(200.0)
    assert session.state == SessionState.TERMINATED
    assert session.lifetime(500.0) == pytest.approx(190.0)


def test_cell_execution_interactivity_and_tct():
    cell = NotebookCell(code="train()", gpus_required=1, expected_duration=60.0)
    execution = CellExecution(cell=cell, submitted_at=100.0)
    execution.mark_started(103.5)
    execution.mark_completed(170.0, executor_replica="r1")
    assert execution.interactivity_delay == pytest.approx(3.5)
    assert execution.task_completion_time == pytest.approx(70.0)
    assert execution.executor_replica == "r1"


def test_session_gpu_duty_cycle():
    session = make_session()
    session.activate(0.0)
    busy_cell = NotebookCell(code="train()", gpus_required=1)
    execution = CellExecution(cell=busy_cell, submitted_at=10.0)
    execution.mark_started(10.0)
    execution.mark_completed(110.0)
    session.record_execution(execution)
    session.terminate(1000.0)
    assert session.gpu_active_time() == pytest.approx(100.0)
    assert session.gpu_duty_cycle(1000.0) == pytest.approx(0.1)


def test_session_last_activity_time():
    session = make_session()
    session.activate(0.0)
    execution = CellExecution(cell=NotebookCell(code="x=1"), submitted_at=50.0)
    execution.mark_started(51.0)
    execution.mark_completed(60.0)
    session.record_execution(execution)
    assert session.last_activity_time(now=500.0) == pytest.approx(60.0)


# ----------------------------------------------------------------------
# Server, client, and provisioner routing.
# ----------------------------------------------------------------------

def _scheduler_stub(env, network, address="global-scheduler", delay=0.01,
                    status="ok"):
    """A minimal Global Scheduler that answers every forwarded request."""
    inbox = network.register(address)

    def loop():
        while True:
            message = yield inbox.get()
            payload = message.payload
            request = payload["request"]
            yield env.timeout(delay)
            if isinstance(request, JupyterMessage):
                reply = ExecuteReply(request, status=status, execution_time=delay,
                                     executor_replica="replica-0",
                                     created_at=env.now)
            else:
                reply = {"replica-0": "host-1"}
            payload["reply_to"].succeed(reply)

    env.process(loop(), name="scheduler-stub")
    return address


def test_server_forwards_and_returns_reply():
    env = Environment()
    network = Network(env)
    _scheduler_stub(env, network)
    server = JupyterServer(env, network)
    session = make_session()
    server.register_session(session)
    client = NotebookClient(env, server, session)
    cell = NotebookCell(code="loss = model(x)", gpus_required=1,
                        expected_duration=5.0)

    process = env.process(client.submit_cell(cell))
    execution = env.run(until=process)
    assert execution.status == "ok"
    assert execution.task_completion_time > 0
    assert server.messages_forwarded == 1
    assert server.replies_returned == 1
    assert client.error_count == 0


def test_client_records_error_replies():
    env = Environment()
    network = Network(env)
    _scheduler_stub(env, network, status="error")
    server = JupyterServer(env, network)
    session = make_session()
    server.register_session(session)
    client = NotebookClient(env, server, session)

    process = env.process(client.submit_cell(NotebookCell(code="boom()")))
    execution = env.run(until=process)
    assert execution.status == "error"
    assert client.error_count == 1


def test_server_session_registry():
    env = Environment()
    network = Network(env)
    server = JupyterServer(env, network)
    session = make_session()
    server.register_session(session)
    session.activate(0.0)
    assert server.active_session_count == 1
    assert server.session_for_kernel("k1") is session
    assert server.session_for_kernel("missing") is None
    server.remove_session("s1")
    assert server.active_session_count == 0


def test_gateway_provisioner_start_and_shutdown():
    env = Environment()
    network = Network(env)
    _scheduler_stub(env, network)
    provisioner = GatewayProvisioner(env, network)

    def run():
        info = yield env.process(provisioner.start_kernel(
            "k1", "s1", ResourceRequest(gpus=2)))
        assert provisioner.connection_info("k1") is info
        yield env.process(provisioner.shutdown_kernel("k1"))
        return info

    process = env.process(run())
    info = env.run(until=process)
    assert info.kernel_id == "k1"
    assert info.replica_addresses == {"replica-0": "host-1"}
    assert provisioner.connection_info("k1") is None
    assert provisioner.start_requests == 1
