"""Tests for the ``repro.telemetry`` subsystem.

Pins the subsystem's contracts: sketch quantiles stay inside a ±1 % rank
window of the exact order statistics on adversarial streams (hypothesis),
windowed streams form a contiguous fixed-memory timeline, a telemetry-
instrumented run is bit-identical to a bare one, the RUN_END stats payload
carries the stream snapshots, reports round-trip through JSON and the
result-store artifact path, and the collector's sketch mode bounds memory
without disturbing exact-mode serialization.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import RUN_END, Simulation
from repro.metrics.collector import EventKind, MetricsCollector
from repro.profiling import Profiler
from repro.telemetry import (
    QuantileSketch,
    Telemetry,
    TelemetryReport,
    WindowedStream,
    WindowSnapshot,
    chrome_trace,
    quantile_label,
)

QUANTILES = (0.5, 0.9, 0.99)


def _canonical_collector(result) -> str:
    return json.dumps(result.to_dict()["collector"], sort_keys=True)


def _rank_window(ordered, q, tolerance=0.01):
    """Exact order statistics bracketing rank ``q`` ± ``tolerance``."""
    n = len(ordered)
    low = ordered[max(0, min(n - 1, int((q - tolerance) * n) - 1))]
    high = ordered[max(0, min(n - 1, int((q + tolerance) * n) + 1))]
    return low, high


def _assert_within_rank_window(sketch, values, quantiles=QUANTILES):
    ordered = sorted(values)
    for q in quantiles:
        estimate = sketch.quantile(q)
        low, high = _rank_window(ordered, q)
        # "within 1 % of exact": inside the exact order statistics at
        # q ± 0.01, with 1 % value slack for interpolation between them.
        slack = 0.01 * max(abs(low), abs(high))
        assert low - slack <= estimate <= high + slack, (
            f"q={q}: {estimate} outside [{low}, {high}] (n={len(ordered)})")


# ----------------------------------------------------------------------
# QuantileSketch.
# ----------------------------------------------------------------------
_base_values = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False, width=32),
    min_size=30, max_size=600)


@st.composite
def adversarial_streams(draw):
    """Sorted / reversed / duplicated / bursty arrangements of one base."""
    base = draw(_base_values)
    mode = draw(st.sampled_from(["sorted", "reversed", "duplicated",
                                 "bursty"]))
    if mode == "sorted":
        return sorted(base)
    if mode == "reversed":
        return sorted(base, reverse=True)
    if mode == "duplicated":
        # Heavy ties: every value appears several times, plus one dominant
        # run of the median value.
        out = base * 3 + [sorted(base)[len(base) // 2]] * len(base)
        return out
    # Bursty: runs of repeats with deterministic, index-dependent lengths.
    return [value for index, value in enumerate(base)
            for _ in range(1 + index % 7)]


@settings(max_examples=60, deadline=None)
@given(adversarial_streams())
def test_sketch_quantiles_within_rank_window_on_adversarial_streams(values):
    sketch = QuantileSketch(compression=200)
    for value in values:
        sketch.add(value)
    assert sketch.count == len(values)
    assert sketch.minimum == min(values)
    assert sketch.maximum == max(values)
    assert math.isclose(sketch.total, sum(values), rel_tol=1e-9, abs_tol=1e-6)
    _assert_within_rank_window(sketch, values)
    # Exact at the extremes.
    assert sketch.quantile(0.0) == min(values)
    assert sketch.quantile(1.0) == max(values)


@settings(max_examples=30, deadline=None)
@given(adversarial_streams())
def test_sketch_merge_matches_bulk_within_rank_window(values):
    half = len(values) // 2
    left, right = QuantileSketch(100), QuantileSketch(100)
    for value in values[:half]:
        left.add(value)
    for value in values[half:]:
        right.add(value)
    left.merge(right)
    assert left.count == len(values)
    _assert_within_rank_window(left, values)
    # The merged-from sketch is unchanged.
    assert right.count == len(values) - half


@settings(max_examples=30, deadline=None)
@given(adversarial_streams())
def test_sketch_is_deterministic_and_json_round_trips(values):
    first, second = QuantileSketch(100), QuantileSketch(100)
    for value in values:
        first.add(value)
        second.add(value)
    assert first.to_dict() == second.to_dict()
    restored = QuantileSketch.from_dict(json.loads(json.dumps(first.to_dict())))
    assert restored.to_dict() == first.to_dict()
    for q in QUANTILES:
        assert restored.quantile(q) == first.quantile(q)


def test_sketch_memory_is_bounded_and_accuracy_holds_at_scale():
    # 200k samples from a deterministic skewed stream: centroids stay
    # O(compression) and the big quantiles land within 1 % relative error.
    sketch = QuantileSketch(compression=200)
    values = [((i * 2654435761) % 1000003) / 1000.0 + (i % 97) * 0.001
              for i in range(200_000)]
    for value in values:
        sketch.add(value)
    assert sketch.centroid_count < 3 * sketch.compression
    ordered = sorted(values)
    for q in (0.5, 0.9, 0.99, 0.999):
        exact = ordered[min(len(ordered) - 1, int(q * len(ordered)))]
        assert abs(sketch.quantile(q) - exact) / exact < 0.01


def test_sketch_edge_cases():
    empty = QuantileSketch()
    assert empty.is_empty and empty.quantile(0.5) is None
    assert empty.mean is None
    with pytest.raises(ValueError):
        QuantileSketch(compression=10)
    single = QuantileSketch()
    single.add(42.0)
    assert single.quantile(0.5) == 42.0
    with pytest.raises(ValueError):
        single.quantile(1.5)
    assert quantile_label(0.5) == "p50"
    assert quantile_label(0.99) == "p99"
    assert quantile_label(0.999) == "p99.9"


# ----------------------------------------------------------------------
# WindowedStream.
# ----------------------------------------------------------------------
def test_windowed_stream_builds_contiguous_timeline():
    stream = WindowedStream("x", window_s=10.0, quantiles=(0.5, 0.99))
    closed = []
    stream.on_window(closed.append)
    stream.observe(1.0, 5.0)
    stream.observe(2.0, 7.0)
    stream.observe(35.0, 1.0)      # skips two empty windows
    stream.finalize(42.0)

    # Interior empty windows are emitted (contiguous timeline); a trailing
    # empty in-flight window is not.
    assert [w.index for w in stream.windows] == [0, 1, 2, 3]
    assert [(w.start, w.end) for w in stream.windows] == \
        [(0.0, 10.0), (10.0, 20.0), (20.0, 30.0), (30.0, 40.0)]
    assert [w.count for w in stream.windows] == [2, 0, 0, 1]
    assert closed == stream.windows
    first = stream.windows[0]
    assert first.total == 12.0 and first.mean == 6.0
    assert first.rate_per_s == pytest.approx(0.2)
    assert first.quantiles["p50"] == pytest.approx(6.0)
    empty = stream.windows[1]
    assert empty.mean is None and empty.quantiles == {}
    assert stream.count == 3
    assert stream.quantile(0.5) == 5.0
    # finalize is idempotent.
    stream.finalize(42.0)
    assert len(stream.windows) == 4

    snapshot_round_trip = WindowSnapshot.from_dict(first.to_dict())
    assert snapshot_round_trip == first
    payload = json.loads(json.dumps(stream.to_dict()))
    assert payload["count"] == 3
    assert len(payload["windows"]) == 4
    assert payload["overall"]["count"] == 3


def test_windowed_stream_sliding_view_merges_recent_windows():
    stream = WindowedStream("x", window_s=10.0, retain_sketches=3)
    for i in range(60):
        stream.observe(float(i), float(i))
    # In-flight window is [50, 60); sliding over last 2 closed + current.
    sliding = stream.sliding_quantile(0.5, num_windows=2)
    assert 30.0 <= sliding <= 60.0
    overall = stream.quantile(0.5)
    assert 20.0 <= overall <= 40.0
    with pytest.raises(ValueError):
        WindowedStream("bad", window_s=0.0)


# ----------------------------------------------------------------------
# Telemetry attachment.
# ----------------------------------------------------------------------
def test_telemetry_run_is_bit_identical_and_consistent_with_collector():
    bare = Simulation.from_scenario("smoke").run()

    telemetry = Telemetry(window_s=600.0, spans=True)
    seen_stats = {}
    simulation = (Simulation.from_scenario("smoke")
                  .with_telemetry(telemetry)
                  .on(RUN_END, lambda platform, result, stats:
                      seen_stats.update(stats)))
    instrumented = simulation.run()

    assert _canonical_collector(bare) == _canonical_collector(instrumented)

    report = telemetry.last
    assert isinstance(report, TelemetryReport)
    collector = instrumented.collector

    # Stream ground truth against the collector's exact records.
    tasks = collector.tasks
    assert report.overall("task_submit")["count"] == len(tasks)
    assert report.overall("task_complete")["count"] == \
        len(collector.completed_tasks())
    delays = [t.interactivity_delay for t in tasks
              if t.interactivity_delay is not None]
    overall = report.overall("interactivity")
    assert overall["count"] == len(delays)
    assert overall["min"] == min(delays)
    assert overall["max"] == max(delays)
    ordered = sorted(delays)
    for q in QUANTILES:
        low, high = _rank_window(ordered, q)
        slack = 0.01 * high
        assert low - slack <= overall[quantile_label(q)] <= high + slack

    # Windows tile the run contiguously.
    windows = report.windows("interactivity")
    assert windows[0].start == 0.0
    for before, after in zip(windows, windows[1:]):
        assert after.start == before.end
    assert sum(w.count for w in windows) == len(delays)

    # Span ground truth.
    assert report.span_counts["session"] == \
        len(collector.events_of_kind(EventKind.SESSION_STARTED))
    assert report.span_counts["kernel"] == \
        len(collector.events_of_kind(EventKind.KERNEL_CREATED))
    assert report.span_counts["task"] == len(tasks)
    assert report.span_counts["run"] == 1

    # The RUN_END stats payload carries the snapshots (telemetry is seated
    # first, so the user hook above observed them) next to the platform's
    # memory stats.
    assert seen_stats["telemetry"]["window_s"] == 600.0
    assert seen_stats["telemetry"]["streams"].keys() == report.streams.keys()
    assert seen_stats["memory"]["peak_rss_bytes"] > 0

    # Report JSON round-trip.
    restored = TelemetryReport.from_dict(json.loads(report.to_json()))
    assert restored.to_json() == report.to_json()
    assert "interactivity" in report.format("interactivity")


def test_telemetry_resets_between_runs_and_follows_buses():
    telemetry = Telemetry(window_s=600.0)
    simulation = Simulation.from_scenario("smoke").with_telemetry(telemetry)
    simulation.run()
    simulation.run()
    assert len(telemetry.reports) == 2
    first, second = telemetry.reports
    assert first.overall("task_submit")["count"] == \
        second.overall("task_submit")["count"]

    other = Simulation.from_scenario("smoke", policy="reservation") \
        .with_telemetry(telemetry)
    other.run()
    assert len(telemetry.reports) == 3
    assert telemetry.last.policy == "reservation"


def test_telemetry_trace_export_matches_chrome_trace_event_shape():
    telemetry = Telemetry(window_s=600.0, spans=True)
    Simulation.from_scenario("smoke").with_telemetry(telemetry).run()
    report = telemetry.last

    document = report.chrome_trace()
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    assert events, "empty trace"
    phases = {event["ph"] for event in events}
    assert phases <= {"M", "X", "i"}
    assert "X" in phases and "M" in phases
    for event in events:
        assert {"name", "ph", "pid", "tid"} <= set(event)
        if event["ph"] == "X":
            assert event["dur"] >= 0.0 and "ts" in event
        elif event["ph"] == "i":
            assert event["s"] == "t" and "ts" in event
    # Track metadata: one thread_name per track, control plane on tid 0.
    names = {event["tid"]: event["args"]["name"] for event in events
             if event["ph"] == "M" and event["name"] == "thread_name"}
    assert names[0] == "control-plane"
    # Spans nest: every parent_id resolves and parents contain children.
    spans = {span.span_id: span for span in report.trace_spans()}
    for span in spans.values():
        if span.parent_id is not None:
            parent = spans[span.parent_id]
            assert parent.start <= span.start
            assert span.end <= parent.end
    # The timeline export carries every span verbatim.
    assert len(report.timeline()["spans"]) == len(report.spans)


def test_telemetry_report_stores_as_result_store_artifact(tmp_path):
    from repro.api import ResultStore, RunSpec

    spec = RunSpec.from_scenario("smoke")
    telemetry = Telemetry(window_s=600.0)
    result = Simulation.from_spec(spec).with_telemetry(telemetry).run()
    store = ResultStore(tmp_path)
    store.save(spec, result)
    path = store.save_artifact(spec, "telemetry", telemetry.last.to_dict())
    assert path.exists()

    loaded = store.load_artifact(spec, "telemetry")
    restored = TelemetryReport.from_dict(loaded)
    assert restored.to_json() == telemetry.last.to_json()
    # Artifacts are invisible to the result-entry iterator and loader.
    assert [s.spec_hash() for s, _ in store.entries()] == [spec.spec_hash()]
    assert store.load_artifact(spec, "trace") is None


def test_telemetry_watch_and_live_stream_access():
    telemetry = Telemetry(window_s=600.0)
    telemetry.watch("checkpoint", "checkpoint_size",
                    lambda time, kernel_id, name, size_bytes: float(size_bytes))
    closes = []
    telemetry.on_window("task_submit", closes.append)
    Simulation.from_scenario("smoke").with_telemetry(telemetry).run()
    report = telemetry.last
    assert report.overall("checkpoint_size")["count"] > 0
    assert closes and closes[-1].end > 0
    assert telemetry.stream("task_submit").count > 0
    with pytest.raises(KeyError):
        telemetry.stream("nope")
    with pytest.raises(ValueError):
        telemetry.watch("run_end", "bad", lambda *a: None)


# ----------------------------------------------------------------------
# Collector sketch mode + event index.
# ----------------------------------------------------------------------
def test_sketch_mode_bounds_storage_and_matches_exact_percentiles():
    exact = Simulation.from_scenario("smoke").run()
    sketched = Simulation.from_scenario("smoke").with_sketch_metrics().run()

    collector = sketched.collector
    assert collector.sketch_mode
    assert collector.tasks == []          # no unbounded per-task storage
    assert collector.sketch_task_count == len(exact.collector.tasks)
    assert collector.completed_task_count() == \
        len(exact.collector.completed_tasks())
    # The simulated behaviour is untouched: identical event streams.
    assert [(e.time, e.kind, e.detail) for e in collector.events] == \
        [(e.time, e.kind, e.detail) for e in exact.collector.events]

    delays = sorted(t.interactivity_delay for t in exact.collector.tasks
                    if t.interactivity_delay is not None)
    for q in QUANTILES:
        low, high = _rank_window(delays, q)
        slack = 0.01 * high
        assert low - slack <= collector.interactivity_percentile(q) \
            <= high + slack
    summary = sketched.summary()
    assert summary["tasks_completed"] == exact.summary()["tasks_completed"]

    # Exact-mode serialization is byte-identical to what the goldens pin:
    # no sketch keys unless the mode is on.
    exact_payload = exact.collector.to_dict()
    assert "sketch_mode" not in exact_payload
    assert "sketches" not in exact_payload
    sketch_payload = collector.to_dict()
    assert sketch_payload["sketch_mode"] is True
    restored = MetricsCollector.from_dict(
        json.loads(json.dumps(sketch_payload)))
    assert restored.sketch_mode
    assert restored.completed_task_count() == collector.completed_task_count()
    for q in QUANTILES:
        assert restored.interactivity_percentile(q) == \
            collector.interactivity_percentile(q)
        assert restored.tct_percentile(q) == collector.tct_percentile(q)
    assert json.dumps(restored.to_dict()["sketches"], sort_keys=True) == \
        json.dumps(sketch_payload["sketches"], sort_keys=True)


def test_events_of_kind_index_matches_linear_scan():
    result = Simulation.from_scenario("smoke").run()
    collector = result.collector
    assert collector.events, "smoke run recorded no events"
    for kind in EventKind:
        assert collector.events_of_kind(kind) == \
            [e for e in collector.events if e.kind == kind]
    # The index survives the JSON round-trip.
    restored = MetricsCollector.from_dict(
        json.loads(json.dumps(collector.to_dict())))
    for kind in EventKind:
        assert [(e.time, e.detail) for e in restored.events_of_kind(kind)] == \
            [(e.time, e.detail) for e in collector.events_of_kind(kind)]
    # Unknown-kind queries return fresh empty lists, not shared state.
    assert collector.events_of_kind(EventKind.ELECTION_FAILED) is not \
        collector.events_of_kind(EventKind.ELECTION_FAILED)


# ----------------------------------------------------------------------
# Profiler memory satellite.
# ----------------------------------------------------------------------
def test_profiler_reports_peak_memory():
    import tracemalloc

    profiler = Profiler()
    tracemalloc.start()
    try:
        Simulation.from_scenario("smoke").with_profiler(profiler).run()
    finally:
        tracemalloc.stop()
    report = profiler.last
    assert report.memory["peak_rss_bytes"] > 0
    assert report.memory["peak_traced_bytes"] > 0
    assert report.to_dict()["memory"] == report.memory
    assert "memory: peak rss" in report.format()
