"""Tests for repro.qos — the closed-loop QoS control plane.

Layered from pure to integrated:

* target parsing, validation, serialization, and the action registry;
* the :class:`TargetState` trigger machine — hysteresis band entry/exit,
  consecutive-window debouncing, cooldown suppression, empty-window
  neutrality — driven with synthetic window snapshots;
* a hypothesis property pinning that a machine's transition sequence is a
  pure, replayable function of the window-snapshot history it is fed;
* the controller's multi-target tie-break (declaration order at a shared
  window close) against a stub platform;
* spec integration: the ``qos`` block participates in spec hashes and the
  sweep grid, and specs without one serialize exactly as before this
  subsystem existed;
* the full loop: under the ``failure_storm`` scenario a p99-interactivity
  target breaches, fires its action, and recovers — deterministically
  across repeated runs, and bit-identically serial-vs-parallel at K=2.
"""

import hashlib
import json
import types

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    QOS_ACTION,
    QOS_BREACH,
    QOS_RECOVER,
    RUN_END,
    RUN_START,
    RunSpec,
    Simulation,
)
from repro.api.hooks import HookBus
from repro.experiments.sweep import SweepGrid
from repro.qos import QosConfig, QosTarget, TargetState
from repro.qos.actions import register_action, resolve_action
from repro.qos.controller import QosController
from repro.telemetry.streams import WindowSnapshot

WINDOW = 300.0


def snap(index, value, count=1):
    """One synthetic closed window whose every statistic equals ``value``."""
    start = index * WINDOW
    return WindowSnapshot(
        index=index, start=start, end=start + WINDOW, count=count,
        total=(value or 0.0) * count, minimum=value, maximum=value,
        quantiles={} if value is None else {"p50": value, "p99": value})


def drive(state, snapshots, pressure=0):
    """Feed snapshots through a machine the way the controller does."""
    transitions = []
    for snapshot in snapshots:
        transition = state.observe(snapshot, pressure)
        transitions.append(transition)
        if transition in ("breach", "action"):
            state.mark_action(snapshot.end)
    return transitions


# ----------------------------------------------------------------------
# Targets: parsing, validation, serialization.
# ----------------------------------------------------------------------
def test_shorthand_parses_percentile_target():
    target = QosTarget.from_string(
        "interactivity:p99>120:migrate_hottest,gpus_required=2,windows=3")
    assert target.metric == "interactivity"
    assert target.percentile == pytest.approx(0.99)
    assert target.comparison == "above"
    assert target.threshold == 120.0
    assert target.action == "migrate_hottest"
    assert target.windows == 3
    assert target.action_kwargs == {"gpus_required": 2}
    assert target.name == "interactivity:p99>120"


def test_shorthand_parses_aggregate_below_target():
    target = QosTarget.from_string("placement:mean<0.9")
    assert target.percentile is None
    assert target.aggregate == "mean"
    assert target.comparison == "below"
    assert target.action == "log"


@pytest.mark.parametrize("text", [
    "interactivity",                  # no trigger
    "interactivity:p99=120",          # bad operator
    "interactivity:p99>oops",         # non-numeric threshold
    "interactivity:median>5",         # unknown statistic
    "tct:p99>10:no_such_action",      # unknown action (validate)
])
def test_malformed_shorthand_rejected(text):
    with pytest.raises(ValueError):
        target = QosTarget.from_string(text)
        target.validate()


def test_target_round_trips_through_dict():
    target = QosTarget.from_string(
        "tct:p90>900:admission_throttle,delay_s=30,cooldown_s=600,"
        "hysteresis=60")
    clone = QosTarget.from_dict(target.to_dict())
    assert clone == target
    config = QosConfig(targets=[target], window_s=120.0)
    assert QosConfig.from_dict(config.to_dict()) == config


def test_config_validate_rejects_duplicate_names():
    config = QosConfig.from_specs(
        ["interactivity:p99>60", "interactivity:p99>60"])
    with pytest.raises(ValueError, match="duplicate"):
        config.validate()


def test_config_quantiles_cover_all_targets():
    config = QosConfig.from_specs(
        ["interactivity:p99>60", "tct:p50>300", "placement:mean<0.9"])
    assert config.quantiles() == (0.5, 0.99)


def test_action_registry_rejects_duplicates_and_unknowns():
    with pytest.raises(ValueError, match="already registered"):
        register_action("log")(lambda platform, target, now: {})
    with pytest.raises(ValueError, match="unknown qos action"):
        resolve_action("definitely_not_registered")


def test_pressure_relief_tightens_threshold():
    target = QosTarget(metric="interactivity", threshold=100.0,
                       pressure_relief=0.2)
    assert target.effective_threshold(0) == 100.0
    assert target.effective_threshold(5) == pytest.approx(80.0)
    assert target.violated(90.0, fleet_pressure=5)
    assert not target.violated(90.0, fleet_pressure=0)


# ----------------------------------------------------------------------
# TargetState: the trigger machine.
# ----------------------------------------------------------------------
def test_breach_needs_consecutive_violating_windows():
    state = TargetState(QosTarget(metric="interactivity", threshold=100.0,
                                  windows=2, cooldown_s=1e9))
    transitions = drive(state, [snap(0, 150.0), snap(1, 50.0),
                                snap(2, 150.0), snap(3, 150.0)])
    # A clean window resets the streak: only the 3rd+4th pair breaches.
    assert transitions == [None, None, None, "breach"]
    assert state.breaches == 1


def test_hysteresis_band_entry_and_exit():
    state = TargetState(QosTarget(metric="interactivity", threshold=100.0,
                                  hysteresis=10.0, cooldown_s=1e9))
    transitions = drive(state, [
        snap(0, 120.0),   # above threshold -> breach
        snap(1, 95.0),    # below threshold but inside the band: no recovery
        snap(2, 91.0),    # still inside the band (> 90)
        snap(3, 90.0),    # clears threshold - hysteresis -> recover
        snap(4, 95.0),    # back inside the band, but OK stays OK
    ])
    assert transitions == ["breach", None, None, "recover", None]
    assert (state.breaches, state.recoveries) == (1, 1)


def test_cooldown_suppresses_action_refire():
    state = TargetState(QosTarget(metric="interactivity", threshold=100.0,
                                  cooldown_s=600.0))
    transitions = drive(state, [snap(i, 150.0) for i in range(5)])
    # Breach fires at window 0 (end 300); the cooldown then suppresses the
    # re-fire until two full windows later (end 900), and again at 1500.
    assert transitions == ["breach", None, "action", None, "action"]
    assert state.actions_fired == 3


def test_empty_windows_are_neutral():
    state = TargetState(QosTarget(metric="interactivity", threshold=100.0,
                                  windows=2, cooldown_s=1e9))
    transitions = drive(state, [snap(0, 150.0), snap(1, None, count=0),
                                snap(2, 150.0)])
    # The scrape gap neither extends nor resets the violating streak.
    assert transitions == [None, None, "breach"]


def test_below_comparison_breaches_under_threshold():
    state = TargetState(QosTarget(metric="placement", threshold=0.9,
                                  percentile=None, aggregate="mean",
                                  comparison="below", hysteresis=0.05,
                                  cooldown_s=1e9))
    transitions = drive(state, [snap(0, 0.5), snap(1, 0.92), snap(2, 0.96)])
    # 0.92 is above the threshold but inside the band (needs >= 0.95).
    assert transitions == ["breach", None, "recover"]


# ----------------------------------------------------------------------
# Replayability: decisions are a pure function of the window history.
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(
    values=st.lists(
        st.one_of(st.none(),
                  st.floats(min_value=0.0, max_value=250.0,
                            allow_nan=False, allow_infinity=False)),
        min_size=1, max_size=40),
    windows=st.integers(min_value=1, max_value=3),
    hysteresis=st.floats(min_value=0.0, max_value=50.0),
    cooldown_windows=st.integers(min_value=0, max_value=4),
    pressure=st.integers(min_value=0, max_value=8),
)
def test_transition_sequence_is_replayable(values, windows, hysteresis,
                                           cooldown_windows, pressure):
    target = QosTarget(metric="interactivity", threshold=100.0,
                       windows=windows, hysteresis=hysteresis,
                       cooldown_s=cooldown_windows * WINDOW,
                       pressure_relief=0.1)
    snapshots = [snap(i, v, count=0 if v is None else 1)
                 for i, v in enumerate(values)]
    first = drive(TargetState(target), snapshots, pressure)
    second = drive(TargetState(target), snapshots, pressure)
    assert first == second
    # The machine survives the spec round-trip with identical behavior.
    cloned = QosTarget.from_dict(
        json.loads(json.dumps(target.to_dict())))
    assert drive(TargetState(cloned), snapshots, pressure) == first
    # Transition counters agree with the sequence.
    replay = TargetState(target)
    transitions = drive(replay, snapshots, pressure)
    assert replay.breaches == transitions.count("breach")
    assert replay.recoveries == transitions.count("recover")
    assert replay.actions_fired == (transitions.count("breach")
                                    + transitions.count("action"))


# ----------------------------------------------------------------------
# Controller: multi-target tie-break at a shared window close.
# ----------------------------------------------------------------------
class _StubPlatform:
    """Just enough platform for a controller: hooks, env, a live workload."""

    def __init__(self):
        self.hooks = HookBus()
        self.env = types.SimpleNamespace(now=0.0)
        self._workload = {"live": True}
        self.shard_context = None


def test_multi_target_tiebreak_is_declaration_order():
    platform = _StubPlatform()
    config = QosConfig.from_specs(
        ["interactivity:p99>70,name=loose",
         "interactivity:p99>50,name=tight",
         "interactivity:p99>60,name=middle"])
    controller = QosController(platform, config)
    platform.hooks.publish(RUN_START, platform, None)
    stream = controller.telemetry.stream("interactivity")
    stream.observe(10.0, 100.0)     # violates all three targets
    stream.observe(WINDOW + 1.0, 1.0)   # closes window 0 -> evaluation
    breaches = [name for _, kind, name, _ in controller.timeline
                if kind == "breach"]
    assert breaches == ["loose", "tight", "middle"]
    # Each breach immediately fired its (log) action, interleaved in the
    # same declaration order.
    kinds = [(kind, name) for _, kind, name, _ in controller.timeline]
    assert kinds == [("breach", "loose"), ("action", "loose"),
                     ("breach", "tight"), ("action", "tight"),
                     ("breach", "middle"), ("action", "middle")]


def test_controller_suppresses_evaluation_after_workload_end():
    platform = _StubPlatform()
    controller = QosController(
        platform, QosConfig.from_specs(["interactivity:p99>50"]))
    platform.hooks.publish(RUN_START, platform, None)
    stream = controller.telemetry.stream("interactivity")
    stream.observe(10.0, 100.0)
    platform._workload = None       # the run is draining
    stream.observe(WINDOW + 1.0, 100.0)
    assert controller.timeline == []


# ----------------------------------------------------------------------
# Spec and sweep integration.
# ----------------------------------------------------------------------
def test_spec_without_qos_serializes_as_before():
    spec = RunSpec.from_scenario("smoke")
    assert "qos" not in spec.to_dict()
    assert RunSpec.from_dict(spec.to_dict()) == spec


def test_qos_block_participates_in_spec_hash():
    plain = RunSpec.from_scenario("failure_storm")
    qos = QosConfig.from_specs(["interactivity:p99>60"]).to_dict()
    controlled = RunSpec.from_scenario("failure_storm", qos=qos)
    assert plain.spec_hash() != controlled.spec_hash()
    clone = RunSpec.from_json(controlled.to_json())
    assert clone.spec_hash() == controlled.spec_hash()
    assert clone.qos == qos
    assert "qos:" in controlled.label.split("{")[-1]


def test_sweep_grid_qos_axis():
    qos = QosConfig.from_specs(["interactivity:p99>60"]).to_dict()
    grid = SweepGrid(scenario="smoke", policies=("notebookos",),
                     seeds=(1,), qos_axis=({}, qos))
    assert grid.size() == 2
    specs = grid.expand()
    assert [bool(spec.qos) for spec in specs] == [False, True]
    assert specs[0].spec_hash() != specs[1].spec_hash()


def test_with_qos_accepts_all_spec_forms():
    config = QosConfig.from_specs(["interactivity:p99>60"])
    by_config = Simulation.from_scenario("smoke").with_qos(config)
    by_dict = Simulation.from_scenario("smoke").with_qos(config.to_dict())
    by_string = Simulation.from_scenario("smoke").with_qos(
        "interactivity:p99>60")
    assert by_config._qos == by_dict._qos == by_string._qos
    with pytest.raises(ValueError):
        Simulation.from_scenario("smoke").with_qos(
            "interactivity:p99>60:no_such_action")


# ----------------------------------------------------------------------
# The full loop under the failure storm.
# ----------------------------------------------------------------------
TARGET = "interactivity:p99>60:autoscaler_override,extra_hosts=2,hold_s=900"


def _run_storm():
    qos_stats = {}
    events = []
    sim = (Simulation.from_scenario("failure_storm")
           .with_qos(TARGET, window_s=WINDOW)
           .on(QOS_BREACH, lambda t, n, d: events.append((t, "breach", n)))
           .on(QOS_ACTION, lambda t, n, a, d: events.append((t, "action", n)))
           .on(QOS_RECOVER, lambda t, n, d: events.append((t, "recover", n)))
           .on(RUN_END,
               lambda p, r, stats: qos_stats.update(stats.get("qos", {}))))
    result = sim.run()
    return result, events, qos_stats


def test_failure_storm_closes_the_loop():
    result, events, qos_stats = _run_storm()
    kinds = [kind for _, kind, _ in events]
    assert "breach" in kinds and "action" in kinds and "recover" in kinds
    assert kinds.index("breach") < kinds.index("action") < kinds.index("recover")
    entry = qos_stats["targets"]["interactivity:p99>60"]
    assert entry["breaches"] >= 1
    assert entry["actions_fired"] >= 1
    assert entry["recoveries"] >= 1
    # The hook timeline and the stats timeline are the same record.
    assert [(e["time"], e["kind"]) for e in qos_stats["timeline"]] == \
        [(t, k) for t, k, _ in events]


def test_failure_storm_qos_run_is_deterministic():
    first = _run_storm()
    second = _run_storm()
    assert first[1] == second[1]
    assert first[2] == second[2]
    assert _digest(first[0]) == _digest(second[0])


def test_mitigation_actions_schedule_without_crashing():
    qos_stats = {}
    sim = (Simulation.from_scenario("failure_storm")
           .with_qos("interactivity:p99>10:migrate_hottest",
                     "tct:p99>120:admission_throttle,delay_s=10,hold_s=600",
                     window_s=WINDOW)
           .on(RUN_END,
               lambda p, r, stats: qos_stats.update(stats.get("qos", {}))))
    result = sim.run()
    assert len(result.collector.completed_tasks()) > 0
    fired = sum(entry["actions_fired"]
                for entry in qos_stats["targets"].values())
    assert fired >= 1


def _digest(result):
    payload = json.dumps(result.collector.to_dict(), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def test_storm_with_qos_bit_identical_serial_vs_parallel():
    from repro.shard import run_sharded

    qos = QosConfig.from_specs([TARGET], window_s=WINDOW).to_dict()
    spec = RunSpec.from_scenario("failure_storm", qos=qos, num_sessions=24,
                                 duration_hours=3.0)
    serial = run_sharded(spec, 2, parallel=False)
    parallel = run_sharded(spec, 2, parallel=True)
    assert _digest(serial.result) == _digest(parallel.result)
