"""Property tests: batched/cached policy decisions ≡ the frozen reference.

The decision cache in :mod:`repro.core.runstate` memoizes pure policy
decisions behind version guards, and ``RunState.admit`` batches
same-timestamp admissions into one ``decide_batch`` call per policy per
timestamp.  The contract is *bit-identical decisions*: across arbitrary
cluster states and churn sequences, every cached answer must equal what the
frozen per-task reference path (``DecisionCache(enabled=False)``, which
bypasses the store entirely) computes at the same instant.

Mirrors ``tests/test_placement_index.py``: hypothesis drives randomized
operation sequences — subscribe / unsubscribe / bind / release /
decommission / provision — against one cluster, interleaved with decision
queries whose cached and frozen answers are compared element-by-element.
The adversarial invalidation tests then attack the guards directly: a host
failing or decommissioning between prime and query, a scale-out racing an
admission, and zero-GPU training entries popping (which change ``is_idle``
without moving any GPU counts).

The slow end-to-end differential replays a full trace under every built-in
policy twice — batching on vs. off — and compares collector digests,
per-task executor/timestamp tuples, and every election outcome signature.
"""

import hashlib
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.container import Container
from repro.cluster.host import Host, HostSpec
from repro.cluster.prewarmer import ContainerPrewarmer
from repro.cluster.resources import ResourceRequest
from repro.core import ClusterConfig, NotebookOSPlatform, PlatformConfig
from repro.core.distributed_kernel import (
    DistributedKernel,
    KernelReplica,
    ReplicaState,
)
from repro.core.election import ExecutorElection
from repro.core.global_scheduler import ClusterState
from repro.core.placement import LeastLoadedPlacement
from repro.core.runstate import (
    AdmissionBatch,
    DecisionCache,
    RunState,
    TaskTable,
    compute_preferred_executor,
)
from repro.api import default_policy_registry
from repro.profiling import Profiler
from repro.workload import AdobeTraceGenerator, SessionTrace, TaskRecord, Trace


# ----------------------------------------------------------------------
# Randomized cluster evolution (mirrors tests/test_placement_index.py).
# ----------------------------------------------------------------------
def apply_ops(cluster: ClusterState, rng: random.Random, num_ops: int) -> None:
    """Mutate the cluster through every path that feeds the version guards."""
    for op_no in range(num_ops):
        op = rng.randrange(7)
        hosts = [h for h in cluster.hosts.values() if h.is_active]
        if op == 0 or not hosts:  # provision a host
            host_id = f"host-p{cluster.env.next_serial('batch-host'):04d}"
            spec = HostSpec(num_gpus=rng.choice((4, 8, 8, 16)))
            cluster.add_host(Host(host_id=host_id, spec=spec), scheduler=None)
        elif op == 1:  # subscribe
            host = rng.choice(hosts)
            host.subscribe(f"k-{rng.randrange(6)}", rng.choice((0, 1, 1, 2, 4)))
        elif op == 2:  # unsubscribe (possibly a no-op)
            host = rng.choice(hosts)
            host.unsubscribe(f"k-{rng.randrange(6)}")
        elif op == 3:  # bind GPUs (gpus=0 creates a zero-GPU training entry)
            host = rng.choice(hosts)
            kernel = f"k-{rng.randrange(6)}"
            gpus = rng.randrange(0, 4)
            if host.can_bind_gpus(gpus):
                host.bind_gpus(kernel, gpus, float(op_no))
        elif op == 4:  # release a training task's GPUs (possibly zero-GPU pop)
            host = rng.choice(hosts)
            host.release_gpus(f"k-{rng.randrange(6)}", float(op_no))
        elif op == 5 and len(hosts) > 1:  # decommission
            rng.choice(hosts).decommission(float(op_no))
        elif op == 6 and len(hosts) > 1:  # decommission + remove
            host = rng.choice(hosts)
            host.decommission(float(op_no))
            cluster.remove_host(host.host_id)


def make_cluster(seed: int, num_hosts: int, num_ops: int):
    from repro.simulation.engine import Environment

    rng = random.Random(seed)
    cluster = ClusterState(Environment())
    for i in range(num_hosts):
        spec = HostSpec(num_gpus=rng.choice((4, 8, 8, 16)))
        cluster.add_host(Host(host_id=f"host-{i:04d}", spec=spec),
                         scheduler=None)
    apply_ops(cluster, rng, num_ops)
    return cluster


def wire(policy: LeastLoadedPlacement, enabled: bool) -> DecisionCache:
    cache = DecisionCache(enabled=enabled)
    policy.decisions = cache
    return cache


placement_params = st.fixed_dictionaries({
    "oversubscription_enabled": st.booleans(),
    "subscription_ratio_limit": st.one_of(st.none(), st.floats(0.5, 4.0)),
    "high_watermark": st.floats(1.0, 5.0),
})


# ----------------------------------------------------------------------
# Differential: cached placement decisions vs. the frozen reference.
# ----------------------------------------------------------------------
@given(seed=st.integers(0, 2**32 - 1),
       num_hosts=st.integers(0, 40),
       num_ops=st.integers(0, 120),
       params=placement_params)
@settings(max_examples=100, deadline=None)
def test_cached_placement_decisions_match_reference(seed, num_hosts, num_ops,
                                                    params):
    cluster = make_cluster(seed, num_hosts, num_ops)
    cached_policy = LeastLoadedPlacement(**params)
    frozen_policy = LeastLoadedPlacement(**params)
    cache = wire(cached_policy, enabled=True)
    reference = wire(frozen_policy, enabled=False)
    rng = random.Random(seed ^ 0xBA7C4)

    for _ in range(6):
        gpus = rng.choice((0, 1, 1, 2, 4, 8, 17))
        request = ResourceRequest(millicpus=4000, memory_mb=16384, gpus=gpus,
                                  vram_gb=8.0 * gpus)
        replicas = rng.choice((1, 1, 3, 5))
        replication = rng.choice((1, 3))
        exclude = tuple(h.host_id for h in cluster.hosts.values()
                        if h.is_active and rng.random() < 0.2)

        # Each query runs twice back-to-back: the second answer must come
        # from the (possibly hit) cache and still equal the frozen path.
        for _repeat in range(2):
            assert cached_policy.effective_sr_limit(cluster, replication) == \
                frozen_policy.effective_sr_limit(cluster, replication)

            hot = cached_policy.candidate_hosts(cluster, request, replicas,
                                                replication,
                                                exclude_hosts=exclude)
            cold = frozen_policy.candidate_hosts(cluster, request, replicas,
                                                 replication,
                                                 exclude_hosts=exclude)
            assert hot.hosts == cold.hosts, "candidate_hosts diverged"
            assert hot.satisfied == cold.satisfied
            # Hits must never alias the cached value: consumers mutate the
            # decision object they receive.
            assert hot is not cold
            hot.hosts.append(None)  # must not corrupt the cache

            assert cache.most_idle_host(cluster, min(gpus, 16)) is \
                reference.most_idle_host(cluster, min(gpus, 16))

        # Mutate between query rounds so queries interleave with guard bumps.
        apply_ops(cluster, rng, 5)

    assert cache.hits + cache.misses > 0
    assert reference.hits == reference.misses == 0  # bypass counts nothing


# ----------------------------------------------------------------------
# Differential: cached kernel decisions vs. the frozen reference.
# ----------------------------------------------------------------------
def make_kernel(hosts, replica_states) -> DistributedKernel:
    kernel = DistributedKernel(
        kernel_id="k-diff", session_id="s-diff",
        resource_request=ResourceRequest(gpus=2),
        election=ExecutorElection("k-diff"))
    for index, (host, state) in enumerate(zip(hosts, replica_states)):
        container = Container(host_id=host.host_id,
                              resources=ResourceRequest(gpus=2))
        replica = KernelReplica(replica_id=f"k-diff-{index}",
                                kernel_id="k-diff", replica_index=index,
                                host=host, container=container)
        kernel.add_replica(replica)
        replica.state = state
    return kernel


kernel_ops = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 7), st.integers(0, 4)),
    min_size=0, max_size=40)


@given(seed=st.integers(0, 2**32 - 1),
       states=st.lists(st.sampled_from(list(ReplicaState)),
                       min_size=1, max_size=5),
       ops=kernel_ops)
@settings(max_examples=100, deadline=None)
def test_cached_kernel_decisions_match_reference(seed, states, ops):
    rng = random.Random(seed)
    hosts = [Host(host_id=f"host-{i}", spec=HostSpec(num_gpus=rng.choice((2, 8))))
             for i in range(len(states))]
    kernel = make_kernel(hosts, states)
    cache = DecisionCache(enabled=True)
    reference = DecisionCache(enabled=False)

    def check(gpus: int) -> None:
        # Twice: force both the miss path and the (guard-unchanged) hit path.
        for _repeat in range(2):
            assert cache.preferred_executor(kernel, gpus) == \
                compute_preferred_executor(kernel, gpus)
            assert cache.preferred_executor(kernel, gpus) == \
                reference.preferred_executor(kernel, gpus)
            cached_proposals = cache.proposals(kernel, gpus)
            frozen_proposals = kernel.make_proposals(gpus)
            assert [(p.replica_id, p.host_id, p.lead) for p in cached_proposals] \
                == [(p.replica_id, p.host_id, p.lead) for p in frozen_proposals]

    check(0)
    for op, arg, gpus in ops:
        replicas = kernel.replicas
        if op == 0 and replicas:  # replica state transition
            replica = replicas[arg % len(replicas)]
            replica.state = list(ReplicaState)[arg % len(ReplicaState)]
        elif op == 1 and replicas:  # host GPU churn under a replica
            host = replicas[arg % len(replicas)].host
            if host.can_bind_gpus(arg % 3):
                host.bind_gpus(f"other-{arg}", arg % 3, 0.0)
        elif op == 2 and replicas:  # release (possibly zero-GPU pop)
            host = replicas[arg % len(replicas)].host
            host.release_gpus(f"other-{arg}", 0.0)
        elif op == 3:  # a past election changes the preferred previous winner
            kernel.election.last_executor_id = \
                f"k-diff-{arg % max(1, len(replicas))}"
        elif op == 4 and len(replicas) > 1:  # replica-set change
            kernel.remove_replica(replicas[arg % len(replicas)].replica_id)
        check(gpus)

    assert cache.hits > 0  # the repeat queries above must actually hit


# ----------------------------------------------------------------------
# Adversarial invalidation: deltas racing a primed cache.
# ----------------------------------------------------------------------
def test_decommission_mid_batch_invalidates_host_probe():
    """A host failing between prime and query must drop out of the answer."""
    cluster = make_cluster(seed=11, num_hosts=6, num_ops=0)
    cache = DecisionCache(enabled=True)
    primed = cache.most_idle_host(cluster, 1)
    assert primed is not None
    assert cache.most_idle_host(cluster, 1) is primed  # hit while quiet
    hits_before = cache.hits

    primed.decommission(now=1.0)
    cluster.remove_host(primed.host_id)

    after = cache.most_idle_host(cluster, 1)
    assert after is not primed
    assert after is DecisionCache(enabled=False).most_idle_host(cluster, 1)
    assert cache.hits == hits_before  # the delta forced a recompute


def test_scale_out_racing_admission_invalidates_candidates():
    """A host provisioned between prime and query must become placeable."""
    cluster = make_cluster(seed=23, num_hosts=2, num_ops=0)
    for host in cluster.hosts.values():
        # Past the high watermark (3.0), so even the second placement pass
        # rejects the host: SR after = (10G + 1) / 3G > 3.0.
        host.subscribe("k-busy", host.spec.num_gpus * 10)
    policy = LeastLoadedPlacement(subscription_ratio_limit=1.0)
    cache = wire(policy, enabled=True)
    request = ResourceRequest(gpus=1)

    primed = policy.candidate_hosts(cluster, request, 3, 3)
    assert not primed.satisfied
    assert policy.candidate_hosts(cluster, request, 3, 3).hosts == primed.hosts

    fresh = [Host(host_id=f"host-new-{i}", spec=HostSpec(num_gpus=8))
             for i in range(3)]
    for host in fresh:
        cluster.add_host(host, scheduler=None)

    decision = policy.candidate_hosts(cluster, request, 3, 3)
    assert decision.satisfied
    assert decision.hosts == fresh
    frozen = LeastLoadedPlacement(subscription_ratio_limit=1.0)
    assert decision.hosts == frozen.candidate_hosts(cluster, request, 3, 3).hosts
    assert cache.hits > 0


def test_zero_gpu_release_invalidates_probe():
    """Popping a zero-GPU training entry still bumps the guard.

    A zero-GPU bind/release moves no GPU counts but flips ``is_idle`` —
    the cache must treat it as a delta (costing at worst a miss, never a
    stale hit)."""
    cluster = make_cluster(seed=31, num_hosts=3, num_ops=0)
    host = next(iter(cluster.hosts.values()))
    host.bind_gpus("k-zero", 0, 0.0)
    cache = DecisionCache(enabled=True)
    version_before = cluster.version

    cache.most_idle_host(cluster, 1)
    host.release_gpus("k-zero", 1.0)  # zero-GPU entry pops
    assert cluster.version > version_before
    cache.most_idle_host(cluster, 1)
    assert cache.misses == 2 and cache.hits == 0


def test_warm_pool_churn_invalidates_lcp_probe():
    """Warm-pool mutations must invalidate the LCP host scan."""
    from repro.simulation.engine import Environment

    env = Environment()
    cluster = ClusterState(env)
    cluster.add_host(Host(host_id="host-a", spec=HostSpec(num_gpus=8)),
                     scheduler=None)
    prewarmer = ContainerPrewarmer(env)
    cache = DecisionCache(enabled=True)
    computes = []

    def compute():
        computes.append(1)
        return "answer"

    assert cache.warm_pool_host(cluster, prewarmer, 1, compute) == "answer"
    assert cache.warm_pool_host(cluster, prewarmer, 1, compute) == "answer"
    assert len(computes) == 1  # second query hit

    prewarmer.register_host("host-a", runtime=None)  # pool delta
    cache.warm_pool_host(cluster, prewarmer, 1, compute)
    assert len(computes) == 2  # pool churn alone forced the recompute


def test_namespace_memo_is_stable_and_equal():
    host = Host(host_id="host-a", spec=HostSpec(num_gpus=8))
    kernel = make_kernel([host], [ReplicaState.IDLE])
    cache = DecisionCache(enabled=True)
    first = cache.namespace_objects(kernel)
    assert cache.namespace_objects(kernel) is first  # identity for reuse
    assert first == kernel.namespace_objects()
    assert DecisionCache(enabled=False).namespace_objects(kernel) == first


# ----------------------------------------------------------------------
# Columnar task table + admission batching.
# ----------------------------------------------------------------------
def columnar_trace() -> Trace:
    tasks_a = [TaskRecord(session_id="sa", submit_time=t, duration=10.0,
                          gpus=g, task_index=i)
               for i, (t, g) in enumerate([(60.0, 2), (120.0, 0), (120.0, 2)])]
    tasks_b = [TaskRecord(session_id="sb", submit_time=t, duration=10.0,
                          gpus=g, task_index=i)
               for i, (t, g) in enumerate([(60.0, 4), (180.0, 0)])]
    sessions = [
        SessionTrace(session_id="sa", user_id="ua", start_time=0.0,
                     end_time=600.0, gpus_requested=2, tasks=tasks_a),
        SessionTrace(session_id="sb", user_id="ub", start_time=0.0,
                     end_time=600.0, gpus_requested=4, tasks=tasks_b),
    ]
    return Trace(name="columnar", sessions=sessions)


def test_task_table_columns_and_batches():
    table = TaskTable(columnar_trace())
    assert len(table) == 5
    assert table.submit_times == sorted(table.submit_times)
    # Same-timestamp batches group across sessions; the stable sort keeps
    # trace order within a timestamp.
    batch = AdmissionBatch(table, 60.0, table.batch_indices(60.0))
    assert len(batch) == 2
    assert [session.session_id for session, _task in batch] == ["sa", "sb"]
    assert batch.gpu_requests() == [2, 4]
    # Non-GPU tasks contribute an effective request of 0, deduplicated.
    noon = AdmissionBatch(table, 120.0, table.batch_indices(120.0))
    assert noon.gpu_requests() == [0, 2]
    assert table.batch_indices(999.0) == range(5, 5)


def test_runstate_dispatches_each_timestamp_once():
    class FakePolicy:
        def __init__(self):
            self.calls = []

        def decide_batch(self, platform, batch):
            self.calls.append((batch.time, len(batch)))
            return len(batch)

    class FakeEnv:
        now = 60.0

    class FakePlatform:
        env = FakeEnv()
        policy = FakePolicy()

    platform = FakePlatform()
    runstate = RunState(enabled=True)
    trace = columnar_trace()
    runstate.begin_run(trace)
    session_a, session_b = trace.sessions

    runstate.admit(platform, session_a, session_a.tasks[0])
    runstate.admit(platform, session_b, session_b.tasks[0])  # same timestamp
    platform.env.now = 120.0
    runstate.admit(platform, session_a, session_a.tasks[1])
    platform.env.now = 130.0  # late admission: env.now != submit_time
    runstate.admit(platform, session_a, session_a.tasks[2])

    assert platform.policy.calls == [(60.0, 2), (120.0, 2)]
    counters = runstate.counters()
    assert counters["batches"] == 2
    assert counters["batched_tasks"] == 4
    assert counters["warmed"] == 4

    disabled = RunState(enabled=False)
    disabled.begin_run(trace)
    disabled.admit(platform, session_a, session_a.tasks[0])
    assert disabled.counters()["batches"] == 0


# ----------------------------------------------------------------------
# Profiler counters.
# ----------------------------------------------------------------------
def profiled_run(batching: bool):
    trace = AdobeTraceGenerator(seed=9, num_sessions=6,
                                duration_hours=1.0).generate()
    platform = NotebookOSPlatform(
        default_policy_registry().create("notebookos"),
        cluster_config=ClusterConfig(initial_hosts=6),
        platform_config=PlatformConfig(policy_batching_enabled=batching))
    profiler = Profiler().attach(platform.hooks)
    platform.run_workload(trace)
    return profiler.last


def test_profiler_pins_decision_cache_counters():
    report = profiled_run(batching=True)
    decisions = report.decisions
    assert decisions["hits"] > 0
    assert decisions["misses"] > 0
    assert decisions["batches"] > 0
    assert decisions["batched_tasks"] >= decisions["batches"]
    assert decisions["warmed"] > 0
    assert "decision cache:" in report.format()


def test_profiler_decision_counters_zero_when_batching_off():
    report = profiled_run(batching=False)
    assert set(report.decisions) == {"hits", "misses", "batches",
                                     "batched_tasks", "warmed"}
    assert not any(report.decisions.values())
    assert "decision cache:" not in report.format()


# ----------------------------------------------------------------------
# End-to-end differential: batched run ≡ frozen run, per policy.
# ----------------------------------------------------------------------
def replay(policy_name: str, batching: bool):
    """One full replay; returns (digest, per-task tuples, election log)."""
    signatures = []
    original_decide = ExecutorElection.decide

    def recording_decide(self, proposals, preferred_replica=None):
        outcome = original_decide(self, proposals, preferred_replica)
        signatures.append((self.kernel_id,) + outcome.signature())
        return outcome

    ExecutorElection.decide = recording_decide
    try:
        trace = AdobeTraceGenerator(seed=5, num_sessions=40,
                                    duration_hours=4.0).generate()
        platform = NotebookOSPlatform(
            default_policy_registry().create(policy_name),
            cluster_config=ClusterConfig(initial_hosts=12),
            platform_config=PlatformConfig(policy_batching_enabled=batching))
        result = platform.run_workload(trace)
    finally:
        ExecutorElection.decide = original_decide

    digest = hashlib.sha256(json.dumps(
        result.collector.to_dict(), sort_keys=True,
        separators=(",", ":")).encode()).hexdigest()
    tasks = sorted((t.session_id, t.kernel_id, t.executor_replica,
                    t.submitted_at, t.started_at, t.completed_at, t.status)
                   for t in result.collector.tasks)
    counters = platform.runstate.counters()
    return digest, tasks, signatures, counters


@pytest.mark.slow
@pytest.mark.parametrize("policy_name",
                         ["notebookos", "reservation", "lcp", "batch"])
def test_batched_replay_bit_identical_to_frozen(policy_name):
    frozen_digest, frozen_tasks, frozen_elections, frozen_counters = \
        replay(policy_name, batching=False)
    batched_digest, batched_tasks, batched_elections, batched_counters = \
        replay(policy_name, batching=True)

    assert batched_digest == frozen_digest, "collector digests diverged"
    assert batched_tasks == frozen_tasks, "per-task selections diverged"
    assert batched_elections == frozen_elections, "election outcomes diverged"

    # The frozen run must not have touched the batching machinery at all;
    # the batched run must actually have batched.
    assert not any(frozen_counters.values())
    assert batched_counters["batches"] > 0
    assert batched_counters["batched_tasks"] >= batched_counters["batches"]
