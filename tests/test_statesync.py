"""Unit tests for AST analysis, object classification, checkpointing, and sync."""

import keyword

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import DistributedDataStore
from repro.raft import KeyValueStateMachine, RaftCluster
from repro.simulation import Environment, Network, SeededRandom
from repro.statesync import (
    CheckpointManager,
    LARGE_OBJECT_THRESHOLD_BYTES,
    NamespaceObject,
    ObjectClass,
    StateSynchronizer,
    analyze_code,
    ast_cache_stats,
    classify_object,
    clear_ast_cache,
)
from repro.statesync.synchronizer import SyncLatencyModel


# ----------------------------------------------------------------------
# AST analysis.
# ----------------------------------------------------------------------

def test_analysis_cache_hits_are_identical_to_fresh_parses():
    """A memoized analysis equals (indeed *is*) the cold-cache analysis."""
    code = ("import torch\n"
            "model = build()\n"
            "for epoch in range(3):\n"
            "    history.append(train(model))\n")
    clear_ast_cache()
    cold = analyze_code(code)
    warm = analyze_code(code)
    assert warm is cold  # shared, treat-as-frozen
    assert ast_cache_stats() == (1, 1)
    clear_ast_cache()
    refreshed = analyze_code(code)
    assert refreshed is not cold
    assert refreshed == cold
    assert ast_cache_stats() == (0, 1)
    # Syntax errors are memoized too (the flag is part of the analysis).
    assert analyze_code("def broken(:").has_syntax_error
    assert analyze_code("def broken(:").has_syntax_error
    assert ast_cache_stats() == (1, 2)


def test_simple_assignment_detected():
    analysis = analyze_code("learning_rate = 0.001\nepochs = 10")
    assert analysis.assigned_names == {"learning_rate", "epochs"}
    assert analysis.touches_state


def test_augmented_assignment_marks_mutation():
    analysis = analyze_code("counter += 1")
    assert "counter" in analysis.mutated_names
    assert "counter" in analysis.names_to_replicate


def test_attribute_and_subscript_writes_mark_root_name():
    analysis = analyze_code("config['lr'] = 0.1\nmodel.dropout = 0.5")
    assert {"config", "model"} <= analysis.mutated_names


def test_mutating_method_calls_detected():
    code = "loss_history.append(loss)\noptimizer.step()\nmodel.load_state_dict(ckpt)"
    analysis = analyze_code(code)
    assert {"loss_history", "optimizer", "model"} <= analysis.mutated_names


def test_pure_reads_do_not_replicate():
    analysis = analyze_code("print(accuracy)\nresult = accuracy")
    assert "accuracy" in analysis.referenced_names
    assert "accuracy" not in analysis.names_to_replicate
    assert "result" in analysis.names_to_replicate


def test_imports_and_definitions_detected():
    code = (
        "import torch\n"
        "from torch import nn as neural\n"
        "def train_one_epoch(model):\n"
        "    local_only = 1\n"
        "    return model\n"
        "class Trainer:\n"
        "    pass\n"
    )
    analysis = analyze_code(code)
    assert {"torch", "neural"} <= analysis.imported_modules
    assert "train_one_epoch" in analysis.defined_functions
    assert "Trainer" in analysis.defined_classes
    # Names assigned only inside function bodies stay local.
    assert "local_only" not in analysis.names_to_replicate


def test_tuple_unpacking_and_for_loop_targets():
    analysis = analyze_code("a, (b, c) = 1, (2, 3)\nfor epoch in range(3):\n    pass")
    assert {"a", "b", "c", "epoch"} <= analysis.assigned_names


def test_with_statement_target_detected():
    analysis = analyze_code("with open('f') as handle:\n    data = handle.read()")
    assert "handle" in analysis.assigned_names
    assert "data" in analysis.assigned_names


def test_delete_statement_detected():
    analysis = analyze_code("del old_model")
    assert analysis.deleted_names == {"old_model"}
    assert analysis.touches_state


def test_walrus_operator_detected():
    analysis = analyze_code("if (n := compute()) > 3:\n    pass")
    assert "n" in analysis.assigned_names


def test_syntax_error_yields_empty_analysis():
    analysis = analyze_code("def broken(:\n    pass")
    assert analysis.has_syntax_error
    assert not analysis.touches_state


def test_realistic_training_cell():
    code = (
        "model = VGG16(num_classes=10)\n"
        "optimizer = torch.optim.SGD(model.parameters(), lr=lr)\n"
        "for epoch in range(epochs):\n"
        "    loss = train_epoch(model, loader, optimizer)\n"
        "    history.append(loss)\n"
    )
    analysis = analyze_code(code)
    assert {"model", "optimizer", "epoch"} <= analysis.assigned_names
    # `loss` is assigned inside the for body at module depth 0 -> replicated.
    assert "history" in analysis.mutated_names
    assert "train_epoch" not in analysis.names_to_replicate


@settings(max_examples=30, deadline=None)
@given(name=st.from_regex(r"[a-z_][a-z0-9_]{0,10}", fullmatch=True)
       .filter(lambda s: not keyword.iskeyword(s)),
       value=st.integers(min_value=0, max_value=10**6))
def test_any_simple_assignment_is_detected_property(name, value):
    analysis = analyze_code(f"{name} = {value}")
    assert name in analysis.assigned_names


# ----------------------------------------------------------------------
# Object classification.
# ----------------------------------------------------------------------

def test_classification_threshold():
    assert classify_object(0) == ObjectClass.SMALL
    assert classify_object(LARGE_OBJECT_THRESHOLD_BYTES - 1) == ObjectClass.SMALL
    assert classify_object(LARGE_OBJECT_THRESHOLD_BYTES) == ObjectClass.LARGE


def test_classification_rejects_negative():
    with pytest.raises(ValueError):
        classify_object(-1)
    with pytest.raises(ValueError):
        NamespaceObject(name="x", size_bytes=-5)


def test_namespace_object_class_property():
    small = NamespaceObject(name="lr", size_bytes=64, kind="scalar")
    big = NamespaceObject(name="model", size_bytes=500 * 1024 ** 2, kind="model",
                          resides_on_gpu=True)
    assert small.object_class == ObjectClass.SMALL
    assert big.object_class == ObjectClass.LARGE


# ----------------------------------------------------------------------
# Checkpoint manager.
# ----------------------------------------------------------------------

def make_checkpoint_env():
    env = Environment()
    store = DistributedDataStore(env, backend="s3", rng=SeededRandom(1))
    manager = CheckpointManager(env=env, datastore=store, kernel_id="kernel-1")
    return env, store, manager


def test_checkpoint_and_restore_roundtrip():
    env, store, manager = make_checkpoint_env()
    model = NamespaceObject(name="model", size_bytes=250 * 1024 ** 2, kind="model")

    def run():
        pointer = yield env.process(manager.checkpoint(model, node_id="replica-1"))
        restored = yield env.process(manager.restore("model", node_id="replica-2"))
        return pointer, restored

    pointer, restored = env.run(until=env.process(run()))
    assert pointer.key == "kernel-1/model"
    assert restored.size_bytes == model.size_bytes
    assert manager.checkpoints_written == 1
    assert manager.objects_restored == 1
    assert store.object_count() == 1


def test_checkpoint_all_and_restore_all():
    env, _store, manager = make_checkpoint_env()
    objects = [NamespaceObject(name=f"shard-{i}", size_bytes=10 * 1024 ** 2)
               for i in range(3)]

    def run():
        pointers = yield env.process(manager.checkpoint_all(objects))
        restored = yield env.process(manager.restore_all(node_id="new-replica"))
        return pointers, restored

    pointers, restored = env.run(until=env.process(run()))
    assert len(pointers) == 3
    assert len(restored) == 3
    assert sorted(manager.checkpointed_names) == ["shard-0", "shard-1", "shard-2"]
    assert manager.total_checkpointed_bytes() == 30 * 1024 ** 2


def test_restore_unknown_object_raises():
    env, _store, manager = make_checkpoint_env()

    def run():
        yield env.process(manager.restore("ghost"))

    with pytest.raises(KeyError):
        env.run(until=env.process(run()))


def test_checkpoint_versioning_on_overwrite():
    env, _store, manager = make_checkpoint_env()
    obj = NamespaceObject(name="model", size_bytes=2 * 1024 ** 2)

    def run():
        first = yield env.process(manager.checkpoint(obj))
        second = yield env.process(manager.checkpoint(obj))
        return first, second

    first, second = env.run(until=env.process(run()))
    assert second.version == first.version + 1
    assert manager.pointer_for("model").version == second.version


# ----------------------------------------------------------------------
# State synchronizer.
# ----------------------------------------------------------------------

def make_synchronizer(raft=False, seed=3):
    env = Environment()
    network = Network(env)
    store = DistributedDataStore(env, backend="s3", rng=SeededRandom(seed))
    manager = CheckpointManager(env=env, datastore=store, kernel_id="kernel-1")
    cluster = None
    if raft:
        cluster = RaftCluster(env, network, [f"kernel-1-r{i}" for i in range(3)],
                              state_machine_factory=lambda _id: KeyValueStateMachine(),
                              rng=SeededRandom(seed))
        cluster.start()
    synchronizer = StateSynchronizer(env, "kernel-1", manager, raft_cluster=cluster,
                                     rng=SeededRandom(seed))
    return env, synchronizer, manager


NAMESPACE = [
    NamespaceObject(name="model", size_bytes=300 * 1024 ** 2, kind="model"),
    NamespaceObject(name="dataset", size_bytes=1024 ** 3, kind="dataset"),
    NamespaceObject(name="lr", size_bytes=32, kind="scalar"),
    NamespaceObject(name="history", size_bytes=2048, kind="history"),
    NamespaceObject(name="untouched", size_bytes=128, kind="scalar"),
]


def test_synchronize_splits_small_and_large_state():
    env, synchronizer, manager = make_synchronizer()
    code = "model = train(model, dataset)\nlr = 0.01\nhistory.append(lr)"

    def run():
        report = yield env.process(synchronizer.synchronize(
            code, NAMESPACE, executor_replica="replica-1", node_id="replica-1"))
        return report

    report = env.run(until=env.process(run()))
    assert {o.name for o in report.small_objects} == {"lr", "history"}
    assert {o.name for o in report.large_objects} == {"model"}
    assert "untouched" not in report.replicated_names
    assert report.raft_sync_latency > 0
    assert report.checkpoint_latency > 0
    assert manager.checkpoints_written == 1
    assert synchronizer.sync_latencies


def test_sync_plan_cache_hit_matches_cold_walk():
    """A warm sync-plan replay is identical to the cold partition walk.

    The plan cache keys on (code, namespace list identity); a hit must
    reproduce the same object partition, the same sorted-name Raft command,
    and the same byte totals the cold path computed — the bit-identity
    contract the golden digests pin end to end.
    """
    env, synchronizer, manager = make_synchronizer()
    code = "model = train(model, dataset)\nlr = 0.01\nhistory.append(lr)"

    def run():
        cold = yield env.process(synchronizer.synchronize(
            code, NAMESPACE, executor_replica="replica-1", node_id="replica-1"))
        warm = yield env.process(synchronizer.synchronize(
            code, NAMESPACE, executor_replica="replica-1", node_id="replica-1"))
        return cold, warm

    cold, warm = env.run(until=env.process(run()))
    # The plan objects themselves are shared (no re-walk) ...
    assert warm.small_objects is cold.small_objects
    assert warm.large_objects is cold.large_objects
    # ... and every derived quantity matches the cold computation.
    assert warm.bytes_via_raft == cold.bytes_via_raft == 32 + 2048
    assert warm.bytes_via_datastore == cold.bytes_via_datastore \
        == 300 * 1024 ** 2
    assert manager.checkpoints_written == 2
    # A different namespace list object invalidates the plan (identity key).
    reordered = list(NAMESPACE)

    def rerun():
        report = yield env.process(synchronizer.synchronize(
            code, reordered, executor_replica="replica-1", node_id="replica-1"))
        return report

    fresh = env.run(until=env.process(rerun()))
    assert fresh.small_objects is not cold.small_objects
    assert [o.name for o in fresh.small_objects] \
        == [o.name for o in cold.small_objects]
    assert fresh.bytes_via_raft == cold.bytes_via_raft


def test_sync_plan_cache_command_is_bit_identical_over_raft():
    """Warm-plan Raft commands equal the cold command tuple exactly."""
    env, synchronizer, _manager = make_synchronizer(raft=True)
    env.run(until=2.0)  # allow leader election

    def run():
        yield env.process(synchronizer.synchronize(
            "lr = 0.1\nhistory.append(lr)", NAMESPACE,
            executor_replica="replica-1"))
        yield env.process(synchronizer.synchronize(
            "lr = 0.1\nhistory.append(lr)", NAMESPACE,
            executor_replica="replica-1"))

    env.run(until=env.process(run()))
    env.run(until=env.now + 1.0)
    leader = synchronizer.raft_cluster.member_ids[0]
    commands = [c for c in synchronizer.raft_cluster.committed_commands(leader)
                if isinstance(c, tuple) and c and c[0] == "sync_state"]
    assert len(commands) == 2
    assert commands[0] == commands[1]
    assert commands[0] == ("sync_state", "replica-1",
                           ("history", "lr"), ())


def test_synchronize_pure_read_cell_is_noop():
    env, synchronizer, manager = make_synchronizer()

    def run():
        report = yield env.process(synchronizer.synchronize(
            "print(history)", NAMESPACE, executor_replica="replica-1"))
        return report

    report = env.run(until=env.process(run()))
    assert report.raft_sync_latency == 0.0
    assert report.bytes_via_datastore == 0
    assert manager.checkpoints_written == 0


def test_synchronize_with_real_raft_cluster():
    env, synchronizer, _manager = make_synchronizer(raft=True)
    env.run(until=2.0)  # allow leader election

    def run():
        report = yield env.process(synchronizer.synchronize(
            "lr = 0.1", NAMESPACE, executor_replica="replica-1"))
        return report

    report = env.run(until=env.process(run()))
    assert report.raft_sync_latency > 0
    # The committed sync command becomes visible on every replica's state machine.
    env.run(until=env.now + 1.0)
    for node_id in synchronizer.raft_cluster.member_ids:
        commands = synchronizer.raft_cluster.committed_commands(node_id)
        assert any(isinstance(c, tuple) and c and c[0] == "sync_state"
                   for c in commands)


def test_sync_latency_model_magnitudes_match_figure11():
    rng = SeededRandom(9)
    model = SyncLatencyModel()
    samples = sorted(model.sample(rng) for _ in range(20000))
    p90 = samples[int(0.90 * len(samples))]
    p99 = samples[int(0.99 * len(samples))]
    # Figure 11: p90 = 54.79 ms, p99 = 268.25 ms. Same order of magnitude.
    assert 0.02 < p90 < 0.15
    assert 0.08 < p99 < 0.60
    assert min(samples) >= model.minimum_s
