"""Unit tests for the control-plane components: election, placement,
auto-scaling, GPU binding, and the distributed kernel abstraction."""

import pytest

from repro.cluster import Host, HostSpec, ResourceRequest
from repro.core import (
    AutoScaler,
    ClusterConfig,
    DistributedKernel,
    ExecutorElection,
    GpuBindingModel,
    KernelReplica,
    LeastLoadedPlacement,
    PlatformConfig,
    ReplicaProposal,
    ReplicaState,
)
from repro.core.placement import cluster_subscription_ratio
from repro.simulation import SeededRandom
from repro.statesync import ObjectClass
from repro.workload.models import MODELS


# ----------------------------------------------------------------------
# Configuration validation.
# ----------------------------------------------------------------------

def test_platform_config_defaults_are_valid():
    config = PlatformConfig()
    config.validate()
    assert config.replication_factor == 3
    assert config.autoscaler_multiplier == pytest.approx(1.05)


def test_platform_config_rejects_replication_factor_two():
    with pytest.raises(ValueError):
        PlatformConfig(replication_factor=2).validate()


def test_platform_config_rejects_bad_values():
    with pytest.raises(ValueError):
        PlatformConfig(autoscaler_multiplier=0.5).validate()
    with pytest.raises(ValueError):
        PlatformConfig(kernel_fidelity="quantum").validate()
    with pytest.raises(ValueError):
        PlatformConfig(metrics_sample_interval_s=0).validate()


def test_cluster_config_validation():
    ClusterConfig(initial_hosts=10, max_hosts=20).validate()
    with pytest.raises(ValueError):
        ClusterConfig(initial_hosts=-1).validate()
    with pytest.raises(ValueError):
        ClusterConfig(initial_hosts=50, max_hosts=10).validate()


# ----------------------------------------------------------------------
# Executor election protocol.
# ----------------------------------------------------------------------

def proposals(leads):
    return [ReplicaProposal(replica_id=f"r{i}", host_id=f"h{i}", lead=lead)
            for i, lead in enumerate(leads)]


def test_election_single_leader_wins():
    election = ExecutorElection("k1", rng=SeededRandom(1))
    outcome = election.decide(proposals([False, True, False]))
    assert not outcome.failed
    assert outcome.winner.replica_id == "r1"
    assert outcome.latency_s > 0


def test_election_all_yield_fails():
    election = ExecutorElection("k1", rng=SeededRandom(2))
    outcome = election.decide(proposals([False, False, False]))
    assert outcome.failed
    assert election.failed_elections == 1
    assert election.failure_rate == 1.0


def test_election_preferred_replica_short_circuits():
    election = ExecutorElection("k1", rng=SeededRandom(3))
    outcome = election.decide(proposals([True, True, True]), preferred_replica="r2")
    assert outcome.winner.replica_id == "r2"
    # The other LEAD proposals were converted into yield_requests.
    assert outcome.converted_to_yield == 2


def test_election_preferred_replica_that_cannot_lead_is_ignored():
    election = ExecutorElection("k1", rng=SeededRandom(4))
    outcome = election.decide(proposals([True, False, True]), preferred_replica="r1")
    assert outcome.winner is not None
    assert outcome.winner.replica_id != "r1"
    assert outcome.converted_to_yield == 0


def test_election_reuses_previous_executor_most_of_the_time():
    election = ExecutorElection("k1", rng=SeededRandom(5))
    election.decide(proposals([True, True, True]))
    first_winner = election.last_executor_id
    reuse = 0
    rounds = 200
    for _ in range(rounds):
        outcome = election.decide(proposals([True, True, True]))
        if outcome.winner.replica_id == election.last_executor_id and \
                outcome.winner.replica_id == first_winner:
            reuse += 1
        first_winner = election.last_executor_id
    # §5.3.2 reports ~89% executor reuse; the model should be in that regime.
    assert reuse / rounds > 0.75


def test_election_requires_proposals():
    election = ExecutorElection("k1", rng=SeededRandom(6))
    with pytest.raises(ValueError):
        election.decide([])


# ----------------------------------------------------------------------
# Placement policy and subscription ratios.
# ----------------------------------------------------------------------

def make_hosts(n, gpus=8):
    return [Host(host_id=f"host-{i}", spec=HostSpec(num_gpus=gpus)) for i in range(n)]


def test_paper_subscription_ratio_example():
    hosts = make_hosts(1)
    for i in range(4):
        hosts[0].subscribe(f"k{i}", 4)
    assert hosts[0].subscription_ratio(3) == pytest.approx(0.667, abs=1e-3)
    assert cluster_subscription_ratio(hosts, 3) == pytest.approx(0.667, abs=1e-3)


def test_placement_prefers_least_loaded_hosts():
    hosts = make_hosts(4)
    hosts[0].bind_gpus("busy", 6, now=0.0)
    hosts[1].subscribe("k-other", 8)
    policy = LeastLoadedPlacement()
    decision = policy.candidate_hosts(hosts, ResourceRequest(gpus=2), 3, 3)
    assert decision.satisfied
    assert "host-0" not in decision.host_ids[:2]


def test_placement_respects_high_watermark():
    hosts = make_hosts(2)
    policy = LeastLoadedPlacement(high_watermark=1.0)
    # Each host can absorb at most 8 * 3 * 1.0 = 24 subscribed GPUs.
    for host in hosts:
        host.subscribe("existing", 24)
    decision = policy.candidate_hosts(hosts, ResourceRequest(gpus=1), 1, 3)
    assert not decision.satisfied


def test_placement_excludes_hosts():
    hosts = make_hosts(3)
    policy = LeastLoadedPlacement()
    decision = policy.candidate_hosts(hosts, ResourceRequest(gpus=1), 2, 3,
                                      exclude_hosts=["host-0"])
    assert "host-0" not in decision.host_ids
    assert decision.satisfied


def test_placement_without_oversubscription_requires_committable_capacity():
    hosts = make_hosts(1, gpus=2)
    policy = LeastLoadedPlacement(oversubscription_enabled=False)
    ok = policy.candidate_hosts(hosts, ResourceRequest(gpus=2, millicpus=100,
                                                       memory_mb=100, vram_gb=1), 1, 1)
    assert ok.satisfied
    hosts[0].pool.commit(ResourceRequest(gpus=2, millicpus=100, memory_mb=100, vram_gb=1))
    full = policy.candidate_hosts(hosts, ResourceRequest(gpus=1, millicpus=1,
                                                         memory_mb=1, vram_gb=1), 1, 1)
    assert not full.satisfied


def test_migration_target_requires_idle_gpus():
    hosts = make_hosts(2, gpus=4)
    hosts[0].bind_gpus("k", 4, now=0.0)
    policy = LeastLoadedPlacement()
    target = policy.migration_target(hosts, ResourceRequest(gpus=2), 3)
    assert target is not None
    assert target.host_id == "host-1"
    hosts[1].bind_gpus("k2", 3, now=0.0)
    assert policy.migration_target(hosts, ResourceRequest(gpus=2), 3) is None


def test_migration_target_respects_exclusions():
    hosts = make_hosts(2)
    policy = LeastLoadedPlacement()
    target = policy.migration_target(hosts, ResourceRequest(gpus=1), 3,
                                     exclude_hosts=["host-0", "host-1"])
    assert target is None


# ----------------------------------------------------------------------
# Auto-scaler decision logic.
# ----------------------------------------------------------------------

class _StubScheduler:
    class _Cluster:
        def committed_training_gpus(self):
            return 0

        def total_gpus(self):
            return 0

        def idle_hosts(self):
            return []

    cluster = _Cluster()


def make_autoscaler(buffer_hosts=0, multiplier=1.05):
    config = PlatformConfig(scaling_buffer_hosts=buffer_hosts,
                            autoscaler_multiplier=multiplier)
    from repro.simulation import Environment

    return AutoScaler(Environment(), _StubScheduler(), config, ClusterConfig())


def test_autoscaler_expected_capacity_uses_multiplier():
    scaler = make_autoscaler()
    assert scaler.expected_capacity(100) == pytest.approx(105.0)


def test_autoscaler_scale_out_when_capacity_below_target():
    scaler = make_autoscaler(buffer_hosts=0)
    # 100 committed GPUs -> target 105; current 96 -> need ceil(9/8) = 2 hosts.
    assert scaler.hosts_to_add(committed_gpus=100, current_gpus=96, gpus_per_host=8) == 2
    assert scaler.hosts_to_add(committed_gpus=100, current_gpus=112, gpus_per_host=8) == 0


def test_autoscaler_scaling_buffer_adds_headroom():
    scaler = make_autoscaler(buffer_hosts=2)
    # Even with zero committed GPUs the buffer keeps two hosts' worth of GPUs.
    assert scaler.hosts_to_add(committed_gpus=0, current_gpus=0, gpus_per_host=8) == 2


def test_autoscaler_scale_in_releases_at_most_two_hosts():
    scaler = make_autoscaler(buffer_hosts=0)
    release = scaler.hosts_to_release(committed_gpus=8, current_gpus=80,
                                      gpus_per_host=8, idle_host_count=9)
    assert release == 2
    assert scaler.hosts_to_release(committed_gpus=8, current_gpus=80,
                                   gpus_per_host=8, idle_host_count=0) == 0
    assert scaler.hosts_to_release(committed_gpus=72, current_gpus=80,
                                   gpus_per_host=8, idle_host_count=5) == 0


# ----------------------------------------------------------------------
# GPU binding model.
# ----------------------------------------------------------------------

def test_gpu_binding_load_time_scales_with_model_size():
    binding = GpuBindingModel()
    vgg = MODELS["vgg-16"]
    resnet = MODELS["resnet-18"]
    assert binding.load_time(vgg) > binding.load_time(resnet)
    # §3.3: "typically only takes up to a couple hundred milliseconds".
    assert binding.load_time(resnet) < 0.5
    assert binding.load_time(None) == pytest.approx(binding.bind_overhead_s)


def test_gpu_binding_unload_time_positive():
    binding = GpuBindingModel()
    assert binding.unload_time(MODELS["bert"]) > 0
    jittered = binding.load_time(MODELS["bert"], rng=SeededRandom(1))
    assert jittered > 0


# ----------------------------------------------------------------------
# Distributed kernel abstraction.
# ----------------------------------------------------------------------

def make_kernel_with_replicas(gpus_per_host=8, request_gpus=2):
    kernel = DistributedKernel(kernel_id="k1", session_id="s1",
                               resource_request=ResourceRequest(gpus=request_gpus))
    from repro.cluster.container import Container

    for i in range(3):
        host = Host(host_id=f"h{i}", spec=HostSpec(num_gpus=gpus_per_host))
        container = Container(host_id=host.host_id,
                              resources=kernel.resource_request)
        container.assign("k1", f"k1-r{i}")
        replica = KernelReplica(replica_id=f"k1-r{i}", kernel_id="k1",
                                replica_index=i, host=host, container=container)
        replica.state = ReplicaState.IDLE
        kernel.add_replica(replica)
    return kernel


def test_kernel_proposals_reflect_gpu_availability():
    kernel = make_kernel_with_replicas()
    kernel.replicas[0].host.bind_gpus("other", 8, now=0.0)   # exhaust host 0
    proposals = kernel.make_proposals(gpus_required=2)
    assert len(proposals) == 3
    by_replica = {p.replica_id: p.lead for p in proposals}
    assert by_replica["k1-r0"] is False
    assert by_replica["k1-r1"] is True
    assert by_replica["k1-r2"] is True


def test_kernel_cpu_only_tasks_can_always_lead():
    kernel = make_kernel_with_replicas()
    for replica in kernel.replicas:
        replica.host.bind_gpus("other", 8, now=0.0)
    proposals = kernel.make_proposals(gpus_required=0)
    assert all(p.lead for p in proposals)


def test_kernel_replica_management():
    kernel = make_kernel_with_replicas()
    removed = kernel.remove_replica("k1-r1")
    assert removed is not None
    assert len(kernel.active_replicas) == 2
    assert kernel.replica_by_id("k1-r1") is None
    assert kernel.replica_by_id("k1-r0") is not None
    assert set(kernel.host_ids) == {"h0", "h2"}


def test_kernel_namespace_objects_include_model_as_large_object():
    kernel = make_kernel_with_replicas()
    objects = kernel.namespace_objects()
    names = {obj.name for obj in objects}
    assert {"model", "learning_rate", "history"} <= names
    model_obj = next(obj for obj in objects if obj.name == "model")
    assert model_obj.object_class == ObjectClass.LARGE
    small = [obj for obj in objects if obj.object_class == ObjectClass.SMALL]
    assert small
