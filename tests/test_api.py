"""Tests for the ``repro.api`` façade.

Covers the four contracts the API redesign must hold:

1. **Policy registry** — error paths (unknown names, duplicate names and
   aliases), alias/case-insensitive resolution, capability introspection,
   and ``@register_policy`` extensibility;
2. **RunSpec** — dict *and* JSON round-trips preserve the content hash;
3. **Hook bus** — subscriber ordering is deterministic (hypothesis over
   random publish sequences), the metrics collector is seated first, and an
   instrumented run is *bit-identical* to a bare one (zero timeline impact);
4. **Regression** — a ``Simulation`` run of the smoke scenario reproduces
   the pre-refactor engine's golden collector digest exactly, and the
   deprecated ``run_experiment`` shim equals the façade output.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import api
from repro.api.hooks import HookBus
from repro.api.registry import (
    DuplicatePolicyError,
    PolicyRegistry,
    UnknownPolicyError,
    default_policy_registry,
)
from repro.api.simulation import Simulation
from repro.api.spec import RunSpec
from repro.experiments.scenarios import ScenarioSpec, default_registry
from repro.policies import SchedulingPolicy, make_policy


# ----------------------------------------------------------------------
# Policy registry.
# ----------------------------------------------------------------------
class _StubPolicy(SchedulingPolicy):
    name = "stub"
    uses_autoscaler = True
    replication_factor = 2

    def __init__(self, knob_s: float = 1.0) -> None:
        self.knob_s = knob_s


def test_registry_unknown_policy_raises():
    registry = default_policy_registry()
    with pytest.raises(UnknownPolicyError, match="unknown policy 'nope'"):
        registry.get("nope")
    with pytest.raises(UnknownPolicyError):
        registry.create("also-nope")
    # The deprecated shim preserves its historical ValueError contract.
    with pytest.raises(ValueError, match="unknown policy"):
        make_policy("nope")


def test_registry_replace_releases_only_its_own_keys():
    """Replacing must not orphan a name another registration now owns."""
    registry = PolicyRegistry()
    registry.register("a", _StubPolicy, aliases=("x",))
    registry.register("x", _StubPolicy, replace=True)   # 'x' re-homed
    registry.register("a", _StubPolicy, replace=True)   # must not evict 'x'
    assert registry.names() == ["a", "x"]
    assert registry.get("x").name == "x"
    assert registry.get("a").name == "a"


def test_registry_duplicate_name_and_alias_rejected():
    registry = PolicyRegistry()
    registry.register("stub", _StubPolicy, aliases=("double",))
    with pytest.raises(DuplicatePolicyError):
        registry.register("stub", _StubPolicy)
    with pytest.raises(DuplicatePolicyError):
        registry.register("fresh", _StubPolicy, aliases=("double",))
    # replace=True re-files the entry and releases its old names.
    registry.register("stub", _StubPolicy, aliases=("renamed",), replace=True)
    assert "renamed" in registry and "double" not in registry
    assert registry.names() == ["stub"]


def test_registry_alias_and_case_insensitive_resolution():
    registry = default_policy_registry()
    assert type(registry.create("LCP")) is type(registry.create("notebookos-lcp"))
    entry = registry.get("NoteBookOS")
    assert entry.name == "notebookos"
    assert entry.capabilities.uses_autoscaler
    assert entry.capabilities.replication_factor == 3
    assert "gpu_wait_poll_s" in entry.config_fields


def test_registry_resolve_instance_passthrough():
    registry = PolicyRegistry()
    policy = _StubPolicy()
    assert registry.resolve(policy) is policy
    with pytest.raises(TypeError):
        registry.resolve(policy, knob_s=2.0)


def test_register_policy_decorator_makes_policy_runnable_by_name():
    registry = PolicyRegistry()

    @api.register_policy("stub", registry=registry, description="test stub")
    class Decorated(_StubPolicy):
        pass

    entry = registry.get("stub")
    assert entry.factory is Decorated
    assert entry.description == "test stub"
    assert entry.capabilities.replication_factor == 2
    policy = registry.create("stub", knob_s=3.5)
    assert isinstance(policy, Decorated) and policy.knob_s == 3.5


def test_builtin_policies_cover_the_paper_baselines():
    names = default_policy_registry().names()
    assert names == ["batch", "lcp", "notebookos", "reservation"]


# ----------------------------------------------------------------------
# RunSpec round-trips.
# ----------------------------------------------------------------------
def test_runspec_json_round_trip_preserves_hash():
    spec = RunSpec.from_scenario("excerpt", policy="batch", seed=11,
                                 num_sessions=30)
    clone = RunSpec.from_json(spec.to_json())
    assert clone == spec
    assert clone.spec_hash() == spec.spec_hash()
    assert clone.generator_kwargs["num_sessions"] == 30
    # The dict form matches ScenarioSpec's exactly (store compatibility).
    assert clone.to_dict() == ScenarioSpec.from_dict(spec.to_dict()).to_dict()


def test_runspec_adopts_scenario_specs_and_dicts():
    base = default_registry().get("smoke").instantiate(policy="reservation")
    adopted = RunSpec.from_spec(base)
    assert isinstance(adopted, RunSpec)
    assert adopted.spec_hash() == base.spec_hash()
    assert RunSpec.from_spec(base.to_dict()).spec_hash() == base.spec_hash()
    assert RunSpec.from_spec(adopted) is adopted


def test_runspec_rejects_non_object_json():
    with pytest.raises(ValueError, match="decode to an object"):
        RunSpec.from_json(json.dumps([1, 2, 3]))


def test_runspec_unknown_scenario_raises():
    with pytest.raises(KeyError, match="unknown scenario"):
        RunSpec.from_scenario("not-a-scenario")


# ----------------------------------------------------------------------
# Hook bus: ordering determinism.
# ----------------------------------------------------------------------
def test_hook_bus_rejects_unknown_topic():
    bus = HookBus()
    with pytest.raises(ValueError, match="unknown hook topic"):
        bus.subscribe("not-a-topic", lambda: None)


def test_hook_bus_first_seats_ahead_of_existing_subscribers():
    bus = HookBus()
    seen = []
    bus.subscribe(api.PLATFORM_EVENT, lambda *a: seen.append("user"))
    bus.subscribe(api.PLATFORM_EVENT, lambda *a: seen.append("metrics"),
                  first=True)
    bus.publish(api.PLATFORM_EVENT, 0.0, None, "")
    assert seen == ["metrics", "user"]


def test_hook_bus_unsubscribe():
    bus = HookBus()
    seen = []
    callback = bus.subscribe(api.MIGRATION, lambda *a: seen.append(a))
    assert bus.unsubscribe(api.MIGRATION, callback)
    assert not bus.unsubscribe(api.MIGRATION, callback)
    bus.publish(api.MIGRATION, 1.0, "k", "a", "b")
    assert seen == [] and bus.subscriber_count(api.MIGRATION) == 0


@settings(max_examples=60, deadline=None)
@given(publishes=st.lists(
    st.tuples(st.sampled_from(api.TOPICS), st.integers(0, 1000)),
    max_size=60),
    num_subscribers=st.integers(1, 4))
def test_hook_bus_delivery_order_is_deterministic(publishes, num_subscribers):
    """Every subscriber sees every publish of its topic, in publish order,
    after all earlier-subscribed callbacks — replayed twice, identically."""
    def replay():
        bus = HookBus()
        logs = [[] for _ in range(num_subscribers)]
        for topic in api.TOPICS:
            for index, log in enumerate(logs):
                bus.subscribe(topic, lambda *payload, log=log: log.append(payload))
        order = []
        bus.subscribe(api.RUN_END, lambda *payload: order.append("late"),
                      first=True)
        for topic, value in publishes:
            bus.publish(topic, topic, value)
        return logs

    first_run, second_run = replay(), replay()
    assert first_run == second_run
    for log in first_run:
        assert log == [(topic, value) for topic, value in publishes]


# ----------------------------------------------------------------------
# Platform integration: hooks observe the run, metrics stay first.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def hooked_smoke():
    """One smoke run with every lifecycle topic recorded."""
    observed = {topic: [] for topic in api.TOPICS}
    bus = HookBus()
    for topic in api.TOPICS:
        bus.subscribe(topic, lambda *payload, topic=topic:
                      observed[topic].append(payload))
    simulation = Simulation.from_scenario("smoke").with_hooks(bus)
    result = simulation.run()
    return simulation, result, observed


def test_hooks_observe_sessions_and_tasks(hooked_smoke):
    _, result, observed = hooked_smoke
    collector = result.collector
    assert len(observed[api.SESSION_START]) == 12
    assert len(observed[api.SESSION_END]) == 12
    assert len(observed[api.TASK_SUBMIT]) == len(collector.tasks)
    assert len(observed[api.TASK_COMPLETE]) == len(collector.tasks)
    assert len(observed[api.PLATFORM_EVENT]) == len(collector.events)
    # NotebookOS places one kernel per session.
    assert len(observed[api.PLACEMENT_DECISION]) >= 12
    assert len(observed[api.RUN_START]) == 1
    assert len(observed[api.RUN_END]) == 1


def test_run_end_surfaces_ast_cache_counters(hooked_smoke):
    _, _, observed = hooked_smoke
    (_platform, _result, stats), = observed[api.RUN_END]
    assert stats["ast_cache_misses"] >= 0
    assert stats["ast_cache_hits"] + stats["ast_cache_misses"] > 0
    # Notebook traces repeat cell templates, so a full run must hit.
    assert stats["ast_cache_hits"] > 0


def test_metrics_collector_is_seated_first():
    """User hooks subscribed before the platform exists still run after
    the collector: the event is already recorded when the hook fires."""
    simulation = Simulation.from_scenario("smoke")
    platform = simulation.build()
    subscribers = platform.hooks._subscribers[api.PLATFORM_EVENT]
    assert subscribers[0] == platform.metrics.record_event

    observed = []
    bus = HookBus()
    bus.subscribe(api.PLATFORM_EVENT, lambda t, kind, detail:
                  observed.append(len(platform2.metrics.events)))
    simulation2 = Simulation.from_scenario("smoke").with_hooks(bus)
    platform2 = simulation2.build()
    trace = simulation2._resolve_trace()
    platform2.run_workload(trace)
    # Every hook invocation saw at least one event already recorded.
    assert observed and all(count >= 1 for count in observed)


def test_instrumented_run_is_bit_identical_to_bare_run(hooked_smoke):
    """Hook callbacks add zero events to the simulation timeline."""
    _, hooked_result, _ = hooked_smoke
    bare = Simulation.from_scenario("smoke").run()
    hooked = dict(hooked_result.to_dict())
    bare_dict = dict(bare.to_dict())
    hooked.pop("wall_clock_runtime")
    bare_dict.pop("wall_clock_runtime")
    assert json.dumps(hooked, sort_keys=True) == \
        json.dumps(bare_dict, sort_keys=True)


# ----------------------------------------------------------------------
# Regression: the façade reproduces the pre-refactor entry points.
# ----------------------------------------------------------------------
def _canonical_collector(result) -> str:
    return json.dumps(result.collector.to_dict(), sort_keys=True,
                      separators=(",", ":"))


def test_simulation_matches_pre_refactor_golden_digest():
    """``repro.api`` runs are bit-identical to the frozen seed engine."""
    import hashlib
    from pathlib import Path

    golden = json.loads(
        (Path(__file__).parent / "golden" / "smoke_metrics.json").read_text())
    for policy in ("notebookos", "reservation"):
        result = Simulation.from_scenario("smoke", policy=policy).run()
        # Materialize through the serialization round-trip the goldens pin.
        from repro.metrics.collector import ExperimentResult

        result = ExperimentResult.from_dict(result.to_dict())
        digest = hashlib.sha256(
            _canonical_collector(result).encode("utf-8")).hexdigest()
        assert digest == golden["policies"][policy]["collector_sha256"], \
            f"{policy}: repro.api drifted from the pre-refactor run_experiment"


def test_rerunning_a_simulation_does_not_pollute_prior_results():
    """Each run() retires the previous platform's collector subscription."""
    simulation = Simulation.from_scenario("smoke")
    first = simulation.run()
    first_events = len(first.collector.events)
    first_canonical = _canonical_collector(first)
    second = simulation.run()
    assert len(first.collector.events) == first_events, \
        "a finished run's collector kept recording the next run's events"
    assert _canonical_collector(second) == first_canonical
    # Finished runs retire their collector: the bus carries no stale
    # subscriptions.
    bus = simulation.platform.hooks
    assert bus.subscriber_count(api.PLATFORM_EVENT) == 0


def test_sharing_one_bus_across_simulations_does_not_cross_record():
    bus = HookBus()
    sim1 = Simulation.from_scenario("smoke").with_hooks(bus)
    first = sim1.run()
    first_events = len(first.collector.events)
    sim2 = Simulation.from_scenario("smoke", policy="reservation") \
        .with_hooks(bus)
    sim2.run()
    assert len(first.collector.events) == first_events, \
        "a shared bus leaked the second run's events into the first result"


def test_run_experiment_shim_keeps_value_error_contract():
    from repro import run_experiment
    from repro.experiments.scenarios import build_trace

    trace = build_trace(RunSpec.from_scenario("smoke"))
    with pytest.raises(ValueError, match="unknown policy"):
        run_experiment(trace, policy="bogus")


def test_run_experiment_shim_equals_facade():
    from repro import run_experiment
    from repro.experiments.scenarios import build_trace

    spec = RunSpec.from_scenario("smoke", policy="reservation", seed=5)
    trace = build_trace(spec)
    via_shim = run_experiment(trace, policy="reservation", seed=5)
    via_api = (Simulation.from_trace(build_trace(spec))
               .with_policy("reservation").with_seed(5).run())
    assert _canonical_collector(via_shim) == _canonical_collector(via_api)


def test_simulation_policy_instance_and_kwargs():
    from repro.policies import ReservationPolicy

    spec = RunSpec.from_scenario("smoke", policy="reservation")
    by_name = Simulation.from_spec(spec).run()
    by_instance = (Simulation.from_spec(spec)
                   .with_policy(ReservationPolicy()).run())
    assert _canonical_collector(by_name) == _canonical_collector(by_instance)
    tweaked = (Simulation.from_spec(spec)
               .with_policy("reservation", state_persist_s=5.0))
    # Tuned variants stay spec-backed: the kwargs live on the spec and give
    # it a distinct content hash (distinct store key).
    assert tweaked.storable
    assert tweaked.spec.policy_kwargs == {"state_persist_s": 5.0}
    assert tweaked.spec.spec_hash() != spec.spec_hash()
    assert _canonical_collector(tweaked.run()) != _canonical_collector(by_name)
    # An instance keeps the spec's provenance honest via its declared name.
    instance_sim = Simulation.from_spec(spec).with_policy(ReservationPolicy())
    assert instance_sim.spec.policy == "reservation"
    assert not instance_sim.storable


def test_simulation_store_round_trip(tmp_path):
    from repro.experiments.store import ResultStore

    store = ResultStore(tmp_path)
    spec = RunSpec.from_scenario("smoke", policy="batch")
    fresh_sim = Simulation.from_spec(spec).with_store(store)
    fresh = fresh_sim.run()
    assert store.hits == 0
    assert not fresh_sim.cached and fresh_sim.platform is not None
    cached_sim = Simulation.from_spec(spec).with_store(store)
    cached = cached_sim.run()
    assert store.hits == 1
    assert cached_sim.cached and cached_sim.platform is None
    assert _canonical_collector(fresh) == _canonical_collector(cached)


def test_hook_exception_still_detaches_collector():
    """A crashing user hook must not leave the dead run's collector on the
    bus (a later platform on the same bus would pollute its metrics)."""
    bus = HookBus()
    bus.subscribe(api.TASK_SUBMIT, lambda *a: (_ for _ in ()).throw(
        RuntimeError("buggy hook")))
    simulation = Simulation.from_scenario("smoke").with_hooks(bus)
    with pytest.raises(RuntimeError, match="buggy hook"):
        simulation.run()
    assert bus.subscriber_count(api.PLATFORM_EVENT) == 0


def test_with_policy_canonicalizes_aliases_for_one_store_key():
    by_alias = Simulation.from_scenario("smoke").with_policy("NOTEBOOKOS-LCP")
    by_name = Simulation.from_scenario("smoke").with_policy("lcp")
    assert by_alias.spec.policy == "lcp"
    assert by_alias.spec.spec_hash() == by_name.spec.spec_hash()


def test_with_seed_does_not_mutate_caller_platform_config():
    from repro.core.config import PlatformConfig

    config = PlatformConfig()
    default_seed = config.seed
    simulation = (Simulation.from_scenario("smoke")
                  .with_config(platform_config=config)
                  .with_seed(default_seed + 99))
    simulation.build()
    assert config.seed == default_seed
    assert simulation.platform.config.seed == default_seed + 99


def test_simulation_builder_validation():
    with pytest.raises(ValueError, match="from_scenario"):
        Simulation()
    with pytest.raises(UnknownPolicyError):
        Simulation.from_scenario("smoke").with_policy("nope")
    with pytest.raises(TypeError):
        Simulation.from_scenario("smoke").with_policy(object(), knob=1)
    # with_hooks after .on would silently drop the .on subscription.
    with pytest.raises(ValueError, match="already attached"):
        (Simulation.from_scenario("smoke")
         .on(api.MIGRATION, lambda *a: None)
         .with_hooks(HookBus()))
    from repro.workload.generator import make_generator

    trace = make_generator("adobe", seed=1, num_sessions=1,
                           duration_hours=0.5).generate()
    with pytest.raises(ValueError, match="spec-backed"):
        Simulation.from_trace(trace).with_config(preset="cluster_scale")


# ----------------------------------------------------------------------
# Deprecated shims: one DeprecationWarning per process, not per call.
# ----------------------------------------------------------------------
def test_make_policy_warns_exactly_once_per_process(monkeypatch):
    import warnings

    import repro.policies as policies

    monkeypatch.setattr(policies, "_MAKE_POLICY_WARNED", False)
    with warnings.catch_warnings(record=True) as caught:
        # "always" would surface one warning per call if the shim relied on
        # the default once-per-location dedup; the shim must dedup itself.
        warnings.simplefilter("always")
        for name in ("batch", "lcp", "reservation", "notebookos"):
            policies.make_policy(name)
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "make_policy" in str(deprecations[0].message)
    assert "default_policy_registry" in str(deprecations[0].message)


def test_run_experiment_warns_exactly_once_per_process(monkeypatch):
    import warnings

    import repro.core.platform as platform_module
    from repro.workload import SessionTrace, TaskRecord, Trace

    trace = Trace(name="tiny", sessions=[SessionTrace(
        session_id="s0", user_id="u0", start_time=0.0, end_time=60.0,
        gpus_requested=0,
        tasks=[TaskRecord(session_id="s0", submit_time=1.0, duration=5.0,
                          gpus=0, code="", task_index=0)])])
    monkeypatch.setattr(platform_module, "_RUN_EXPERIMENT_WARNED", False)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        platform_module.run_experiment(trace, policy="reservation")
        platform_module.run_experiment(trace, policy="reservation")
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "Simulation" in str(deprecations[0].message)
