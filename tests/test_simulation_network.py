"""Unit tests for the latency-modelled network and random distributions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import (
    Environment,
    Link,
    Network,
    SeededRandom,
    LogNormalSampler,
    ExponentialSampler,
    BoundedParetoSampler,
    PiecewiseCDFSampler,
    EmpiricalSampler,
    constant,
)


def make_network(default_latency=0.001):
    env = Environment()
    return env, Network(env, default_latency=default_latency)


def test_send_delivers_after_default_latency():
    env, network = make_network(default_latency=0.25)
    network.register("a")
    inbox_b = network.register("b")
    received = []

    def receiver():
        message = yield inbox_b.get()
        received.append((message.payload, env.now, message.latency))

    env.process(receiver())
    network.send("a", "b", "ping", payload={"n": 1})
    env.run()
    assert received == [({"n": 1}, 0.25, 0.25)]


def test_explicit_link_latency_and_bandwidth():
    env, network = make_network()
    network.register("a")
    inbox = network.register("b")
    network.set_link("a", "b", Link(latency_fn=constant(0.1),
                                    bandwidth_bytes_per_sec=1000.0))
    arrival = []

    def receiver():
        yield inbox.get()
        arrival.append(env.now)

    env.process(receiver())
    network.send("a", "b", "data", payload=b"", size_bytes=500)
    env.run()
    # 0.1 s propagation + 500 / 1000 s transmission.
    assert arrival == [pytest.approx(0.6)]


def test_partition_drops_messages():
    env, network = make_network()
    network.register("a")
    inbox = network.register("b")
    network.partition("a", "b")
    network.send("a", "b", "ping")
    env.run()
    assert len(inbox) == 0
    assert network.messages_dropped == 1


def test_heal_restores_delivery():
    env, network = make_network()
    network.register("a")
    inbox = network.register("b")
    network.partition("a", "b")
    network.heal("a", "b")
    network.send("a", "b", "ping")
    env.run()
    assert len(inbox) == 1


def test_isolate_and_rejoin():
    env, network = make_network()
    for name in ("a", "b", "c"):
        network.register(name)
    network.isolate("a")
    network.send("a", "b", "x")
    network.send("c", "a", "y")
    env.run()
    assert network.messages_dropped == 2
    network.rejoin("a")
    network.send("a", "b", "x2")
    env.run()
    assert len(network.inbox("b")) == 1


def test_send_to_unregistered_destination_is_dropped():
    env, network = make_network()
    network.register("a")
    network.send("a", "ghost", "ping")
    env.run()
    assert network.messages_dropped == 1


def test_inbox_for_unknown_endpoint_raises():
    _env, network = make_network()
    with pytest.raises(KeyError):
        network.inbox("nobody")


def test_lossy_link_drops_with_probability_one():
    env = Environment()
    network = Network(env, rng=SeededRandom(7))
    network.register("a")
    inbox = network.register("b")
    network.set_link("a", "b", Link(latency_fn=constant(0.01), drop_probability=1.0))
    for _ in range(5):
        network.send("a", "b", "ping")
    env.run()
    assert len(inbox) == 0
    assert network.messages_dropped == 5


def test_rpc_reply_event():
    env, network = make_network(default_latency=0.05)
    network.register("client")
    server_inbox = network.register("server")

    def server():
        message = yield server_inbox.get()
        reply_to = message.payload["reply_to"]
        yield env.timeout(0.1)
        reply_to.succeed({"status": "ok"})

    def client():
        reply = network.rpc("client", "server", "start", payload={"id": 1})
        response = yield reply
        return response, env.now

    env.process(server())
    client_proc = env.process(client())
    response, finished_at = env.run(until=client_proc)
    assert response == {"status": "ok"}
    assert finished_at == pytest.approx(0.15)


# ----------------------------------------------------------------------
# Distribution samplers.
# ----------------------------------------------------------------------

def test_seeded_random_substreams_are_independent_and_deterministic():
    rng = SeededRandom(42)
    a1 = rng.substream("workload").random()
    b1 = rng.substream("network").random()
    rng2 = SeededRandom(42)
    assert rng2.substream("workload").random() == a1
    assert rng2.substream("network").random() == b1
    assert a1 != b1


def test_lognormal_sampler_median_close():
    rng = SeededRandom(1)
    sampler = LogNormalSampler(median=120.0, sigma=1.0, rng=rng)
    samples = sorted(sampler.sample() for _ in range(4000))
    median = samples[len(samples) // 2]
    assert 90.0 < median < 160.0


def test_lognormal_sampler_respects_bounds():
    rng = SeededRandom(2)
    sampler = LogNormalSampler(median=10.0, sigma=2.0, rng=rng,
                               minimum=1.0, maximum=100.0)
    samples = [sampler.sample() for _ in range(1000)]
    assert min(samples) >= 1.0
    assert max(samples) <= 100.0


def test_exponential_sampler_mean_close():
    rng = SeededRandom(3)
    sampler = ExponentialSampler(mean=300.0, rng=rng)
    samples = [sampler.sample() for _ in range(5000)]
    mean = sum(samples) / len(samples)
    assert 270.0 < mean < 330.0


def test_bounded_pareto_respects_bounds():
    rng = SeededRandom(4)
    sampler = BoundedParetoSampler(alpha=1.2, lower=10.0, upper=1000.0, rng=rng)
    samples = [sampler.sample() for _ in range(2000)]
    assert min(samples) >= 10.0
    assert max(samples) <= 1000.0


def test_piecewise_cdf_matches_knot_percentiles():
    rng = SeededRandom(5)
    # AdobeTrace task-duration percentiles from the paper (§2.3.1).
    knots = [(0.0, 15.0), (0.5, 120.0), (0.75, 300.0), (0.9, 1020.0),
             (0.95, 2160.0), (0.99, 10920.0), (1.0, 40000.0)]
    sampler = PiecewiseCDFSampler(knots, rng)
    assert sampler.quantile(0.5) == pytest.approx(120.0)
    assert sampler.quantile(0.9) == pytest.approx(1020.0)
    samples = sorted(sampler.sample() for _ in range(8000))
    p50 = samples[int(0.5 * len(samples))]
    p90 = samples[int(0.9 * len(samples))]
    assert 90.0 < p50 < 160.0
    assert 750.0 < p90 < 1400.0


def test_piecewise_cdf_validation():
    rng = SeededRandom(6)
    with pytest.raises(ValueError):
        PiecewiseCDFSampler([(0.0, 1.0)], rng)
    with pytest.raises(ValueError):
        PiecewiseCDFSampler([(0.5, 10.0), (0.5, 20.0)], rng)
    with pytest.raises(ValueError):
        PiecewiseCDFSampler([(0.0, -1.0), (1.0, 5.0)], rng)


def test_empirical_sampler_only_returns_observed_values():
    rng = SeededRandom(7)
    values = [1.0, 2.0, 3.0]
    sampler = EmpiricalSampler(values, rng)
    assert all(sampler.sample() in values for _ in range(100))


@settings(max_examples=50, deadline=None)
@given(q=st.floats(min_value=0.0, max_value=1.0))
def test_piecewise_cdf_quantile_is_monotone_property(q):
    rng = SeededRandom(11)
    knots = [(0.0, 10.0), (0.5, 100.0), (1.0, 1000.0)]
    sampler = PiecewiseCDFSampler(knots, rng)
    value = sampler.quantile(q)
    assert 10.0 <= value <= 1000.0
    if q > 0.0:
        assert sampler.quantile(q) >= sampler.quantile(q * 0.5) - 1e-9
    assert not math.isnan(value)
