"""JSON round-trip tests for the metrics layer.

The experiment result store persists :class:`ExperimentResult` as JSON; these
tests pin the guarantee the store relies on: ``from_dict(json(to_dict(x)))``
reproduces every metric bit-for-bit (floats survive JSON exactly in Python).
"""

import json

from repro import run_experiment
from repro.analysis.timeline import Timeline
from repro.metrics.collector import (
    EventKind,
    ExperimentResult,
    MetricsCollector,
)
from repro.metrics.latency_breakdown import LatencyBreakdown, StepLatencies
from repro.workload import AdobeTraceGenerator


def json_roundtrip(data):
    return json.loads(json.dumps(data))


def test_timeline_roundtrip():
    timeline = Timeline("gpus")
    timeline.record(0.0, 4)
    timeline.record(60.0, 7.5)
    timeline.record(120.0, 3)
    restored = Timeline.from_dict(json_roundtrip(timeline.to_dict()))
    assert restored.name == "gpus"
    assert restored.points == [(0.0, 4.0), (60.0, 7.5), (120.0, 3.0)]
    assert restored.integral() == timeline.integral()


def test_step_latencies_and_breakdown_roundtrip():
    sample = StepLatencies()
    sample.record("gs_process_request", 0.003)
    sample.record("execute_code", 12.5)
    breakdown = LatencyBreakdown(policy="notebookos", samples=[sample])
    restored = LatencyBreakdown.from_dict(json_roundtrip(breakdown.to_dict()))
    assert restored.policy == "notebookos"
    assert len(restored) == 1
    assert restored.samples[0].steps == sample.steps
    assert restored.samples[0].end_to_end == sample.end_to_end
    assert restored.table() == breakdown.table()


def test_collector_roundtrip_handbuilt():
    collector = MetricsCollector(sample_interval=30.0)
    task = collector.new_task("s1", "k1", submitted_at=10.0, gpus=2)
    task.started_at = 11.5
    task.completed_at = 42.0
    task.status = "completed"
    task.executor_replica = "k1-replica-0-1"
    task.steps.record("execute_code", 30.5)
    collector.new_task("s2", "k2", submitted_at=20.0, gpus=0, is_gpu_task=False)
    collector.record_event(5.0, EventKind.SCALE_OUT, "+2 hosts")
    collector.sample_cluster(0.0, provisioned_gpus=16, committed_gpus=4,
                             active_sessions=2, active_trainings=1,
                             subscription_ratio=1.5, provisioned_hosts=2)
    collector.datastore_read_latencies = [0.01, 0.02]
    collector.raft_sync_latencies = [0.001]
    collector.record_executor_decision(immediate_commit=True, same_executor=False)

    restored = MetricsCollector.from_dict(json_roundtrip(collector.to_dict()))
    assert restored.sample_interval == 30.0
    assert len(restored.tasks) == 2
    assert restored.tasks[0].interactivity_delay == task.interactivity_delay
    assert restored.tasks[0].task_completion_time == task.task_completion_time
    assert restored.tasks[0].steps.steps == task.steps.steps
    assert restored.tasks[1].is_gpu_task is False
    assert restored.events[0].kind is EventKind.SCALE_OUT
    assert restored.events[0].detail == "+2 hosts"
    assert restored.provisioned_gpus.points == collector.provisioned_gpus.points
    assert restored.subscription_ratio.points == collector.subscription_ratio.points
    assert restored.datastore_read_latencies == [0.01, 0.02]
    assert restored.raft_sync_latencies == [0.001]
    assert restored.executor_decisions == 1
    assert restored.immediate_commit_fraction() == 1.0


def test_experiment_result_roundtrip_from_real_run():
    trace = AdobeTraceGenerator(seed=3, num_sessions=8,
                                duration_hours=1.5).generate()
    result = run_experiment(trace, policy="notebookos", seed=3)
    restored = ExperimentResult.from_dict(json_roundtrip(result.to_dict()))

    assert restored.summary() == result.summary()
    assert restored.interactivity_cdf.values == result.interactivity_cdf.values
    assert restored.tct_cdf.values == result.tct_cdf.values
    assert restored.provisioned_gpu_hours == result.provisioned_gpu_hours
    assert restored.collector.provisioned_gpus.points == \
        result.collector.provisioned_gpus.points
    assert [(e.time, e.kind, e.detail) for e in restored.collector.events] == \
        [(e.time, e.kind, e.detail) for e in result.collector.events]
    assert restored.breakdown is not None
    assert restored.breakdown.table() == result.breakdown.table()
    # A second round trip is a fixed point.
    assert restored.to_dict() == json_roundtrip(result.to_dict())
