"""Unit tests for resource requests, pools, GPUs, and hosts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import GPUAllocator, Host, HostSpec, ResourcePool, ResourceRequest
from repro.cluster.resources import InsufficientResourcesError


# ----------------------------------------------------------------------
# ResourceRequest / ResourcePool.
# ----------------------------------------------------------------------

def test_resource_request_defaults_and_vcpus():
    request = ResourceRequest(millicpus=2500)
    assert request.vcpus == 2.5
    assert request.gpus == 1


def test_resource_request_rejects_negative():
    with pytest.raises(ValueError):
        ResourceRequest(gpus=-1)


def test_resource_request_fits_within():
    small = ResourceRequest(millicpus=1000, memory_mb=1024, gpus=1, vram_gb=8)
    big = ResourceRequest(millicpus=2000, memory_mb=4096, gpus=2, vram_gb=32)
    assert small.fits_within(big)
    assert not big.fits_within(small)


def test_resource_request_add_and_scale():
    a = ResourceRequest(millicpus=1000, memory_mb=1000, gpus=1, vram_gb=10)
    b = ResourceRequest(millicpus=500, memory_mb=500, gpus=2, vram_gb=5)
    total = a.add(b)
    assert total.gpus == 3
    assert total.millicpus == 1500
    half = a.scaled(0.5)
    assert half.millicpus == 500
    assert half.vram_gb == 5.0


def test_pool_commit_and_release_cycle():
    pool = ResourcePool(ResourceRequest(millicpus=4000, memory_mb=8192, gpus=4, vram_gb=64))
    request = ResourceRequest(millicpus=1000, memory_mb=2048, gpus=2, vram_gb=32)
    assert pool.can_commit(request)
    pool.commit(request)
    assert pool.committed.gpus == 2
    assert pool.available.gpus == 2
    pool.release(request)
    assert pool.committed.gpus == 0


def test_pool_rejects_overcommit():
    pool = ResourcePool(ResourceRequest(millicpus=1000, memory_mb=1024, gpus=1, vram_gb=8))
    pool.commit(ResourceRequest(millicpus=1000, memory_mb=1024, gpus=1, vram_gb=8))
    with pytest.raises(InsufficientResourcesError):
        pool.commit(ResourceRequest(millicpus=1, memory_mb=0, gpus=0, vram_gb=0))


def test_pool_release_more_than_committed_raises():
    pool = ResourcePool(ResourceRequest(millicpus=1000, memory_mb=1024, gpus=2, vram_gb=8))
    with pytest.raises(ValueError):
        pool.release(ResourceRequest(millicpus=1, memory_mb=0, gpus=0, vram_gb=0))


def test_pool_utilization_ratios():
    pool = ResourcePool(ResourceRequest(millicpus=1000, memory_mb=1000, gpus=4, vram_gb=40))
    pool.commit(ResourceRequest(millicpus=500, memory_mb=250, gpus=1, vram_gb=10))
    utilization = pool.utilization()
    assert utilization["cpus"] == pytest.approx(0.5)
    assert utilization["memory"] == pytest.approx(0.25)
    assert utilization["gpus"] == pytest.approx(0.25)


@settings(max_examples=50, deadline=None)
@given(commits=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=10))
def test_pool_never_exceeds_capacity_property(commits):
    capacity = ResourceRequest(millicpus=100_000, memory_mb=100_000, gpus=8, vram_gb=256)
    pool = ResourcePool(capacity)
    committed = []
    for gpus in commits:
        request = ResourceRequest(millicpus=10, memory_mb=10, gpus=gpus, vram_gb=1)
        if pool.can_commit(request):
            pool.commit(request)
            committed.append(request)
    assert pool.committed.gpus <= capacity.gpus
    for request in committed:
        pool.release(request)
    assert pool.committed.gpus == 0
    assert pool.committed.millicpus == 0


# ----------------------------------------------------------------------
# GPUAllocator.
# ----------------------------------------------------------------------

def test_gpu_allocator_allocate_and_release():
    allocator = GPUAllocator.create("host-1", num_gpus=4)
    device_ids = allocator.allocate("kernel-a", 2, now=0.0)
    assert len(device_ids) == 2
    assert allocator.allocated_count == 2
    assert allocator.idle_count == 2
    released = allocator.release("kernel-a", now=10.0)
    assert released == 2
    assert allocator.idle_count == 4
    assert allocator.total_busy_time() == pytest.approx(20.0)


def test_gpu_allocator_rejects_overallocation():
    allocator = GPUAllocator.create("host-1", num_gpus=2)
    allocator.allocate("a", 2, now=0.0)
    assert not allocator.can_allocate(1)
    with pytest.raises(RuntimeError):
        allocator.allocate("b", 1, now=0.0)


def test_gpu_allocator_owner_tracking():
    allocator = GPUAllocator.create("host-1", num_gpus=4)
    allocator.allocate("a", 1, now=0.0)
    allocator.allocate("b", 2, now=0.0)
    owners = allocator.owners()
    assert len(owners["a"]) == 1
    assert len(owners["b"]) == 2


def test_gpu_device_double_allocate_raises():
    allocator = GPUAllocator.create("host-1", num_gpus=1)
    allocator.allocate("a", 1, now=0.0)
    with pytest.raises(RuntimeError):
        allocator.devices[0].allocate("b", now=1.0)


def test_gpu_busy_time_includes_inflight():
    allocator = GPUAllocator.create("host-1", num_gpus=1)
    allocator.allocate("a", 1, now=5.0)
    assert allocator.total_busy_time(now=15.0) == pytest.approx(10.0)


# ----------------------------------------------------------------------
# Host.
# ----------------------------------------------------------------------

def test_host_subscription_ratio_matches_paper_example():
    """§3.4.1: 8-GPU host serving 4 kernels of 4 GPUs each -> SR = 16/(8*3)."""
    host = Host(host_id="H", spec=HostSpec(num_gpus=8))
    for i in range(4):
        host.subscribe(f"kernel-{i}", 4)
    assert host.subscribed_gpus == 16
    assert host.subscription_ratio(replication_factor=3) == pytest.approx(16 / 24)


def test_host_unsubscribe_removes_kernel():
    host = Host(host_id="H")
    host.subscribe("k1", 2)
    host.subscribe("k2", 4)
    host.unsubscribe("k1")
    assert host.subscribed_gpus == 4
    assert not host.has_subscription("k1")


def test_host_bind_and_release_gpus():
    host = Host(host_id="H", spec=HostSpec(num_gpus=8))
    devices = host.bind_gpus("k1", 4, now=0.0)
    assert len(devices) == 4
    assert host.idle_gpus == 4
    assert host.active_training_count == 1
    assert host.committed_training_gpus == 4
    assert not host.is_idle
    host.release_gpus("k1", now=60.0)
    assert host.idle_gpus == 8
    assert host.is_idle


def test_host_cannot_bind_more_than_idle():
    host = Host(host_id="H", spec=HostSpec(num_gpus=2))
    host.bind_gpus("k1", 2, now=0.0)
    assert not host.can_bind_gpus(1)
    with pytest.raises(RuntimeError):
        host.bind_gpus("k2", 1, now=0.0)


def test_host_uptime_cost_and_utilization():
    spec = HostSpec(num_gpus=8, hourly_cost_usd=24.0)
    host = Host(host_id="H", spec=spec, provisioned_at=0.0)
    host.bind_gpus("k1", 4, now=0.0)
    host.release_gpus("k1", now=1800.0)
    assert host.uptime(3600.0) == pytest.approx(3600.0)
    assert host.cost(3600.0) == pytest.approx(24.0)
    # 4 GPUs busy for half the hour out of 8 GPUs for the whole hour.
    assert host.gpu_utilization(3600.0) == pytest.approx(0.25)


def test_host_decommission_freezes_uptime():
    host = Host(host_id="H", provisioned_at=100.0)
    host.decommission(200.0)
    assert not host.is_active
    assert host.uptime(5000.0) == pytest.approx(100.0)


def test_host_container_registry():
    host = Host(host_id="H")
    host.register_container("c1", object())
    host.register_container("c2", object())
    assert host.container_count == 2
    host.unregister_container("c1")
    assert host.container_count == 1
