"""Calendar-queue ordering tests: the engine vs a frozen heap reference.

The engine's dispatch contract is "(time, serial) order — exactly what a
single global ``(time, serial, item)`` heap produces".  These tests pin it
three ways:

* a hypothesis property drives random *defer trees* (callbacks that
  schedule more callbacks, including zero delays, bucket-boundary delays,
  and far-future delays) through the real :class:`Environment` and through
  a ten-line heapq reference, and requires identical firing order and
  timestamps — across calendar geometries chosen to force every structural
  path (same-time FIFO lane, current-bucket incursions, future-bucket
  appends, overflow migration, window rebases);
* a hypothesis property replays random schedule/cancel/interrupt process
  structures across those same geometries and requires identical traces —
  shrinking the window until nearly everything rebases must not reorder
  anything;
* unit tests cover the cold corners: the stopped-early window rebuild
  (scheduling *before* a rebased window base), step()/peek() interleaving
  with same-time lanes, and dispatch-stat accounting.

The serial-vs-parallel sweep test at the bottom re-pins cross-process
determinism on the new dispatch loop, with tuned ``policy_kwargs`` riding
along (they must round-trip through worker processes and the store key).
"""

import heapq
import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import Environment, Interrupt

# Geometries that force different structural paths through the calendar:
# the default; a window so small almost everything overflows and rebases;
# a bucket width so large one bucket holds everything (pure incursion /
# cursor behaviour); and a boundary-hostile medium window.
GEOMETRIES = (
    {},
    {"bucket_width": 0.5, "num_buckets": 4},       # span 2.0 — rebases galore
    {"bucket_width": 1e6, "num_buckets": 2},       # one giant bucket
    {"bucket_width": 0.25, "num_buckets": 16},     # span 4.0
)

# Delays chosen to hit exact bucket boundaries (multiples of 0.25 and 0.5),
# sub-width values, zero, and far-future values for every geometry above.
DELAY_CHOICES = (0.0, 1e-4, 0.1, 0.125, 0.25, 0.26, 0.5, 0.75, 1.0, 2.0,
                 3.75, 4.0, 7.5, 100.0)


# ----------------------------------------------------------------------
# Defer trees vs the heap reference.
# ----------------------------------------------------------------------
def build_script(seed: int, nodes: int = 40):
    """A random defer tree: node -> (delay, children node ids)."""
    rng = random.Random(seed)
    script = {}
    for node in range(nodes):
        fanout = rng.choice((0, 0, 1, 1, 2, 3))
        children = [child for child in range(node + 1, nodes)
                    if rng.random() < 0.5][:fanout]
        script[node] = (rng.choice(DELAY_CHOICES), children)
    roots = [node for node in range(nodes)
             if not any(node in kids for _, kids in script.values())]
    return script, roots


def run_script_on_engine(script, roots, geometry) -> list:
    env = Environment(**geometry)
    fired = []

    def make_callback(node):
        def fire(_stub):
            fired.append((node, env.now))
            for child in script[node][1]:
                env.defer(script[child][0], make_callback(child))
        return fire

    for root in roots:
        env.defer(script[root][0], make_callback(root))
    env.run()
    return fired


def run_script_on_heap_reference(script, roots) -> list:
    """The frozen reference: one global (time, serial, node) heap."""
    heap, serial, now, fired = [], 0, 0.0, []
    for root in roots:
        heapq.heappush(heap, (now + script[root][0], serial, root))
        serial += 1
    while heap:
        now, _, node = heapq.heappop(heap)
        fired.append((node, now))
        for child in script[node][1]:
            heapq.heappush(heap, (now + script[child][0], serial, child))
            serial += 1
    return fired


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_defer_trees_fire_in_heap_order(seed):
    script, roots = build_script(seed)
    expected = run_script_on_heap_reference(script, roots)
    for geometry in GEOMETRIES:
        assert run_script_on_engine(script, roots, geometry) == expected, \
            f"geometry {geometry} diverged from the heap reference"


# ----------------------------------------------------------------------
# Schedule/cancel/interrupt structures across geometries.
# ----------------------------------------------------------------------
def run_process_structure(seed: int, geometry) -> list:
    """Random sleeps, timeouts, events, interrupts; returns the trace."""
    rng = random.Random(seed)
    env = Environment(**geometry)
    trace: list = []
    signals = [env.event() for _ in range(rng.randint(1, 3))]

    def sleeper(wid: int):
        for step in range(rng.randint(1, 6)):
            choice = rng.random()
            try:
                if choice < 0.5:
                    delay = rng.choice(DELAY_CHOICES)
                    if rng.random() < 0.5:
                        yield delay
                    else:
                        yield env.timeout(delay)
                    trace.append(("slept", wid, step, env.now))
                elif choice < 0.7 and signals:
                    signal = rng.choice(signals)
                    if not signal.triggered:
                        signal.succeed(wid)
                        trace.append(("signalled", wid, step, env.now))
                    yield rng.choice(DELAY_CHOICES)
                else:
                    yield rng.choice((50.0, 100.0, 200.0))
                    trace.append(("long-nap", wid, step, env.now))
            except Interrupt as interrupt:
                trace.append(("interrupted", wid, step, interrupt.cause,
                              env.now))

    workers = [env.process(sleeper(i)) for i in range(rng.randint(2, 5))]

    def canceller():
        for round_no in range(rng.randint(1, 5)):
            yield rng.choice(DELAY_CHOICES[1:])
            victim = rng.choice(workers)
            if victim.is_alive:
                victim.interrupt(f"cancel-{round_no}")
                trace.append(("cancelled", round_no, env.now))

    env.process(canceller())
    env.run(until=300.0)
    trace.append(("final", env.now))
    return trace


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_process_structures_identical_across_geometries(seed):
    reference = run_process_structure(seed, GEOMETRIES[0])
    for geometry in GEOMETRIES[1:]:
        assert run_process_structure(seed, geometry) == reference, \
            f"geometry {geometry} reordered the process trace"


# ----------------------------------------------------------------------
# Cold corners.
# ----------------------------------------------------------------------
def test_schedule_before_rebased_window_rebuilds():
    # Force a rebase far into the future, stop the clock short of it, then
    # schedule between now and the rebased base: the window must re-anchor
    # (the _rebuild path) and still dispatch everything in time order.
    env = Environment(bucket_width=0.5, num_buckets=4)  # span 2.0
    fired = []
    env.defer(100.0, lambda _s: fired.append(("far", env.now)))
    env.run(until=50.0)            # advance may rebase the window to 100.0
    assert env.now == 50.0 and fired == []
    env.defer(10.0, lambda _s: fired.append(("mid", env.now)))   # t=60 < base
    env.defer(0.0, lambda _s: fired.append(("now", env.now)))    # t=50
    env.run()
    assert fired == [("now", 50.0), ("mid", 60.0), ("far", 100.0)]


def test_step_orders_bucket_entries_before_same_time_fifo():
    env = Environment()
    fired = []
    env.defer(1.0, lambda _s: fired.append("first-at-1"))
    env.defer(1.0, lambda _s: fired.append("second-at-1"))
    env.step()                     # pops first-at-1, clock now 1.0
    assert env.now == 1.0 and fired == ["first-at-1"]
    # A same-time schedule lands in the FIFO lane; the remaining bucket
    # entry at t=1.0 carries a smaller serial and must pop first.
    env.defer(0.0, lambda _s: fired.append("fifo-at-1"))
    assert env.peek() == 1.0
    env.step()
    assert fired == ["first-at-1", "second-at-1"]
    env.step()
    assert fired == ["first-at-1", "second-at-1", "fifo-at-1"]


def test_dispatch_stats_account_for_lanes_and_batches():
    env = Environment()
    for _ in range(3):
        env.defer(0.0, lambda _s: None)      # same-time FIFO lane
    env.defer(1.0, lambda _s: None)          # bucketed tuple
    env.defer(1.0, lambda _s: None)          # fused into the same batch
    env.defer(10_000.0, lambda _s: None)     # overflow, migrates on rebase
    env.run()
    stats = env.dispatch_stats()
    assert stats["dispatched"] == 6
    # Batches: t=0 (three FIFO entries), t=1 (two fused), t=10000 (one).
    assert stats["batches"] == 3
    assert stats["serials"] == 3             # only tuple entries mint serials
    assert stats["overflow"] == 1 and stats["rebases"] == 1


def test_peek_from_a_callback_is_side_effect_free():
    # peek() must be a pure read: a callback peeking mid-run while the
    # loop's cursor locals are cached must not sort/clear/rebase the
    # calendar — doing so used to let the loop re-commit a stale cursor
    # and silently drop the head of the next bucket.
    env = Environment(bucket_width=1.0, num_buckets=8)
    fired = []
    peeks = []

    def observer(_stub):
        fired.append(("observer", env.now))
        peeks.append(env.peek())

    env.defer(1.0, observer)           # drains bucket 1, then peeks ahead
    env.defer(2.0, lambda _s: fired.append(("head", env.now)))
    env.defer(2.5, lambda _s: fired.append(("tail", env.now)))
    env.defer(100.0, lambda _s: fired.append(("far", env.now)))  # overflow
    env.run()
    assert fired == [("observer", 1.0), ("head", 2.0), ("tail", 2.5),
                     ("far", 100.0)]
    assert peeks == [2.0]


def test_peek_scans_unsorted_future_buckets_and_overflow():
    env = Environment(bucket_width=1.0, num_buckets=4)
    assert env.peek() == float("inf")
    env.defer(2.7, lambda _s: None)
    env.defer(2.3, lambda _s: None)    # same future bucket, out of order
    assert env.peek() == 2.3
    env.run()
    assert env.peek() == float("inf")
    env.defer(50.0, lambda _s: None)   # overflow only (now 2.7 + 50.0)
    assert env.peek() == 52.7


def test_environment_rejects_past_schedules_and_negative_delays():
    env = Environment()
    env.defer(5.0, lambda _s: None)
    env.run()
    try:
        env.defer(-1.0, lambda _s: None)
    except Exception as error:
        assert "past" in str(error)
    else:  # pragma: no cover - the raise is the contract
        raise AssertionError("negative defer must be rejected")


# ----------------------------------------------------------------------
# Serial vs parallel sweeps on the new engine (with tuned policy kwargs).
# ----------------------------------------------------------------------
def test_policy_kwargs_sweep_serial_vs_parallel_bit_identical(tmp_path):
    from repro.experiments import SweepGrid, run_specs
    from repro.experiments.store import ResultStore

    grid = SweepGrid(scenario="smoke", policies=("reservation",),
                     seeds=(7, 8), policy_kwargs={"state_persist_s": 0.45})
    specs = grid.expand()
    assert all(spec.policy_kwargs == {"state_persist_s": 0.45}
               for spec in specs)
    # Tuned variants must be tellable apart in human-readable output.
    assert specs[0].label == "smoke/reservation/seed7[state_persist_s=0.45]"

    def canonical(outcomes):
        rows = []
        for outcome in outcomes:
            cleaned = outcome.result.to_dict()
            cleaned.pop("wall_clock_runtime", None)
            rows.append(json.dumps(cleaned, sort_keys=True))
        return rows

    serial = run_specs(specs, workers=1, store=None)
    parallel = run_specs(specs, workers=2, store=None)
    assert canonical(serial) == canonical(parallel)

    # Tuned variants are storable under their own content hash: a rerun
    # through a store is a full cache hit, and differs from the untuned key.
    store = ResultStore(tmp_path)
    run_specs(specs, workers=1, store=store)
    rerun = run_specs(specs, workers=1, store=store)
    assert all(outcome.cached for outcome in rerun)
    untuned = SweepGrid(scenario="smoke", policies=("reservation",),
                        seeds=(7, 8)).expand()
    assert {spec.spec_hash() for spec in specs}.isdisjoint(
        {spec.spec_hash() for spec in untuned})
