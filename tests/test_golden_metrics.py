"""Golden-metrics regression tests.

``tests/golden/smoke_metrics.json`` freezes the key figure outputs of the
``smoke`` scenario — Figure 9 interactivity/TCT CDF quantiles, Figure 12
cost/revenue, Figure 13 GPU-hours saved — plus a SHA-256 digest of the full
serialized :class:`MetricsCollector`, as produced by the seed (pre-fast-path)
engine.  The optimized engine must reproduce every number *exactly*: the
fast path is a pure performance refactor, so any drift here is a scheduling
or accounting regression, not noise.

Regenerate the goldens only for an intended behaviour change::

    PYTHONPATH=src python tests/golden/generate.py
"""

import importlib.util
import json
from pathlib import Path

import pytest

_spec = importlib.util.spec_from_file_location(
    "golden_generate", Path(__file__).parent / "golden" / "generate.py")
_generate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_generate)
GOLDEN_PATH = _generate.GOLDEN_PATH
MEGA_GOLDEN_PATH = _generate.MEGA_GOLDEN_PATH
build_goldens = _generate.build_goldens
build_mega_goldens = _generate.build_mega_goldens


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(Path(GOLDEN_PATH).read_text())


@pytest.fixture(scope="module")
def current() -> dict:
    return build_goldens()


@pytest.fixture(scope="module")
def mega_golden() -> dict:
    return json.loads(Path(MEGA_GOLDEN_PATH).read_text())


@pytest.fixture(scope="module")
def mega_current() -> dict:
    return build_mega_goldens()


def test_golden_file_is_committed(golden):
    assert golden["policies"], "golden fixture is empty — run generate.py"


def test_collector_digests_match_exactly(golden, current):
    """The strongest pin: byte-identical serialized collectors."""
    for policy, frozen in golden["policies"].items():
        assert current["policies"][policy]["collector_sha256"] == \
            frozen["collector_sha256"], (
                f"{policy}: serialized MetricsCollector drifted from the "
                f"seed engine's output")


def test_fig9_cdf_quantiles_match_exactly(golden, current):
    for policy, frozen in golden["policies"].items():
        now = current["policies"][policy]
        assert now["interactivity_quantiles"] == frozen["interactivity_quantiles"]
        assert now["tct_quantiles"] == frozen["tct_quantiles"]
        assert now["tasks_completed"] == frozen["tasks_completed"]


def test_fig12_cost_matches_exactly(golden, current):
    for policy, frozen in golden["policies"].items():
        assert current["policies"][policy]["fig12_cost"] == frozen["fig12_cost"]


def test_fig13_gpu_hours_match_exactly(golden, current):
    assert current["fig13_gpu_hours_saved"] == golden["fig13_gpu_hours_saved"]


def test_gpu_hours_match_exactly(golden, current):
    for policy, frozen in golden["policies"].items():
        now = current["policies"][policy]
        assert now["provisioned_gpu_hours"] == frozen["provisioned_gpu_hours"]
        assert now["committed_gpu_hours"] == frozen["committed_gpu_hours"]


def test_mega_smoke_collector_digest_matches_exactly(mega_golden, mega_current):
    """The mega_scale-smoke pin: the batched-decision fast path must be
    byte-identical on the scenario family it was built to accelerate."""
    assert mega_current["overrides"] == mega_golden["overrides"]
    for policy, frozen in mega_golden["policies"].items():
        now = mega_current["policies"][policy]
        assert now["collector_sha256"] == frozen["collector_sha256"], (
            f"{policy}: mega-smoke serialized MetricsCollector drifted")
        assert now["tasks_completed"] == frozen["tasks_completed"]
