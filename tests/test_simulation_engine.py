"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.simulation import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
    Store,
    PriorityStore,
    Resource,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(5.0)
        return env.now

    process = env.process(proc())
    result = env.run(until=process)
    assert result == 5.0
    assert env.now == 5.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_processes_interleave_in_time_order():
    env = Environment()
    order = []

    def worker(name, delay):
        yield env.timeout(delay)
        order.append((name, env.now))

    env.process(worker("b", 2.0))
    env.process(worker("a", 1.0))
    env.process(worker("c", 3.0))
    env.run()
    assert order == [("a", 1.0), ("b", 2.0), ("c", 3.0)]


def test_run_until_time_stops_clock_at_limit():
    env = Environment()
    seen = []

    def ticker():
        while True:
            yield env.timeout(1.0)
            seen.append(env.now)

    env.process(ticker())
    env.run(until=10.5)
    assert env.now == 10.5
    assert seen == [float(i) for i in range(1, 11)]


def test_run_until_past_time_raises():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_event_succeed_delivers_value():
    env = Environment()
    event = env.event()
    results = []

    def waiter():
        value = yield event
        results.append(value)

    def trigger():
        yield env.timeout(2.0)
        event.succeed("payload")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert results == ["payload"]


def test_event_fail_raises_in_waiter():
    env = Environment()
    event = env.event()

    def waiter():
        with pytest.raises(RuntimeError, match="boom"):
            yield event
        return "handled"

    def trigger():
        yield env.timeout(1.0)
        event.fail(RuntimeError("boom"))

    process = env.process(waiter())
    env.process(trigger())
    assert env.run(until=process) == "handled"


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_process_return_value_propagates_to_waiters():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        return 42

    def parent():
        value = yield env.process(child())
        return value * 2

    process = env.process(parent())
    assert env.run(until=process) == 84


def test_process_exception_propagates_to_waiters():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise ValueError("child failed")

    def parent():
        try:
            yield env.process(child())
        except ValueError as exc:
            return str(exc)

    process = env.process(parent())
    assert env.run(until=process) == "child failed"


def test_yielding_non_event_fails_the_process():
    env = Environment()

    def bad():
        yield "not-an-event"

    def parent():
        with pytest.raises(SimulationError):
            yield env.process(bad())
        return "ok"

    process = env.process(parent())
    assert env.run(until=process) == "ok"


def test_yielding_number_sleeps():
    """``yield delay`` is the allocation-free equivalent of a timeout."""
    env = Environment()
    log = []

    def sleeper():
        yield 2.5
        log.append(env.now)
        yield 1          # ints sleep too
        log.append(env.now)
        return env.now

    process = env.process(sleeper())
    assert env.run(until=process) == 3.5
    assert log == [2.5, 3.5]


def test_yielding_negative_number_fails_the_process():
    env = Environment()

    def bad():
        yield -1.0

    def parent():
        with pytest.raises(SimulationError):
            yield env.process(bad())
        return "ok"

    process = env.process(parent())
    assert env.run(until=process) == "ok"


def test_number_sleep_schedules_identically_to_timeout():
    """Mixed timeout/number sleeps interleave in the same global order."""
    def run(use_numbers):
        env = Environment()
        order = []

        def worker(name, delay):
            if use_numbers:
                yield delay
            else:
                yield env.timeout(delay)
            order.append((name, env.now))

        for name, delay in [("a", 1.0), ("b", 1.0), ("c", 0.5), ("d", 1.5)]:
            env.process(worker(name, delay))
        env.run()
        return order

    assert run(True) == run(False)


def test_interrupt_wakes_sleeping_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100.0)
            log.append("slept")
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, env.now))

    def interrupter(target):
        yield env.timeout(3.0)
        target.interrupt("wake up")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert log == [("interrupted", "wake up", 3.0)]


def test_interrupted_process_can_continue():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        return env.now

    def interrupter(target):
        yield env.timeout(5.0)
        target.interrupt()

    target = env.process(sleeper())
    env.process(interrupter(target))
    assert env.run(until=target) == 6.0


def test_allof_waits_for_every_event():
    env = Environment()

    def proc():
        timeouts = [env.timeout(d, value=d) for d in (1.0, 3.0, 2.0)]
        yield AllOf(env, timeouts)
        return env.now

    process = env.process(proc())
    assert env.run(until=process) == 3.0


def test_anyof_returns_on_first_event():
    env = Environment()

    def proc():
        timeouts = [env.timeout(d, value=d) for d in (4.0, 1.5, 3.0)]
        yield AnyOf(env, timeouts)
        return env.now

    process = env.process(proc())
    assert env.run(until=process) == 1.5


def test_store_fifo_ordering():
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for i in range(3):
            yield env.timeout(1.0)
            store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append((item, env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == [(0, 1.0), (1, 2.0), (2, 3.0)]


def test_store_get_before_put_blocks():
    env = Environment()
    store = Store(env)

    def consumer():
        item = yield store.get()
        return (item, env.now)

    def producer():
        yield env.timeout(7.0)
        store.put("late")

    consumer_proc = env.process(consumer())
    env.process(producer())
    assert env.run(until=consumer_proc) == ("late", 7.0)


def test_priority_store_orders_by_priority():
    env = Environment()
    store = PriorityStore(env)
    store.put("low", priority=10)
    store.put("high", priority=1)
    store.put("mid", priority=5)

    def consumer():
        items = []
        for _ in range(3):
            items.append((yield store.get()))
        return items

    process = env.process(consumer())
    assert env.run(until=process) == ["high", "mid", "low"]


def test_resource_limits_concurrency():
    env = Environment()
    resource = Resource(env, capacity=2)
    concurrency = []

    def worker():
        yield resource.request()
        concurrency.append(resource.in_use)
        yield env.timeout(1.0)
        resource.release()

    for _ in range(5):
        env.process(worker())
    env.run()
    assert max(concurrency) <= 2
    assert resource.in_use == 0


def test_resource_release_without_request_raises():
    env = Environment()
    resource = Resource(env, capacity=1)
    with pytest.raises(RuntimeError):
        resource.release()


def test_resource_resize_grants_waiters():
    env = Environment()
    resource = Resource(env, capacity=0)
    granted = []

    def worker():
        yield resource.request()
        granted.append(env.now)

    def grower():
        yield env.timeout(4.0)
        resource.resize(1)

    env.process(worker())
    env.process(grower())
    env.run()
    assert granted == [4.0]


def test_interrupt_while_waiting_ignores_stale_wakeup():
    """An interrupted process must not be woken by the event it abandoned."""
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(10.0)
            log.append(("woke-from-timeout", env.now))
        except Interrupt as interrupt:
            log.append(("interrupted", interrupt.cause, env.now))
        # Re-wait: the abandoned 10s timeout still fires at t=10 but must be
        # ignored as stale; only the new 20s sleep may resume the process.
        yield env.timeout(20.0)
        log.append(("woke-from-second", env.now))

    def interrupter(target):
        yield env.timeout(3.0)
        target.interrupt("migrate")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run(until=target)
    assert log == [("interrupted", "migrate", 3.0), ("woke-from-second", 23.0)]


def test_interrupt_while_waiting_on_shared_event_leaves_event_intact():
    """Interrupting one waiter must not consume the event for other waiters."""
    env = Environment()
    shared = env.event()
    log = []

    def waiter(name):
        try:
            value = yield shared
            log.append((name, "got", value, env.now))
        except Interrupt:
            log.append((name, "interrupted", env.now))

    first = env.process(waiter("first"))
    env.process(waiter("second"))

    def driver():
        yield env.timeout(1.0)
        first.interrupt()
        yield env.timeout(1.0)
        shared.succeed("payload")

    env.process(driver())
    env.run()
    assert ("first", "interrupted", 1.0) in log
    assert ("second", "got", "payload", 2.0) in log


def test_unhandled_event_failure_escalates_from_run():
    """A failed event nobody waits on must not vanish silently."""
    env = Environment()
    event = env.event()

    def failer():
        yield env.timeout(1.0)
        event.fail(RuntimeError("nobody handles this"))

    env.process(failer())
    with pytest.raises(RuntimeError, match="nobody handles this"):
        env.run()


def test_defused_failure_does_not_escalate():
    """Setting defused marks the failure as handled out-of-band."""
    env = Environment()
    event = env.event()

    def failer():
        yield env.timeout(1.0)
        event.fail(RuntimeError("pre-acknowledged"))
        event.defused = True

    env.process(failer())
    env.run()  # must not raise
    assert event.defused and not event.ok


def test_waiter_defuses_failure_automatically():
    env = Environment()
    event = env.event()

    def waiter():
        try:
            yield event
        except RuntimeError:
            pass

    def failer():
        yield env.timeout(1.0)
        event.fail(RuntimeError("handled by waiter"))

    env.process(waiter())
    env.process(failer())
    env.run()  # the waiter absorbed the failure; nothing escalates
    assert event.defused


def test_uncaught_interrupt_kills_process_without_escalating():
    """Interrupt-to-death is cancellation, not an engine-level error."""
    env = Environment()

    def stubborn():
        yield env.timeout(100.0)  # never catches Interrupt

    target = env.process(stubborn())
    def killer():
        yield env.timeout(1.0)
        target.interrupt("shutdown")

    env.process(killer())
    env.run()  # must not raise
    assert not target.is_alive
    assert target.defused
    with pytest.raises(Interrupt):
        _ = target.value


def test_unhandled_process_crash_escalates_from_run():
    """A background process dying of a real bug surfaces at run()."""
    env = Environment()

    def crasher():
        yield env.timeout(1.0)
        raise ValueError("bug in background process")

    env.process(crasher())
    with pytest.raises(ValueError, match="bug in background process"):
        env.run()


def test_determinism_same_structure_same_schedule():
    def build_and_run():
        env = Environment()
        order = []

        def worker(name, delay):
            yield env.timeout(delay)
            order.append(name)

        for name, delay in [("x", 1.0), ("y", 1.0), ("z", 0.5)]:
            env.process(worker(name, delay))
        env.run()
        return order

    assert build_and_run() == build_and_run()
