"""The Raft node: follower / candidate / leader roles over the sim network.

The implementation follows the Raft paper (Ongaro & Ousterhout, 2014):
randomized election timeouts, term-based leader election, log replication
with the AppendEntries consistency check, and majority commitment.  Committed
entries are applied, in order, to a :class:`~repro.raft.state_machine.StateMachine`.

Proposals are client-facing: :meth:`RaftNode.propose` returns a simulation
event that triggers once the proposed command has been committed and applied
*locally*.  Proposals made on a non-leader node are transparently forwarded
to the current leader (and buffered while no leader is known), which is the
behaviour the NotebookOS kernel replicas rely on during executor elections.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from itertools import count
from typing import Any, Dict, List, Optional

from repro.simulation.engine import Environment, Process
from repro.simulation.events import Event
from repro.simulation.network import Message, Network, NetworkAddress
from repro.simulation.distributions import SeededRandom
from repro.raft.log import LogEntry, RaftLog
from repro.raft.messages import (
    AppendEntriesRequest,
    AppendEntriesResponse,
    InstallSnapshotRequest,
    InstallSnapshotResponse,
    RequestVoteRequest,
    RequestVoteResponse,
)
from repro.raft.state_machine import StateMachine

_PROPOSAL_IDS = count(1)


class Role(enum.Enum):
    """The three Raft roles."""

    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass
class RaftConfig:
    """Timing parameters of the Raft protocol (seconds of simulation time)."""

    election_timeout_min: float = 0.150
    election_timeout_max: float = 0.300
    heartbeat_interval: float = 0.050
    tick_interval: float = 0.010
    max_entries_per_append: int = 64

    def validate(self) -> None:
        if self.election_timeout_min <= 0:
            raise ValueError("election_timeout_min must be positive")
        if self.election_timeout_max < self.election_timeout_min:
            raise ValueError("election_timeout_max must be >= election_timeout_min")
        if self.heartbeat_interval >= self.election_timeout_min:
            raise ValueError("heartbeat_interval must be below election_timeout_min")
        if self.tick_interval <= 0:
            raise ValueError("tick_interval must be positive")


@dataclass
class _PendingProposal:
    proposal_id: int
    event: Event
    command: Any


class RaftNode:
    """One member of a Raft group, bound to a network address."""

    def __init__(self, env: Environment, network: Network, node_id: NetworkAddress,
                 peers: List[NetworkAddress], state_machine: StateMachine,
                 config: Optional[RaftConfig] = None,
                 rng: Optional[SeededRandom] = None) -> None:
        config = config or RaftConfig()
        config.validate()
        self.env = env
        self.network = network
        self.node_id = node_id
        self.peers = [p for p in peers if p != node_id]
        self.state_machine = state_machine
        self.config = config
        self._rng = rng or SeededRandom(hash(node_id) & 0x7FFFFFFF)

        # Persistent state.
        self.current_term = 0
        self.voted_for: Optional[NetworkAddress] = None
        self.log = RaftLog()

        # Volatile state.
        self.role = Role.FOLLOWER
        self.commit_index = 0
        self.last_applied = 0
        self.leader_id: Optional[NetworkAddress] = None
        self.next_index: Dict[NetworkAddress, int] = {}
        self.match_index: Dict[NetworkAddress, int] = {}
        self._votes_received: set[NetworkAddress] = set()

        # Client proposal tracking.
        self._pending_by_id: Dict[int, _PendingProposal] = {}
        self._unforwarded: List[_PendingProposal] = []

        # Observability counters.
        self.elections_started = 0
        self.elections_won = 0
        self.entries_applied = 0
        self.apply_listeners: List[Any] = []

        self._running = False
        self._inbox = network.register(node_id)
        self._election_deadline = 0.0
        self._last_heartbeat_sent = 0.0
        self._processes: List[Process] = []

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the node's receive loop and timer processes."""
        if self._running:
            return
        self._running = True
        self._reset_election_deadline()
        self._processes = [
            self.env.process(self._receive_loop(), name=f"raft-recv:{self.node_id}"),
            self.env.process(self._timer_loop(), name=f"raft-timer:{self.node_id}"),
        ]

    def stop(self) -> None:
        """Stop the node (used when a kernel replica is terminated)."""
        self._running = False
        for process in self._processes:
            if process.is_alive:
                process.interrupt("raft-node-stopped")
        self._processes = []
        self.network.unregister(self.node_id)

    @property
    def is_leader(self) -> bool:
        return self.role == Role.LEADER

    @property
    def running(self) -> bool:
        return self._running

    def quorum_size(self) -> int:
        return (len(self.peers) + 1) // 2 + 1

    # ------------------------------------------------------------------
    # Client interface.
    # ------------------------------------------------------------------
    def propose(self, command: Any) -> Event:
        """Propose ``command``; the returned event triggers when applied locally."""
        proposal_id = next(_PROPOSAL_IDS)
        pending = _PendingProposal(proposal_id=proposal_id,
                                   event=self.env.event(), command=command)
        self._pending_by_id[proposal_id] = pending
        wrapped = {"proposal_id": proposal_id, "origin": self.node_id,
                   "command": command}
        if self.is_leader:
            self._leader_append(wrapped)
        elif self.leader_id is not None and self.network.is_registered(self.leader_id):
            self.network.send(self.node_id, self.leader_id, "raft.propose", wrapped)
        else:
            self._unforwarded.append(pending)
        return pending.event

    def add_apply_listener(self, listener: Any) -> None:
        """Register ``listener(index, command, result)`` for every applied entry."""
        self.apply_listeners.append(listener)

    # ------------------------------------------------------------------
    # Membership (single-server changes).
    # ------------------------------------------------------------------
    def set_peers(self, peers: List[NetworkAddress]) -> None:
        """Replace the peer set (committed configuration change applied)."""
        self.peers = [p for p in peers if p != self.node_id]
        for peer in self.peers:
            self.next_index.setdefault(peer, self.log.last_index + 1)
            self.match_index.setdefault(peer, 0)
        self.next_index = {p: self.next_index[p] for p in self.peers}
        self.match_index = {p: self.match_index[p] for p in self.peers}

    # ------------------------------------------------------------------
    # Timers.
    # ------------------------------------------------------------------
    def _reset_election_deadline(self) -> None:
        timeout = self._rng.uniform(self.config.election_timeout_min,
                                    self.config.election_timeout_max)
        self._election_deadline = self.env.now + timeout

    def _timer_loop(self):
        while self._running:
            yield self.config.tick_interval
            if not self._running:
                return
            if self.role == Role.LEADER:
                if (self.env.now - self._last_heartbeat_sent
                        >= self.config.heartbeat_interval):
                    self._broadcast_append_entries()
            elif self.env.now >= self._election_deadline:
                self._start_election()

    # ------------------------------------------------------------------
    # Receive loop and message dispatch.
    # ------------------------------------------------------------------
    def _receive_loop(self):
        while self._running:
            message: Message = yield self._inbox.get()
            if not self._running:
                return
            self._dispatch(message)

    def _dispatch(self, message: Message) -> None:
        payload = message.payload
        kind = message.kind
        if kind == "raft.request_vote":
            self._handle_request_vote(payload)
        elif kind == "raft.request_vote_response":
            self._handle_request_vote_response(payload)
        elif kind == "raft.append_entries":
            self._handle_append_entries(payload)
        elif kind == "raft.append_entries_response":
            self._handle_append_entries_response(payload)
        elif kind == "raft.propose":
            self._handle_forwarded_proposal(payload)
        elif kind == "raft.install_snapshot":
            self._handle_install_snapshot(payload)
        elif kind == "raft.install_snapshot_response":
            self._handle_install_snapshot_response(payload)

    # ------------------------------------------------------------------
    # Elections.
    # ------------------------------------------------------------------
    def _start_election(self) -> None:
        self.role = Role.CANDIDATE
        self.current_term += 1
        self.voted_for = self.node_id
        self.leader_id = None
        self._votes_received = {self.node_id}
        self.elections_started += 1
        self._reset_election_deadline()
        request = RequestVoteRequest(term=self.current_term,
                                     candidate_id=self.node_id,
                                     last_log_index=self.log.last_index,
                                     last_log_term=self.log.last_term)
        if len(self._votes_received) >= self.quorum_size():
            self._become_leader()
            return
        for peer in self.peers:
            self.network.send(self.node_id, peer, "raft.request_vote", request)

    def _handle_request_vote(self, request: RequestVoteRequest) -> None:
        if request.term > self.current_term:
            self._become_follower(request.term)
        grant = False
        if request.term == self.current_term:
            up_to_date = (request.last_log_term, request.last_log_index) >= (
                self.log.last_term, self.log.last_index)
            if up_to_date and self.voted_for in (None, request.candidate_id):
                grant = True
                self.voted_for = request.candidate_id
                self._reset_election_deadline()
        response = RequestVoteResponse(term=self.current_term,
                                       voter_id=self.node_id, vote_granted=grant)
        self.network.send(self.node_id, request.candidate_id,
                          "raft.request_vote_response", response)

    def _handle_request_vote_response(self, response: RequestVoteResponse) -> None:
        if response.term > self.current_term:
            self._become_follower(response.term)
            return
        if self.role != Role.CANDIDATE or response.term != self.current_term:
            return
        if response.vote_granted:
            self._votes_received.add(response.voter_id)
            if len(self._votes_received) >= self.quorum_size():
                self._become_leader()

    def _become_leader(self) -> None:
        self.role = Role.LEADER
        self.leader_id = self.node_id
        self.elections_won += 1
        self.next_index = {peer: self.log.last_index + 1 for peer in self.peers}
        self.match_index = {peer: 0 for peer in self.peers}
        # Commit a no-op entry to establish leadership over previous terms.
        self._leader_append({"proposal_id": 0, "origin": self.node_id,
                             "command": ("noop",)})
        self._flush_unforwarded()
        self._broadcast_append_entries()

    def _become_follower(self, term: int) -> None:
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
        self.role = Role.FOLLOWER
        self._reset_election_deadline()

    # ------------------------------------------------------------------
    # Log replication (leader side).
    # ------------------------------------------------------------------
    def _leader_append(self, wrapped_command: Any) -> LogEntry:
        entry = self.log.append(self.current_term, wrapped_command)
        self._maybe_advance_commit()
        self._broadcast_append_entries()
        return entry

    def _flush_unforwarded(self) -> None:
        pending, self._unforwarded = self._unforwarded, []
        for proposal in pending:
            wrapped = {"proposal_id": proposal.proposal_id, "origin": self.node_id,
                       "command": proposal.command}
            if self.is_leader:
                self._leader_append(wrapped)
            elif self.leader_id is not None:
                self.network.send(self.node_id, self.leader_id, "raft.propose", wrapped)
            else:
                self._unforwarded.append(proposal)

    def _broadcast_append_entries(self) -> None:
        self._last_heartbeat_sent = self.env.now
        for peer in self.peers:
            self._send_append_entries(peer)

    def _send_append_entries(self, peer: NetworkAddress) -> None:
        next_index = self.next_index.get(peer, self.log.last_index + 1)
        if next_index <= self.log.snapshot_index:
            self._send_install_snapshot(peer)
            return
        prev_index = next_index - 1
        prev_term = self.log.term_at(prev_index)
        if prev_term is None:
            self._send_install_snapshot(peer)
            return
        entries = self.log.entries_from(next_index)
        entries = entries[: self.config.max_entries_per_append]
        request = AppendEntriesRequest(term=self.current_term, leader_id=self.node_id,
                                       prev_log_index=prev_index,
                                       prev_log_term=prev_term,
                                       entries=entries,
                                       leader_commit=self.commit_index)
        size = 64 + sum(_estimate_size(e.command) for e in entries)
        self.network.send(self.node_id, peer, "raft.append_entries", request,
                          size_bytes=size)

    def _handle_append_entries(self, request: AppendEntriesRequest) -> None:
        if request.term > self.current_term:
            self._become_follower(request.term)
        success = False
        match_index = 0
        if request.term == self.current_term:
            if self.role != Role.FOLLOWER:
                self._become_follower(request.term)
            self.leader_id = request.leader_id
            self._reset_election_deadline()
            if self.log.has_entry(request.prev_log_index, request.prev_log_term):
                self.log.append_entries(request.prev_log_index, request.entries)
                success = True
                if request.entries:
                    match_index = request.entries[-1].index
                else:
                    match_index = request.prev_log_index
                if request.leader_commit > self.commit_index:
                    self.commit_index = min(request.leader_commit, self.log.last_index)
                    self._apply_committed()
            self._flush_unforwarded()
        response = AppendEntriesResponse(term=self.current_term,
                                         follower_id=self.node_id,
                                         success=success, match_index=match_index)
        self.network.send(self.node_id, request.leader_id,
                          "raft.append_entries_response", response)

    def _handle_append_entries_response(self, response: AppendEntriesResponse) -> None:
        if response.term > self.current_term:
            self._become_follower(response.term)
            return
        if self.role != Role.LEADER or response.term != self.current_term:
            return
        peer = response.follower_id
        if response.success:
            self.match_index[peer] = max(self.match_index.get(peer, 0),
                                         response.match_index)
            self.next_index[peer] = self.match_index[peer] + 1
            self._maybe_advance_commit()
        else:
            self.next_index[peer] = max(1, self.next_index.get(peer, 1) - 1)
            self._send_append_entries(peer)

    def _maybe_advance_commit(self) -> None:
        if self.role != Role.LEADER:
            return
        for index in range(self.log.last_index, self.commit_index, -1):
            if self.log.term_at(index) != self.current_term:
                continue
            replicas = 1 + sum(1 for peer in self.peers
                               if self.match_index.get(peer, 0) >= index)
            if replicas >= self.quorum_size():
                self.commit_index = index
                self._apply_committed()
                break

    # ------------------------------------------------------------------
    # Snapshots (for lagging / freshly joined followers).
    # ------------------------------------------------------------------
    def _send_install_snapshot(self, peer: NetworkAddress) -> None:
        request = InstallSnapshotRequest(term=self.current_term,
                                         leader_id=self.node_id,
                                         last_included_index=self.log.snapshot_index,
                                         last_included_term=self.log.snapshot_term,
                                         snapshot=self.state_machine.snapshot())
        self.network.send(self.node_id, peer, "raft.install_snapshot", request,
                          size_bytes=1024)

    def _handle_install_snapshot(self, request: InstallSnapshotRequest) -> None:
        if request.term > self.current_term:
            self._become_follower(request.term)
        if request.term < self.current_term:
            return
        self.leader_id = request.leader_id
        self._reset_election_deadline()
        if request.last_included_index > self.log.snapshot_index:
            self.state_machine.restore(request.snapshot)
            self.log.install_snapshot(request.last_included_index,
                                      request.last_included_term)
            self.commit_index = max(self.commit_index, request.last_included_index)
            self.last_applied = max(self.last_applied, request.last_included_index)
        response = InstallSnapshotResponse(term=self.current_term,
                                           follower_id=self.node_id,
                                           last_included_index=request.last_included_index)
        self.network.send(self.node_id, request.leader_id,
                          "raft.install_snapshot_response", response)

    def _handle_install_snapshot_response(self, response: InstallSnapshotResponse) -> None:
        if response.term > self.current_term:
            self._become_follower(response.term)
            return
        if self.role != Role.LEADER:
            return
        peer = response.follower_id
        self.match_index[peer] = max(self.match_index.get(peer, 0),
                                     response.last_included_index)
        self.next_index[peer] = self.match_index[peer] + 1

    # ------------------------------------------------------------------
    # Forwarded proposals and application.
    # ------------------------------------------------------------------
    def _handle_forwarded_proposal(self, wrapped: Any) -> None:
        if self.is_leader:
            self._leader_append(wrapped)
        elif self.leader_id is not None and self.leader_id != self.node_id:
            self.network.send(self.node_id, self.leader_id, "raft.propose", wrapped)
        # Otherwise the proposal is dropped; the proposer's own node will
        # retry it when a leader is discovered (it stays in _unforwarded).

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self.log.entry_at(self.last_applied)
            if entry is None:
                continue
            wrapped = entry.command
            command = wrapped.get("command") if isinstance(wrapped, dict) else wrapped
            result = self.state_machine.apply(self.last_applied, command)
            self.entries_applied += 1
            for listener in self.apply_listeners:
                listener(self.last_applied, command, result)
            if isinstance(wrapped, dict):
                self._resolve_pending(wrapped, result)

    def _resolve_pending(self, wrapped: Dict[str, Any], result: Any) -> None:
        if wrapped.get("origin") != self.node_id:
            return
        proposal_id = wrapped.get("proposal_id")
        pending = self._pending_by_id.pop(proposal_id, None)
        if pending is not None and not pending.event.triggered:
            pending.event.succeed(result)


def _estimate_size(command: Any) -> int:
    """Rough wire-size estimate used for bandwidth-aware links."""
    try:
        return max(32, len(repr(command)))
    except Exception:  # pragma: no cover - defensive
        return 64
