"""State-machine interface for applied Raft log entries.

A NotebookOS kernel replica's replicated state (namespace variables, election
proposals, large-object pointers) is delivered to a :class:`StateMachine`
once the corresponding log entry has been committed by a majority of the
replica's Raft group.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional


class StateMachine:
    """Interface that receives committed log entries in order."""

    def apply(self, index: int, command: Any) -> Any:
        """Apply a committed command; return value is surfaced to proposers."""
        raise NotImplementedError

    def snapshot(self) -> Any:
        """Return a serializable snapshot of the state machine."""
        return None

    def restore(self, snapshot: Any) -> None:
        """Restore state from a snapshot produced by :meth:`snapshot`."""


class KeyValueStateMachine(StateMachine):
    """A simple dictionary state machine.

    Commands are ``("set", key, value)`` / ``("delete", key)`` tuples.  Used
    directly by tests and as the base for the kernel namespace replica state.
    """

    def __init__(self) -> None:
        self.data: Dict[str, Any] = {}
        self.applied_commands: List[Any] = []

    def apply(self, index: int, command: Any) -> Any:
        self.applied_commands.append(command)
        if not isinstance(command, tuple) or not command:
            return None
        op = command[0]
        if op == "set" and len(command) == 3:
            _, key, value = command
            self.data[key] = value
            return value
        if op == "delete" and len(command) == 2:
            return self.data.pop(command[1], None)
        if op == "noop":
            return None
        return None

    def snapshot(self) -> Any:
        return dict(self.data)

    def restore(self, snapshot: Any) -> None:
        self.data = dict(snapshot or {})
        self.applied_commands = []


class CallbackStateMachine(StateMachine):
    """Delegates ``apply`` to a callable; handy for embedding in components."""

    def __init__(self, apply_fn: Callable[[int, Any], Any],
                 snapshot_fn: Optional[Callable[[], Any]] = None,
                 restore_fn: Optional[Callable[[Any], None]] = None) -> None:
        self._apply_fn = apply_fn
        self._snapshot_fn = snapshot_fn
        self._restore_fn = restore_fn

    def apply(self, index: int, command: Any) -> Any:
        return self._apply_fn(index, command)

    def snapshot(self) -> Any:
        return self._snapshot_fn() if self._snapshot_fn else None

    def restore(self, snapshot: Any) -> None:
        if self._restore_fn:
            self._restore_fn(snapshot)
