"""Raft RPC message payloads.

These dataclasses are carried as the payload of
:class:`repro.simulation.network.Message` objects between Raft nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.raft.log import LogEntry


@dataclass
class RequestVoteRequest:
    """Candidate → peer: request a vote for ``term``."""

    term: int
    candidate_id: str
    last_log_index: int
    last_log_term: int


@dataclass
class RequestVoteResponse:
    """Peer → candidate: vote result."""

    term: int
    voter_id: str
    vote_granted: bool


@dataclass
class AppendEntriesRequest:
    """Leader → follower: replicate entries / heartbeat."""

    term: int
    leader_id: str
    prev_log_index: int
    prev_log_term: int
    entries: List[LogEntry] = field(default_factory=list)
    leader_commit: int = 0

    @property
    def is_heartbeat(self) -> bool:
        return not self.entries


@dataclass
class AppendEntriesResponse:
    """Follower → leader: replication result."""

    term: int
    follower_id: str
    success: bool
    match_index: int = 0


@dataclass
class InstallSnapshotRequest:
    """Leader → lagging follower: replace its log with a snapshot."""

    term: int
    leader_id: str
    last_included_index: int
    last_included_term: int
    snapshot: object = None


@dataclass
class InstallSnapshotResponse:
    """Follower → leader: snapshot installation acknowledgement."""

    term: int
    follower_id: str
    last_included_index: int
