"""The replicated Raft log.

Log indices are 1-based, as in the Raft paper.  Entry 0 is a sentinel with
term 0.  The log supports truncation-on-conflict (AppendEntries consistency
check) and compaction up to a snapshot index, which the NotebookOS kernel
replicas use when a migrated replica joins with a state snapshot read from
the distributed data store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional


@dataclass(frozen=True)
class LogEntry:
    """A single entry in the replicated log."""

    term: int
    command: Any
    index: int = 0

    def with_index(self, index: int) -> "LogEntry":
        return LogEntry(term=self.term, command=self.command, index=index)


@dataclass
class RaftLog:
    """An in-memory Raft log with optional compaction."""

    entries: List[LogEntry] = field(default_factory=list)
    snapshot_index: int = 0
    snapshot_term: int = 0

    # ------------------------------------------------------------------
    # Basic queries.
    # ------------------------------------------------------------------
    @property
    def last_index(self) -> int:
        """Index of the last entry (0 if the log is empty)."""
        if self.entries:
            return self.entries[-1].index
        return self.snapshot_index

    @property
    def last_term(self) -> int:
        """Term of the last entry (0 if the log is empty)."""
        if self.entries:
            return self.entries[-1].term
        return self.snapshot_term

    def __len__(self) -> int:
        return self.last_index

    def term_at(self, index: int) -> Optional[int]:
        """Term of the entry at ``index``; ``None`` if unknown."""
        if index == 0:
            return 0
        if index == self.snapshot_index:
            return self.snapshot_term
        entry = self.entry_at(index)
        return entry.term if entry is not None else None

    def entry_at(self, index: int) -> Optional[LogEntry]:
        """The entry stored at ``index``, or ``None`` if absent/compacted."""
        offset = index - self.snapshot_index - 1
        if 0 <= offset < len(self.entries):
            return self.entries[offset]
        return None

    def entries_from(self, index: int) -> List[LogEntry]:
        """All entries with index >= ``index``."""
        offset = max(0, index - self.snapshot_index - 1)
        return list(self.entries[offset:])

    def has_entry(self, index: int, term: int) -> bool:
        """Consistency check used by AppendEntries (prev_log_index/term)."""
        if index == 0:
            return True
        if index <= self.snapshot_index:
            return index == self.snapshot_index and term == self.snapshot_term
        stored = self.term_at(index)
        return stored == term

    # ------------------------------------------------------------------
    # Mutation.
    # ------------------------------------------------------------------
    def append(self, term: int, command: Any) -> LogEntry:
        """Append a new entry as leader; returns the stored entry."""
        entry = LogEntry(term=term, command=command, index=self.last_index + 1)
        self.entries.append(entry)
        return entry

    def append_entries(self, prev_index: int, entries: List[LogEntry]) -> None:
        """Append follower-side entries after ``prev_index``.

        Conflicting suffixes (same index, different term) are truncated, per
        the Raft paper's AppendEntries receiver rules.
        """
        for entry in entries:
            existing = self.entry_at(entry.index)
            if existing is not None and existing.term != entry.term:
                self.truncate_from(entry.index)
                existing = None
            if existing is None and entry.index == self.last_index + 1:
                self.entries.append(entry)

    def truncate_from(self, index: int) -> None:
        """Discard every entry with index >= ``index``."""
        offset = index - self.snapshot_index - 1
        if offset < 0:
            offset = 0
        del self.entries[offset:]

    def compact(self, through_index: int) -> int:
        """Discard entries up to and including ``through_index``.

        Returns the number of entries removed.  Used after state snapshots.
        """
        if through_index <= self.snapshot_index:
            return 0
        through_index = min(through_index, self.last_index)
        term = self.term_at(through_index) or self.snapshot_term
        removed = 0
        while self.entries and self.entries[0].index <= through_index:
            self.entries.pop(0)
            removed += 1
        self.snapshot_index = through_index
        self.snapshot_term = term
        return removed

    def install_snapshot(self, index: int, term: int) -> None:
        """Reset the log to an externally provided snapshot point."""
        self.entries.clear()
        self.snapshot_index = index
        self.snapshot_term = term
