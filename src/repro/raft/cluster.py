"""Helper for wiring a group of Raft nodes together.

A :class:`RaftCluster` owns the N :class:`~repro.raft.node.RaftNode`\\ s of one
replication group (in NotebookOS, the three replicas of one distributed
kernel).  It provides convenience operations used by the control plane:
waiting for a leader, proposing through any member, and single-server
membership changes (remove a terminated replica, add a migrated one).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.simulation.engine import Environment
from repro.simulation.events import Event
from repro.simulation.network import Network, NetworkAddress
from repro.simulation.distributions import SeededRandom
from repro.raft.node import RaftConfig, RaftNode
from repro.raft.state_machine import StateMachine


class RaftCluster:
    """A managed group of Raft nodes sharing one log."""

    def __init__(self, env: Environment, network: Network,
                 member_ids: List[NetworkAddress],
                 state_machine_factory: Callable[[NetworkAddress], StateMachine],
                 config: Optional[RaftConfig] = None,
                 rng: Optional[SeededRandom] = None) -> None:
        if len(member_ids) < 1:
            raise ValueError("a Raft cluster needs at least one member")
        self.env = env
        self.network = network
        self.config = config or RaftConfig()
        self._rng = rng or SeededRandom(0)
        self._state_machine_factory = state_machine_factory
        self.nodes: Dict[NetworkAddress, RaftNode] = {}
        for member_id in member_ids:
            self._create_node(member_id, member_ids)

    # ------------------------------------------------------------------
    # Construction / lifecycle.
    # ------------------------------------------------------------------
    def _create_node(self, node_id: NetworkAddress,
                     member_ids: List[NetworkAddress]) -> RaftNode:
        node = RaftNode(env=self.env, network=self.network, node_id=node_id,
                        peers=list(member_ids),
                        state_machine=self._state_machine_factory(node_id),
                        config=self.config,
                        rng=self._rng.substream(f"raft:{node_id}"))
        self.nodes[node_id] = node
        return node

    def start(self) -> None:
        """Start every member node."""
        for node in self.nodes.values():
            node.start()

    def stop(self) -> None:
        """Stop every member node."""
        for node in self.nodes.values():
            node.stop()

    @property
    def member_ids(self) -> List[NetworkAddress]:
        return list(self.nodes)

    # ------------------------------------------------------------------
    # Leadership.
    # ------------------------------------------------------------------
    def leader(self) -> Optional[RaftNode]:
        """The current leader node, if one exists."""
        for node in self.nodes.values():
            if node.is_leader and node.running:
                return node
        return None

    def wait_for_leader(self, poll_interval: float = 0.02,
                        timeout: Optional[float] = None):
        """Simulation process: wait until some member believes it is leader."""
        deadline = None if timeout is None else self.env.now + timeout
        while True:
            leader = self.leader()
            if leader is not None:
                return leader
            if deadline is not None and self.env.now >= deadline:
                raise TimeoutError("no Raft leader elected before the deadline")
            yield poll_interval

    # ------------------------------------------------------------------
    # Proposals.
    # ------------------------------------------------------------------
    def propose(self, command, via: Optional[NetworkAddress] = None) -> Event:
        """Propose ``command`` through ``via`` (or the leader / any member)."""
        if via is not None:
            return self.nodes[via].propose(command)
        leader = self.leader()
        node = leader or next(iter(self.nodes.values()))
        return node.propose(command)

    # ------------------------------------------------------------------
    # Membership changes (single-server at a time).
    # ------------------------------------------------------------------
    def remove_member(self, node_id: NetworkAddress) -> None:
        """Remove (and stop) a member, e.g. a terminated kernel replica."""
        node = self.nodes.pop(node_id, None)
        if node is None:
            return
        node.stop()
        remaining = list(self.nodes)
        for member in self.nodes.values():
            member.set_peers(remaining)

    def add_member(self, node_id: NetworkAddress) -> RaftNode:
        """Add a new member (e.g. a freshly migrated kernel replica).

        The new node starts as a follower with an empty log; the current
        leader brings it up to date through AppendEntries / InstallSnapshot.
        """
        if node_id in self.nodes:
            return self.nodes[node_id]
        member_ids = list(self.nodes) + [node_id]
        node = self._create_node(node_id, member_ids)
        for existing_id, existing in self.nodes.items():
            if existing_id != node_id:
                existing.set_peers(member_ids)
        node.start()
        return node

    # ------------------------------------------------------------------
    # Introspection helpers used by tests.
    # ------------------------------------------------------------------
    def committed_commands(self, node_id: Optional[NetworkAddress] = None) -> List:
        """Commands applied by ``node_id`` (default: any node), in order."""
        node = self.nodes[node_id] if node_id else next(iter(self.nodes.values()))
        machine = node.state_machine
        return list(getattr(machine, "applied_commands", []))

    def logs_consistent(self) -> bool:
        """Whether all running members agree on the committed log prefix."""
        running = [n for n in self.nodes.values() if n.running]
        if len(running) <= 1:
            return True
        min_commit = min(node.commit_index for node in running)
        for index in range(1, min_commit + 1):
            terms = set()
            for node in running:
                term = node.log.term_at(index)
                if term is not None:
                    terms.add(term)
            if len(terms) > 1:
                return False
        return True
