"""A from-scratch Raft consensus implementation on the simulated network.

NotebookOS synchronizes small kernel state and runs its executor election
protocol over a Raft log shared by the three replicas of each distributed
kernel.  This package provides that substrate:

* :mod:`repro.raft.log` — the replicated log and its entries,
* :mod:`repro.raft.messages` — AppendEntries / RequestVote RPC payloads,
* :mod:`repro.raft.state_machine` — the state-machine interface applied
  entries are delivered to,
* :mod:`repro.raft.node` — the Raft node itself (follower / candidate /
  leader roles, election timers, log replication, commitment),
* :mod:`repro.raft.cluster` — a helper that wires N nodes together over the
  simulated network and supports single-server membership changes (used by
  kernel replica migration).
"""

from repro.raft.log import LogEntry, RaftLog
from repro.raft.messages import (
    AppendEntriesRequest,
    AppendEntriesResponse,
    RequestVoteRequest,
    RequestVoteResponse,
)
from repro.raft.node import RaftConfig, RaftNode, Role
from repro.raft.state_machine import KeyValueStateMachine, StateMachine
from repro.raft.cluster import RaftCluster

__all__ = [
    "AppendEntriesRequest",
    "AppendEntriesResponse",
    "KeyValueStateMachine",
    "LogEntry",
    "RaftCluster",
    "RaftConfig",
    "RaftLog",
    "RaftNode",
    "RequestVoteRequest",
    "RequestVoteResponse",
    "Role",
    "StateMachine",
]
