"""Analysis helpers: CDFs, percentiles, and timeline resampling.

These utilities turn the raw measurements produced by the metrics collector
into the series the paper plots — every figure in the evaluation is either a
CDF or a timeline.
"""

from repro.analysis.cdf import CDF, percentile
from repro.analysis.stats import describe, geometric_mean
from repro.analysis.timeline import Timeline, resample

__all__ = [
    "CDF",
    "Timeline",
    "describe",
    "geometric_mean",
    "percentile",
    "resample",
]
