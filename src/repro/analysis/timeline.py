"""Time-series helpers for the timeline figures (Figs. 7, 8, 10, 12, 14, 20)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple


@dataclass
class Timeline:
    """A piecewise-constant time series sampled at irregular instants."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Append a sample; samples must be recorded in time order."""
        if self.points and time < self.points[-1][0]:
            raise ValueError(
                f"timeline {self.name!r}: samples must be time-ordered "
                f"({time} < {self.points[-1][0]})")
        self.points.append((time, value))

    def __len__(self) -> int:
        return len(self.points)

    @property
    def times(self) -> List[float]:
        return [t for t, _ in self.points]

    @property
    def values(self) -> List[float]:
        return [v for _, v in self.points]

    def value_at(self, time: float) -> float:
        """The most recent sample at or before ``time`` (0 if none)."""
        value = 0.0
        for t, v in self.points:
            if t > time:
                break
            value = v
        return value

    def maximum(self) -> float:
        return max(self.values) if self.points else 0.0

    def mean(self) -> float:
        return sum(self.values) / len(self.points) if self.points else 0.0

    def integral(self) -> float:
        """Time-weighted integral (e.g. GPU-seconds from a GPU-count series)."""
        if len(self.points) < 2:
            return 0.0
        total = 0.0
        for (t0, v0), (t1, _v1) in zip(self.points, self.points[1:]):
            total += v0 * (t1 - t0)
        return total

    # ------------------------------------------------------------------
    # JSON round-trip (used by the experiment result store).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"name": self.name, "points": [[t, v] for t, v in self.points]}

    @classmethod
    def from_dict(cls, data: dict) -> "Timeline":
        return cls(name=data["name"],
                   points=[(float(t), float(v)) for t, v in data["points"]])


def resample(timeline: Timeline, start: float, end: float, step: float) -> Timeline:
    """Resample a timeline onto a regular grid (piecewise-constant hold)."""
    if step <= 0:
        raise ValueError("step must be positive")
    if end < start:
        raise ValueError("end must be >= start")
    resampled = Timeline(name=f"{timeline.name}@{step}")
    time = start
    while time <= end + 1e-9:
        resampled.record(time, timeline.value_at(time))
        time += step
    return resampled


def difference(a: Timeline, b: Timeline, grid: Sequence[float],
               op: Callable[[float, float], float] = lambda x, y: x - y) -> Timeline:
    """Pointwise combination of two timelines on a common grid."""
    combined = Timeline(name=f"{a.name}-vs-{b.name}")
    for time in grid:
        combined.record(time, op(a.value_at(time), b.value_at(time)))
    return combined
