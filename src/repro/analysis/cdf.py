"""Empirical CDFs and percentile helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``values`` using linear interpolation."""
    if not values:
        raise ValueError("cannot compute a percentile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass
class CDF:
    """An empirical cumulative distribution function."""

    values: List[float]

    def __post_init__(self) -> None:
        self.values = sorted(self.values)

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "CDF":
        return cls(values=list(values))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def is_empty(self) -> bool:
        return not self.values

    def percentile(self, q: float) -> float:
        return percentile(self.values, q)

    def probability_at_or_below(self, value: float) -> float:
        """P(X <= value)."""
        if not self.values:
            return 0.0
        count = 0
        for sample in self.values:
            if sample <= value:
                count += 1
            else:
                break
        return count / len(self.values)

    def points(self, num_points: int = 100) -> List[Tuple[float, float]]:
        """(value, cumulative probability) pairs suitable for plotting."""
        if not self.values:
            return []
        n = len(self.values)
        if n <= num_points:
            return [(value, (i + 1) / n) for i, value in enumerate(self.values)]
        step = n / num_points
        result = []
        for i in range(num_points):
            index = min(n - 1, int((i + 1) * step) - 1)
            result.append((self.values[index], (index + 1) / n))
        return result

    def summary(self) -> dict:
        """The standard percentile summary used throughout the benchmarks."""
        if not self.values:
            return {"count": 0}
        return {
            "count": len(self.values),
            "min": self.values[0],
            "p25": self.percentile(0.25),
            "p50": self.percentile(0.50),
            "p75": self.percentile(0.75),
            "p90": self.percentile(0.90),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": self.values[-1],
            "mean": sum(self.values) / len(self.values),
        }
