"""Small statistics helpers shared by benchmarks and reports."""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.analysis.cdf import percentile


def describe(values: Sequence[float]) -> Dict[str, float]:
    """Mean / median / min / max / stddev summary of ``values``."""
    if not values:
        return {"count": 0, "mean": 0.0, "median": 0.0, "min": 0.0, "max": 0.0,
                "std": 0.0}
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return {
        "count": len(values),
        "mean": mean,
        "median": percentile(values, 0.5),
        "min": min(values),
        "max": max(values),
        "std": math.sqrt(variance),
    }


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (speedup aggregation)."""
    if not values:
        raise ValueError("geometric mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
