"""GPU devices and the per-host GPU allocator.

NotebookOS performs *dynamic GPU binding* (§3.3): GPUs are exclusively bound
to a kernel replica container only while a cell task is running and are
released as soon as the task completes.  The :class:`GPUAllocator` implements
that exclusive, whole-device allocation and records per-device busy time so
utilization figures (Fig. 2(c), Fig. 14(b)) can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class GPUDevice:
    """A single physical GPU on a host."""

    device_id: int
    host_id: str
    vram_gb: float = 32.0
    allocated_to: Optional[str] = None
    busy_since: Optional[float] = None
    total_busy_time: float = 0.0
    allocation_count: int = 0

    @property
    def is_allocated(self) -> bool:
        return self.allocated_to is not None

    def allocate(self, owner: str, now: float) -> None:
        if self.is_allocated:
            raise RuntimeError(
                f"GPU {self.host_id}/{self.device_id} already allocated to "
                f"{self.allocated_to}")
        self.allocated_to = owner
        self.busy_since = now
        self.allocation_count += 1

    def release(self, now: float) -> float:
        """Release the device; returns the busy interval just ended."""
        if not self.is_allocated:
            raise RuntimeError(
                f"GPU {self.host_id}/{self.device_id} is not allocated")
        started = self.busy_since if self.busy_since is not None else now
        interval = now - started
        self.total_busy_time += interval
        self.allocated_to = None
        self.busy_since = None
        return interval


@dataclass
class GPUAllocator:
    """Exclusive whole-GPU allocation for one host."""

    host_id: str
    devices: List[GPUDevice] = field(default_factory=list)

    @classmethod
    def create(cls, host_id: str, num_gpus: int, vram_gb: float = 32.0) -> "GPUAllocator":
        devices = [GPUDevice(device_id=i, host_id=host_id, vram_gb=vram_gb)
                   for i in range(num_gpus)]
        return cls(host_id=host_id, devices=devices)

    @property
    def num_gpus(self) -> int:
        return len(self.devices)

    @property
    def allocated_count(self) -> int:
        return sum(1 for device in self.devices if device.is_allocated)

    @property
    def idle_count(self) -> int:
        return self.num_gpus - self.allocated_count

    def idle_devices(self) -> List[GPUDevice]:
        return [device for device in self.devices if not device.is_allocated]

    def can_allocate(self, count: int) -> bool:
        return count <= self.idle_count

    def allocate(self, owner: str, count: int, now: float) -> List[int]:
        """Allocate ``count`` idle GPUs to ``owner``; returns device IDs."""
        idle = self.idle_devices()
        if count > len(idle):
            raise RuntimeError(
                f"host {self.host_id} has {len(idle)} idle GPUs, requested {count}")
        chosen = idle[:count]
        for device in chosen:
            device.allocate(owner, now)
        return [device.device_id for device in chosen]

    def release(self, owner: str, now: float) -> int:
        """Release every GPU held by ``owner``; returns the number released."""
        released = 0
        for device in self.devices:
            if device.allocated_to == owner:
                device.release(now)
                released += 1
        return released

    def owners(self) -> Dict[str, List[int]]:
        """Mapping of owner id to the device IDs it currently holds."""
        holding: Dict[str, List[int]] = {}
        for device in self.devices:
            if device.allocated_to is not None:
                holding.setdefault(device.allocated_to, []).append(device.device_id)
        return holding

    def total_busy_time(self, now: Optional[float] = None) -> float:
        """Aggregate GPU-busy seconds across all devices (including in-flight)."""
        total = sum(device.total_busy_time for device in self.devices)
        if now is not None:
            total += sum(now - device.busy_since for device in self.devices
                         if device.busy_since is not None)
        return total
