"""The pluggable distributed data store used for large-object checkpointing.

NotebookOS checkpoints large objects (model parameters, datasets) to a remote
store — AWS S3, Redis, or HDFS — and records only pointers in the Raft log
(§3.2.4).  The store here models per-backend request latency and throughput,
plus the node-level cache the paper mentions for limiting repeated reads.

Figure 11 of the paper (read/write latency CDFs) is reproduced directly from
this model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, List, Optional

from repro.simulation.distributions import SeededRandom
from repro.simulation.engine import Environment

_OBJECT_IDS = count(1)


@dataclass(frozen=True)
class DataStoreBackend:
    """Latency/throughput model of one storage backend."""

    name: str
    base_latency_s: float
    latency_sigma: float
    write_bandwidth_bytes_per_s: float
    read_bandwidth_bytes_per_s: float

    def request_latency(self, rng: SeededRandom) -> float:
        import math

        return max(self.base_latency_s * 0.25,
                   rng.lognormvariate(math.log(self.base_latency_s), self.latency_sigma))


# Backend presets: magnitudes chosen to match the paper's Figure 11 (p99
# read ≈ 3.95 s and p99 write ≈ 7.07 s for multi-hundred-MB objects over S3).
S3_BACKEND = DataStoreBackend(name="s3", base_latency_s=0.060, latency_sigma=0.5,
                              write_bandwidth_bytes_per_s=180e6,
                              read_bandwidth_bytes_per_s=300e6)
REDIS_BACKEND = DataStoreBackend(name="redis", base_latency_s=0.002, latency_sigma=0.4,
                                 write_bandwidth_bytes_per_s=900e6,
                                 read_bandwidth_bytes_per_s=1100e6)
HDFS_BACKEND = DataStoreBackend(name="hdfs", base_latency_s=0.020, latency_sigma=0.5,
                                write_bandwidth_bytes_per_s=400e6,
                                read_bandwidth_bytes_per_s=550e6)

_BACKENDS = {"s3": S3_BACKEND, "redis": REDIS_BACKEND, "hdfs": HDFS_BACKEND}


@dataclass
class StoredObject:
    """Metadata for an object persisted to the data store."""

    key: str
    size_bytes: int
    owner: str
    written_at: float
    object_id: int = field(default_factory=lambda: next(_OBJECT_IDS))
    version: int = 1


@dataclass
class ObjectPointer:
    """A Raft-log-sized pointer to a large object in the data store."""

    key: str
    size_bytes: int
    version: int
    backend: str


class DistributedDataStore:
    """A simulated S3/Redis/HDFS-style object store with a node-level cache."""

    def __init__(self, env: Environment, backend: DataStoreBackend | str = "s3",
                 rng: Optional[SeededRandom] = None,
                 node_cache_capacity_bytes: int = 8 * 1024 ** 3) -> None:
        if isinstance(backend, str):
            try:
                backend = _BACKENDS[backend]
            except KeyError:
                raise ValueError(
                    f"unknown data store backend {backend!r}; "
                    f"choose from {sorted(_BACKENDS)}") from None
        self.env = env
        self.backend = backend
        self._rng = rng or SeededRandom(0xDA7A)
        self._objects: Dict[str, StoredObject] = {}
        # node_id -> {key: size} for the simple per-node cache.
        self._node_caches: Dict[str, Dict[str, int]] = {}
        self._node_cache_capacity = node_cache_capacity_bytes
        self.write_latencies: List[float] = []
        self.read_latencies: List[float] = []
        self.cache_hits = 0
        self.cache_misses = 0
        self.bytes_written = 0
        self.bytes_read = 0

    # ------------------------------------------------------------------
    # Write / read as simulation processes.
    # ------------------------------------------------------------------
    def write(self, key: str, size_bytes: int, owner: str, node_id: Optional[str] = None):
        """Simulation process: persist an object; returns an :class:`ObjectPointer`."""
        start = self.env.now
        latency = self.backend.request_latency(self._rng)
        latency += size_bytes / self.backend.write_bandwidth_bytes_per_s
        yield latency
        existing = self._objects.get(key)
        version = existing.version + 1 if existing else 1
        stored = StoredObject(key=key, size_bytes=size_bytes, owner=owner,
                              written_at=self.env.now, version=version)
        self._objects[key] = stored
        self.bytes_written += size_bytes
        self.write_latencies.append(self.env.now - start)
        if node_id is not None:
            self._cache_put(node_id, key, size_bytes)
        return ObjectPointer(key=key, size_bytes=size_bytes, version=version,
                             backend=self.backend.name)

    def read(self, key: str, node_id: Optional[str] = None):
        """Simulation process: fetch an object; returns its :class:`StoredObject`."""
        start = self.env.now
        stored = self._objects.get(key)
        if stored is None:
            raise KeyError(f"object {key!r} not found in the data store")
        if node_id is not None and self._cache_has(node_id, key):
            self.cache_hits += 1
            yield 0.001
            self.read_latencies.append(self.env.now - start)
            return stored
        self.cache_misses += 1
        latency = self.backend.request_latency(self._rng)
        latency += stored.size_bytes / self.backend.read_bandwidth_bytes_per_s
        yield latency
        self.bytes_read += stored.size_bytes
        self.read_latencies.append(self.env.now - start)
        if node_id is not None:
            self._cache_put(node_id, key, stored.size_bytes)
        return stored

    def delete(self, key: str) -> bool:
        """Remove an object's metadata (no latency modelled)."""
        return self._objects.pop(key, None) is not None

    def contains(self, key: str) -> bool:
        return key in self._objects

    def object_count(self) -> int:
        return len(self._objects)

    def total_stored_bytes(self) -> int:
        return sum(obj.size_bytes for obj in self._objects.values())

    # ------------------------------------------------------------------
    # Node-level cache.
    # ------------------------------------------------------------------
    def _cache_has(self, node_id: str, key: str) -> bool:
        cache = self._node_caches.get(node_id, {})
        stored = self._objects.get(key)
        return key in cache and stored is not None

    def _cache_put(self, node_id: str, key: str, size_bytes: int) -> None:
        cache = self._node_caches.setdefault(node_id, {})
        cache[key] = size_bytes
        # Evict oldest entries when over capacity (insertion-ordered dict).
        while sum(cache.values()) > self._node_cache_capacity and len(cache) > 1:
            oldest = next(iter(cache))
            if oldest == key and len(cache) == 1:
                break
            cache.pop(oldest)

    def invalidate_cache(self, node_id: str) -> None:
        """Drop the cache of a node (e.g. a terminated replica container)."""
        self._node_caches.pop(node_id, None)
