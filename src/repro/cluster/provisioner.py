"""The EC2-style VM provisioner used by scale-out operations (§3.4.2).

Scale-out provisions additional GPU servers "in a platform-dependent manner"
and then waits for the new servers' Local Schedulers to register with the
Global Scheduler.  The provisioner models the dominant cost — VM boot and
registration time — and notifies the platform when a host is ready.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Callable, List, Optional

from repro.cluster.host import Host, HostSpec
from repro.simulation.distributions import SeededRandom
from repro.simulation.engine import Environment

_REQUEST_IDS = count(1)


@dataclass
class ProvisioningRequest:
    """A pending request for one additional GPU server."""

    requested_at: float
    reason: str
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))
    completed_at: Optional[float] = None
    host: Optional[Host] = None

    @property
    def provisioning_time(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.requested_at


class VMProvisioner:
    """Provisions and releases GPU server VMs with realistic boot delays."""

    def __init__(self, env: Environment, host_spec: Optional[HostSpec] = None,
                 boot_time_mean: float = 95.0, boot_time_sigma: float = 0.25,
                 rng: Optional[SeededRandom] = None,
                 host_id_prefix: str = "host") -> None:
        self.env = env
        self.host_spec = host_spec or HostSpec()
        self.boot_time_mean = boot_time_mean
        self.boot_time_sigma = boot_time_sigma
        self._rng = rng or SeededRandom(0xEC2)
        self._host_counter = count(1)
        self._host_id_prefix = host_id_prefix
        self.requests: List[ProvisioningRequest] = []
        self.hosts_provisioned = 0
        self.hosts_released = 0
        self._on_host_ready: List[Callable[[Host, ProvisioningRequest], None]] = []

    def on_host_ready(self, callback: Callable[[Host, ProvisioningRequest], None]) -> None:
        """Register a callback invoked when a provisioned host becomes ready."""
        self._on_host_ready.append(callback)

    def next_host_id(self) -> str:
        return f"{self._host_id_prefix}-{next(self._host_counter)}"

    def provision_immediately(self, count_hosts: int = 1) -> List[Host]:
        """Create hosts with no boot delay (initial cluster construction)."""
        hosts = []
        for _ in range(count_hosts):
            host = Host(host_id=self.next_host_id(), spec=self.host_spec,
                        provisioned_at=self.env.now)
            self.hosts_provisioned += 1
            hosts.append(host)
        return hosts

    def provision(self, reason: str = "scale-out"):
        """Simulation process: boot one new GPU server VM and return the Host."""
        import math

        request = ProvisioningRequest(requested_at=self.env.now, reason=reason)
        self.requests.append(request)
        boot_time = max(20.0, self._rng.lognormvariate(
            math.log(self.boot_time_mean), self.boot_time_sigma))
        yield boot_time
        host = Host(host_id=self.next_host_id(), spec=self.host_spec,
                    provisioned_at=self.env.now)
        request.completed_at = self.env.now
        request.host = host
        self.hosts_provisioned += 1
        for callback in self._on_host_ready:
            callback(host, request)
        return host

    def release(self, host: Host) -> None:
        """Release (decommission) an idle host."""
        host.decommission(self.env.now)
        self.hosts_released += 1

    def mean_provisioning_time(self) -> Optional[float]:
        times = [r.provisioning_time for r in self.requests
                 if r.provisioning_time is not None]
        if not times:
            return None
        return sum(times) / len(times)
