"""Resource requests and pools.

A :class:`ResourceRequest` mirrors the *resource request* argument of the
``StartKernelReplica`` RPC described in §3.2.1 of the paper: millicpus,
memory in megabytes, whole GPUs, and VRAM in gigabytes.  A
:class:`ResourcePool` tracks how much of each dimension a host has committed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceRequest:
    """A user-specified resource requirement for a kernel's IDLT tasks."""

    millicpus: int = 1000
    memory_mb: int = 4096
    gpus: int = 1
    vram_gb: float = 16.0

    def __post_init__(self) -> None:
        if self.millicpus < 0 or self.memory_mb < 0 or self.gpus < 0 or self.vram_gb < 0:
            raise ValueError(f"resource quantities must be non-negative: {self}")

    @property
    def vcpus(self) -> float:
        """The request expressed in whole vCPUs."""
        return self.millicpus / 1000.0

    def scaled(self, factor: float) -> "ResourceRequest":
        """A proportionally scaled copy (used by fractional billing)."""
        return ResourceRequest(millicpus=int(self.millicpus * factor),
                               memory_mb=int(self.memory_mb * factor),
                               gpus=int(self.gpus * factor),
                               vram_gb=self.vram_gb * factor)

    def add(self, other: "ResourceRequest") -> "ResourceRequest":
        return ResourceRequest(millicpus=self.millicpus + other.millicpus,
                               memory_mb=self.memory_mb + other.memory_mb,
                               gpus=self.gpus + other.gpus,
                               vram_gb=self.vram_gb + other.vram_gb)

    def fits_within(self, other: "ResourceRequest") -> bool:
        """Whether this request fits inside ``other`` on every dimension."""
        return (self.millicpus <= other.millicpus
                and self.memory_mb <= other.memory_mb
                and self.gpus <= other.gpus
                and self.vram_gb <= other.vram_gb)


class InsufficientResourcesError(RuntimeError):
    """Raised when a pool cannot satisfy a commit request."""


class ResourcePool:
    """Tracks committed resources against a fixed capacity."""

    def __init__(self, capacity: ResourceRequest) -> None:
        self.capacity = capacity
        self._committed = ResourceRequest(millicpus=0, memory_mb=0, gpus=0, vram_gb=0.0)

    @property
    def committed(self) -> ResourceRequest:
        """Resources currently committed (exclusively allocated)."""
        return self._committed

    @property
    def available(self) -> ResourceRequest:
        """Resources still available for exclusive commitment."""
        return ResourceRequest(
            millicpus=self.capacity.millicpus - self._committed.millicpus,
            memory_mb=self.capacity.memory_mb - self._committed.memory_mb,
            gpus=self.capacity.gpus - self._committed.gpus,
            vram_gb=self.capacity.vram_gb - self._committed.vram_gb)

    def can_commit(self, request: ResourceRequest) -> bool:
        """Whether ``request`` can be exclusively committed right now."""
        return request.fits_within(self.available)

    def commit(self, request: ResourceRequest) -> None:
        """Exclusively commit ``request``; raises if capacity is insufficient."""
        if not self.can_commit(request):
            raise InsufficientResourcesError(
                f"cannot commit {request} with only {self.available} available")
        self._committed = self._committed.add(request)

    def release(self, request: ResourceRequest) -> None:
        """Release a previously committed ``request``."""
        released = ResourceRequest(
            millicpus=self._committed.millicpus - request.millicpus,
            memory_mb=self._committed.memory_mb - request.memory_mb,
            gpus=self._committed.gpus - request.gpus,
            vram_gb=self._committed.vram_gb - request.vram_gb)
        if (released.millicpus < 0 or released.memory_mb < 0
                or released.gpus < 0 or released.vram_gb < -1e-9):
            raise ValueError(
                f"release of {request} exceeds committed resources {self._committed}")
        self._committed = ResourceRequest(millicpus=released.millicpus,
                                          memory_mb=released.memory_mb,
                                          gpus=released.gpus,
                                          vram_gb=max(0.0, released.vram_gb))

    def utilization(self) -> dict:
        """Per-dimension committed/capacity ratios (0 when capacity is 0)."""
        def ratio(used: float, cap: float) -> float:
            return used / cap if cap else 0.0
        return {
            "cpus": ratio(self._committed.millicpus, self.capacity.millicpus),
            "memory": ratio(self._committed.memory_mb, self.capacity.memory_mb),
            "gpus": ratio(self._committed.gpus, self.capacity.gpus),
            "vram": ratio(self._committed.vram_gb, self.capacity.vram_gb),
        }
