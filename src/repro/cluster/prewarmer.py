"""The pre-warmed container pool (Container Prewarmer, §3.2.3).

The Global Scheduler consults the prewarmer during kernel replica migrations
(and, under the LCP baseline, on every cell submission) to avoid on-demand
container cold starts.  Both the *initial pool* policy and the *maintenance*
policy are pluggable, mirroring the paper; the default keeps a fixed minimum
number of warm containers per host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.container import Container, ContainerRuntime
from repro.cluster.resources import ResourceRequest
from repro.simulation.engine import Environment


@dataclass
class PrewarmPolicy:
    """Sizing policy for the pre-warmed container pool."""

    initial_per_host: int = 1
    min_per_host: int = 1
    max_per_host: int = 4
    replenish_interval: float = 30.0

    def validate(self) -> None:
        if self.initial_per_host < 0 or self.min_per_host < 0:
            raise ValueError("pool sizes must be non-negative")
        if self.max_per_host < self.min_per_host:
            raise ValueError("max_per_host must be >= min_per_host")


class ContainerPrewarmer:
    """Maintains pools of pre-warmed containers, one pool per host."""

    def __init__(self, env: Environment, policy: Optional[PrewarmPolicy] = None,
                 default_resources: Optional[ResourceRequest] = None) -> None:
        self.env = env
        self.policy = policy or PrewarmPolicy()
        self.policy.validate()
        self.default_resources = default_resources or ResourceRequest()
        self._runtimes: Dict[str, ContainerRuntime] = {}
        self._pools: Dict[str, List[Container]] = {}
        self.hits = 0
        self.misses = 0
        # Monotonic change counter bumped on every pool mutation (host
        # registration, take, put_back, a warm container landing) so cached
        # warm-pool lookups (LCP's _find_host) can guard on it.
        self.version = 0
        self._maintenance_process = None

    # ------------------------------------------------------------------
    # Host management.
    # ------------------------------------------------------------------
    def register_host(self, host_id: str, runtime: ContainerRuntime) -> None:
        """Track ``host_id`` and pre-warm its initial pool."""
        self._runtimes[host_id] = runtime
        self._pools.setdefault(host_id, [])
        self.version += 1
        for _ in range(self.policy.initial_per_host):
            self.env.process(self._warm_one(host_id),
                             name=f"prewarm:{host_id}")

    def unregister_host(self, host_id: str) -> None:
        self._runtimes.pop(host_id, None)
        self._pools.pop(host_id, None)
        self.version += 1

    def start_maintenance(self) -> None:
        """Start the periodic pool replenishment loop."""
        if self._maintenance_process is None:
            self._maintenance_process = self.env.process(
                self._maintenance_loop(), name="prewarmer-maintenance")

    # ------------------------------------------------------------------
    # Pool operations.
    # ------------------------------------------------------------------
    def available(self, host_id: str) -> int:
        """Number of warm containers ready on ``host_id``."""
        return len(self._pools.get(host_id, []))

    def total_available(self) -> int:
        return sum(len(pool) for pool in self._pools.values())

    def take(self, host_id: str) -> Optional[Container]:
        """Take a warm container from ``host_id``'s pool, if any."""
        pool = self._pools.get(host_id)
        if pool:
            self.hits += 1
            self.version += 1
            return pool.pop(0)
        self.misses += 1
        return None

    def put_back(self, host_id: str, container: Container) -> None:
        """Return a container to the warm pool (used by the LCP baseline)."""
        if container.is_running:
            container.release_to_pool()
        pool = self._pools.setdefault(host_id, [])
        if len(pool) < self.policy.max_per_host:
            pool.append(container)
            self.version += 1
        else:
            runtime = self._runtimes.get(host_id)
            if runtime is not None:
                self.env.process(runtime.terminate(container))

    # ------------------------------------------------------------------
    # Internal warming machinery.
    # ------------------------------------------------------------------
    def _warm_one(self, host_id: str):
        runtime = self._runtimes.get(host_id)
        if runtime is None:
            return None
        container = yield from runtime.provision(
            self.default_resources, prewarmed=False)
        pool = self._pools.get(host_id)
        if pool is None:
            # Host vanished while warming; discard the container.
            yield from runtime.terminate(container)
            return None
        if len(pool) < self.policy.max_per_host:
            pool.append(container)
            self.version += 1
        return container

    def _maintenance_loop(self):
        while True:
            yield self.policy.replenish_interval
            for host_id in list(self._runtimes):
                deficit = self.policy.min_per_host - self.available(host_id)
                for _ in range(max(0, deficit)):
                    self.env.process(self._warm_one(host_id))
