"""Cluster substrate: GPU servers, containers, storage, and provisioning.

This package models the physical/virtual infrastructure NotebookOS runs on:

* :mod:`repro.cluster.resources` — resource requests and pools (millicpus,
  memory, GPUs, VRAM), matching the units in §3.2.1 of the paper;
* :mod:`repro.cluster.gpu` — individual GPU devices and per-host allocators;
* :mod:`repro.cluster.host` — an 8-GPU server with committed and subscribed
  resource accounting (the *subscription ratio* of §3.4.1);
* :mod:`repro.cluster.index` — incrementally maintained host orderings
  (placement rank, idle set, idle-GPU histogram) kept current by the
  ``Host -> ClusterState`` delta hooks, so scheduling decisions are
  O(log n + k) instead of full-cluster sorts;
* :mod:`repro.cluster.container` — kernel-replica containers with cold/warm
  start latency models;
* :mod:`repro.cluster.prewarmer` — the pre-warmed container pool used to hide
  migration and provisioning overhead (§3.2.3);
* :mod:`repro.cluster.datastore` — the pluggable distributed data store
  (S3 / Redis / HDFS latency models) used for large-object checkpointing;
* :mod:`repro.cluster.provisioner` — the EC2-style VM provisioner used by
  scale-out operations (§3.4.2).
"""

from repro.cluster.resources import ResourcePool, ResourceRequest
from repro.cluster.gpu import GPUAllocator, GPUDevice
from repro.cluster.host import Host, HostSpec
from repro.cluster.index import HostIndex, rank_key
from repro.cluster.container import (
    Container,
    ContainerLatencyModel,
    ContainerRuntime,
    ContainerState,
)
from repro.cluster.prewarmer import ContainerPrewarmer, PrewarmPolicy
from repro.cluster.datastore import (
    DataStoreBackend,
    DistributedDataStore,
    HDFS_BACKEND,
    REDIS_BACKEND,
    S3_BACKEND,
    StoredObject,
)
from repro.cluster.provisioner import ProvisioningRequest, VMProvisioner

__all__ = [
    "Container",
    "ContainerLatencyModel",
    "ContainerPrewarmer",
    "ContainerRuntime",
    "ContainerState",
    "DataStoreBackend",
    "DistributedDataStore",
    "GPUAllocator",
    "GPUDevice",
    "HDFS_BACKEND",
    "Host",
    "HostIndex",
    "HostSpec",
    "PrewarmPolicy",
    "ProvisioningRequest",
    "REDIS_BACKEND",
    "ResourcePool",
    "ResourceRequest",
    "S3_BACKEND",
    "StoredObject",
    "VMProvisioner",
    "rank_key",
]
