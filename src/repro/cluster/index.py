"""Incrementally maintained host orderings for O(log n) placement queries.

:class:`HostIndex` keeps three views of the *active* hosts of a cluster, all
updated through the same ``Host -> ClusterState`` delta hooks that already
feed the O(1) cluster aggregates:

* **rank order** — hosts sorted by the :class:`LeastLoadedPlacement` rank key
  ``(committed_training_gpus, -idle_gpus, subscribed_gpus, host_id)``.  The
  key contains the host id, so keys are unique and the order is exactly the
  order ``sorted(active_hosts, key=rank)`` would produce — placement queries
  that walk this list in order and stop after ``k`` viable hosts select the
  *same hosts* as a full sort, bit for bit;
* **idle order** — hosts with no actively training replica (``Host.is_idle``),
  kept in cluster-insertion order.  This reproduces the order of the previous
  ``[h for h in cluster.hosts.values() if h.is_active and h.is_idle]`` scan
  (dicts preserve insertion order), which scale-in depends on;
* **idle-GPU histogram** — a count of active hosts per idle-GPU count, so
  "does any host have >= g idle GPUs?" is answerable without touching the
  host list at all.  Migration targeting and the Batch/LCP host-acquisition
  wait loops use it to skip scans that cannot succeed.

Updates use :mod:`bisect` on parallel key/host lists: O(log n) to locate plus
a C-level ``memmove`` to splice — microseconds at 1000 hosts, far below the
cost of the O(n log n) Python-key sorts the index replaces.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cluster.host import Host

RankKey = Tuple[int, int, int, str]


def rank_key(host: Host) -> RankKey:
    """The least-loaded placement rank key (see LeastLoadedPlacement._rank)."""
    return (host.committed_training_gpus, -host.idle_gpus,
            host.subscribed_gpus, host.host_id)


class HostIndex:
    """Rank-ordered, idle-ordered, and idle-GPU-bucketed views of a cluster."""

    __slots__ = ("_rank_keys", "_rank_hosts", "_entry_keys",
                 "_idle_serials", "_idle_hosts", "_idle_serial_of",
                 "_next_serial", "_idle_gpu_hist")

    def __init__(self) -> None:
        # Parallel lists sorted by rank key; _entry_keys remembers the key a
        # host is currently filed under so a stale entry can be located after
        # the host's counters have already changed.
        self._rank_keys: List[RankKey] = []
        self._rank_hosts: List[Host] = []
        self._entry_keys: Dict[str, RankKey] = {}
        # Parallel lists of is_idle hosts sorted by cluster-insertion serial.
        self._idle_serials: List[int] = []
        self._idle_hosts: List[Host] = []
        self._idle_serial_of: Dict[str, int] = {}
        self._next_serial = 0
        # idle-GPU count -> number of active hosts with exactly that count.
        self._idle_gpu_hist: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._rank_hosts)

    def __contains__(self, host_id: str) -> bool:
        return host_id in self._entry_keys

    # ------------------------------------------------------------------
    # Membership.
    # ------------------------------------------------------------------
    def add(self, host: Host) -> None:
        """Index an active host (idempotent)."""
        host_id = host.host_id
        if host_id in self._entry_keys:
            self.reindex(host)
            return
        key = rank_key(host)
        self._entry_keys[host_id] = key
        position = bisect_left(self._rank_keys, key)
        self._rank_keys.insert(position, key)
        self._rank_hosts.insert(position, host)
        serial = self._next_serial
        self._next_serial = serial + 1
        self._idle_serial_of[host_id] = serial
        if host.is_idle:
            # New hosts carry the largest serial so far: append, stays sorted.
            self._idle_serials.append(serial)
            self._idle_hosts.append(host)
        hist = self._idle_gpu_hist
        idle = host.idle_gpus
        hist[idle] = hist.get(idle, 0) + 1

    def discard(self, host: Host) -> None:
        """Drop a host from every view (idempotent)."""
        host_id = host.host_id
        key = self._entry_keys.pop(host_id, None)
        if key is None:
            return
        position = bisect_left(self._rank_keys, key)
        del self._rank_keys[position]
        del self._rank_hosts[position]
        serial = self._idle_serial_of.pop(host_id)
        idle_position = bisect_left(self._idle_serials, serial)
        if idle_position < len(self._idle_serials) \
                and self._idle_serials[idle_position] == serial:
            del self._idle_serials[idle_position]
            del self._idle_hosts[idle_position]
        idle = -key[1]
        hist = self._idle_gpu_hist
        remaining = hist[idle] - 1
        if remaining:
            hist[idle] = remaining
        else:
            del hist[idle]

    def reindex(self, host: Host) -> None:
        """Re-file a host whose counters changed (no-op if not indexed)."""
        host_id = host.host_id
        old_key = self._entry_keys.get(host_id)
        if old_key is None:
            return
        new_key = rank_key(host)
        if new_key != old_key:
            position = bisect_left(self._rank_keys, old_key)
            del self._rank_keys[position]
            del self._rank_hosts[position]
            position = bisect_left(self._rank_keys, new_key)
            self._rank_keys.insert(position, new_key)
            self._rank_hosts.insert(position, host)
            self._entry_keys[host_id] = new_key
            old_idle, new_idle = -old_key[1], -new_key[1]
            if new_idle != old_idle:
                hist = self._idle_gpu_hist
                remaining = hist[old_idle] - 1
                if remaining:
                    hist[old_idle] = remaining
                else:
                    del hist[old_idle]
                hist[new_idle] = hist.get(new_idle, 0) + 1
        # is_idle (no active training) can flip even when the rank key does
        # not change back to a previously seen value, so check it directly.
        serial = self._idle_serial_of[host_id]
        position = bisect_left(self._idle_serials, serial)
        indexed_idle = (position < len(self._idle_serials)
                        and self._idle_serials[position] == serial)
        if host.is_idle:
            if not indexed_idle:
                self._idle_serials.insert(position, serial)
                self._idle_hosts.insert(position, host)
        elif indexed_idle:
            del self._idle_serials[position]
            del self._idle_hosts[position]

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def iter_ranked(self) -> Iterator[Host]:
        """Active hosts in least-loaded rank order (do not mutate while
        iterating)."""
        return iter(self._rank_hosts)

    def idle_hosts(self) -> List[Host]:
        """Active hosts with no actively training replica, in cluster-
        insertion order (matches the order of a host-dict scan)."""
        return list(self._idle_hosts)

    @property
    def idle_host_count(self) -> int:
        return len(self._idle_hosts)

    def hosts_with_idle_gpus(self, min_idle: int) -> int:
        """Number of active hosts with at least ``min_idle`` idle GPUs."""
        if min_idle <= 0:
            return len(self._rank_hosts)
        return sum(count for idle, count in self._idle_gpu_hist.items()
                   if idle >= min_idle)

    def most_idle_host(self, min_idle: int) -> Optional[Host]:
        """The host maximizing ``(idle_gpus, host_id)`` with at least
        ``min_idle`` idle GPUs (the Batch baseline's FCFS rank), or None.

        Walks the rank order, which within a committed-GPU tier is sorted by
        idle GPUs *descending* — but committed tiers come first, so this is a
        full scan in the worst case; the histogram check above short-circuits
        the hopeless (fully loaded) case, which dominates the wait loops.
        """
        best: Optional[Host] = None
        if not self.hosts_with_idle_gpus(min_idle):
            return None
        for host in self._rank_hosts:
            idle = host.idle_gpus
            if idle < min_idle:
                continue
            if best is None or (idle, host.host_id) > (best.idle_gpus, best.host_id):
                best = host
        return best

    # ------------------------------------------------------------------
    # Invariant checking (tests).
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Assert every view matches a from-scratch rebuild (test helper)."""
        expected = sorted(((rank_key(h), h) for h in self._rank_hosts),
                          key=lambda kv: kv[0])
        assert self._rank_keys == [k for k, _ in expected], \
            "rank keys out of order or stale"
        assert self._rank_hosts == [h for _, h in expected], \
            "rank hosts out of order"
        for key, host in zip(self._rank_keys, self._rank_hosts):
            assert key == rank_key(host), f"stale key for {host.host_id}"
        assert self._idle_serials == sorted(self._idle_serials)
        expected_idle = [h for h in sorted(
            self._rank_hosts, key=lambda h: self._idle_serial_of[h.host_id])
            if h.is_idle]
        assert self._idle_hosts == expected_idle, "idle view out of sync"
        hist: Dict[int, int] = {}
        for host in self._rank_hosts:
            hist[host.idle_gpus] = hist.get(host.idle_gpus, 0) + 1
        assert hist == self._idle_gpu_hist, "idle-GPU histogram out of sync"
