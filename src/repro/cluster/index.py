"""Incrementally maintained host orderings for O(log n) placement queries.

:class:`HostIndex` keeps three views of the *active* hosts of a cluster, all
updated through the same ``Host -> ClusterState`` delta hooks that already
feed the O(1) cluster aggregates:

* **rank order** — hosts sorted by the :class:`LeastLoadedPlacement` rank key
  ``(committed_training_gpus, -idle_gpus, subscribed_gpus, host_id)``.  The
  key contains the host id, so keys are unique and the order is exactly the
  order ``sorted(active_hosts, key=rank)`` would produce — placement queries
  that walk this list in order and stop after ``k`` viable hosts select the
  *same hosts* as a full sort, bit for bit;
* **idle order** — hosts with no actively training replica (``Host.is_idle``),
  kept in cluster-insertion order.  This reproduces the order of the previous
  ``[h for h in cluster.hosts.values() if h.is_active and h.is_idle]`` scan
  (dicts preserve insertion order), which scale-in depends on;
* **idle-GPU buckets** — for every idle-GPU count, the sorted host ids of
  the active hosts with exactly that count.  "Does any host have >= g idle
  GPUs?" is answerable without touching the host list at all (migration
  targeting and the Batch/LCP host-acquisition wait loops use it to skip
  scans that cannot succeed), and when a host *does* qualify the walk
  starts at the best qualifying bucket — O(buckets + answer), not the
  O(n) full-rank-list fallback scan it replaced.  The number of distinct
  idle counts is bounded by the GPU capacities in play (≤ 9 buckets for a
  homogeneous 8-GPU fleet), so bucket bookkeeping is effectively constant.

Updates use :mod:`bisect` on parallel key/host lists: O(log n) to locate plus
a C-level ``memmove`` to splice — microseconds at 1000 hosts, far below the
cost of the O(n log n) Python-key sorts the index replaces.

``reindex`` — the hottest mutation (every committed/subscribed GPU delta
lands here) — short-circuits the *zero-delta* case: when the new rank key
equals the old and the idle flag did not flip, it returns after one key
compare and one set-membership check, touching no list and running no
bisect.  Idle-view membership is tracked in a set so the per-reindex flip
check is O(1); the serial list is bisected only on an actual flip.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cluster.host import Host

RankKey = Tuple[int, int, int, str]


def rank_key(host: Host) -> RankKey:
    """The least-loaded placement rank key (see LeastLoadedPlacement._rank)."""
    return (host.committed_training_gpus, -host.idle_gpus,
            host.subscribed_gpus, host.host_id)


class HostIndex:
    """Rank-ordered, idle-ordered, and idle-GPU-bucketed views of a cluster."""

    __slots__ = ("_rank_keys", "_rank_hosts", "_entry_keys",
                 "_idle_serials", "_idle_hosts", "_idle_serial_of",
                 "_idle_ids", "_next_serial", "_idle_buckets",
                 "_hosts_by_id", "version")

    def __init__(self) -> None:
        #: Monotonic change counter.  Every mutation entry point (``add``,
        #: ``discard``, ``reindex``) bumps it unconditionally — the counter
        #: may over-approximate change (a reindex that lands on the same
        #: rank key still bumps), never under-approximate it, which is the
        #: contract the :class:`repro.core.runstate.DecisionCache` guards
        #: rely on.  Placement-relevant cluster mutations all funnel through
        #: these three methods via the ``Host -> ClusterState`` delta hooks.
        self.version = 0
        # Parallel lists sorted by rank key; _entry_keys remembers the key a
        # host is currently filed under so a stale entry can be located after
        # the host's counters have already changed.
        self._rank_keys: List[RankKey] = []
        self._rank_hosts: List[Host] = []
        self._entry_keys: Dict[str, RankKey] = {}
        # Parallel lists of is_idle hosts sorted by cluster-insertion serial,
        # plus a membership set so the per-reindex flip check is O(1).
        self._idle_serials: List[int] = []
        self._idle_hosts: List[Host] = []
        self._idle_serial_of: Dict[str, int] = {}
        self._idle_ids: set = set()
        self._next_serial = 0
        # idle-GPU count -> sorted host ids with exactly that count.
        self._idle_buckets: Dict[int, List[str]] = {}
        self._hosts_by_id: Dict[str, Host] = {}

    def __len__(self) -> int:
        return len(self._rank_hosts)

    def __contains__(self, host_id: str) -> bool:
        return host_id in self._entry_keys

    # ------------------------------------------------------------------
    # Membership.
    # ------------------------------------------------------------------
    def add(self, host: Host) -> None:
        """Index an active host (idempotent)."""
        self.version += 1
        host_id = host.host_id
        if host_id in self._entry_keys:
            self.reindex(host)
            return
        key = rank_key(host)
        self._entry_keys[host_id] = key
        position = bisect_left(self._rank_keys, key)
        self._rank_keys.insert(position, key)
        self._rank_hosts.insert(position, host)
        serial = self._next_serial
        self._next_serial = serial + 1
        self._idle_serial_of[host_id] = serial
        if host.is_idle:
            # New hosts carry the largest serial so far: append, stays sorted.
            self._idle_serials.append(serial)
            self._idle_hosts.append(host)
            self._idle_ids.add(host_id)
        self._hosts_by_id[host_id] = host
        bucket = self._idle_buckets.setdefault(host.idle_gpus, [])
        insort(bucket, host_id)

    def discard(self, host: Host) -> None:
        """Drop a host from every view (idempotent)."""
        self.version += 1
        host_id = host.host_id
        key = self._entry_keys.pop(host_id, None)
        if key is None:
            return
        position = bisect_left(self._rank_keys, key)
        del self._rank_keys[position]
        del self._rank_hosts[position]
        serial = self._idle_serial_of.pop(host_id)
        if host_id in self._idle_ids:
            self._idle_ids.discard(host_id)
            idle_position = bisect_left(self._idle_serials, serial)
            del self._idle_serials[idle_position]
            del self._idle_hosts[idle_position]
        del self._hosts_by_id[host_id]
        self._bucket_remove(-key[1], host_id)

    def reindex(self, host: Host) -> None:
        """Re-file a host whose counters changed (no-op if not indexed).

        A *zero-delta* reindex — same rank key, same idle flag — is O(1):
        one key compare plus a set-membership check, no bisect, no list
        touched (the version still bumps; see the contract above).  A key
        move bisects to relocate and splices with ``del`` + ``insert``
        (C-level memmoves); the idle flip check is served by the membership
        set, bisecting the serial list only when the flag actually flipped.
        Both paths file the host exactly where a from-scratch
        ``sorted(..., key=rank_key)`` would (the hypothesis differentials in
        tests/test_placement_index.py pin this against a scan rebuild).
        """
        self.version += 1
        host_id = host.host_id
        old_key = self._entry_keys.get(host_id)
        if old_key is None:
            return
        new_key = rank_key(host)
        # is_idle (no active training) can flip even when the rank key does
        # not change back to a previously seen value, so track it separately.
        indexed_idle = host_id in self._idle_ids
        is_idle = host.is_idle
        if new_key == old_key:
            if is_idle == indexed_idle:
                return  # zero-delta: nothing moved, nothing flipped.
        else:
            keys = self._rank_keys
            hosts = self._rank_hosts
            position = bisect_left(keys, old_key)
            del keys[position]
            del hosts[position]
            position = bisect_left(keys, new_key)
            keys.insert(position, new_key)
            hosts.insert(position, host)
            self._entry_keys[host_id] = new_key
            old_idle, new_idle = -old_key[1], -new_key[1]
            if new_idle != old_idle:
                self._bucket_remove(old_idle, host_id)
                insort(self._idle_buckets.setdefault(new_idle, []), host_id)
        if is_idle:
            if not indexed_idle:
                serial = self._idle_serial_of[host_id]
                position = bisect_left(self._idle_serials, serial)
                self._idle_serials.insert(position, serial)
                self._idle_hosts.insert(position, host)
                self._idle_ids.add(host_id)
        elif indexed_idle:
            serial = self._idle_serial_of[host_id]
            position = bisect_left(self._idle_serials, serial)
            del self._idle_serials[position]
            del self._idle_hosts[position]
            self._idle_ids.discard(host_id)

    def _bucket_remove(self, idle: int, host_id: str) -> None:
        bucket = self._idle_buckets[idle]
        if len(bucket) == 1:
            del self._idle_buckets[idle]
        else:
            del bucket[bisect_left(bucket, host_id)]

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def iter_ranked(self) -> Iterator[Host]:
        """Active hosts in least-loaded rank order (do not mutate while
        iterating)."""
        return iter(self._rank_hosts)

    def idle_hosts(self) -> List[Host]:
        """Active hosts with no actively training replica, in cluster-
        insertion order (matches the order of a host-dict scan)."""
        return list(self._idle_hosts)

    @property
    def idle_host_count(self) -> int:
        return len(self._idle_hosts)

    def hosts_with_idle_gpus(self, min_idle: int) -> int:
        """Number of active hosts with at least ``min_idle`` idle GPUs."""
        if min_idle <= 0:
            return len(self._rank_hosts)
        return sum(len(bucket) for idle, bucket in self._idle_buckets.items()
                   if idle >= min_idle)

    def idle_gpu_histogram(self) -> Dict[int, int]:
        """``{idle_gpu_count: active hosts with exactly that count}``.

        Sorted by idle count so serializations are deterministic; the shard
        barrier exchange ships this per epoch to build the merged global
        cluster view without serializing any host objects.
        """
        return {idle: len(bucket)
                for idle, bucket in sorted(self._idle_buckets.items())}

    def most_idle_host(self, min_idle: int) -> Optional[Host]:
        """The host maximizing ``(idle_gpus, host_id)`` with at least
        ``min_idle`` idle GPUs (the Batch baseline's FCFS rank), or None.

        Served straight from the idle-GPU buckets: the best qualifying
        bucket is the maximum over a handful of distinct idle counts, and
        the winner within it is the bucket's last (largest) host id —
        O(buckets), never a host-list scan.  The selection is identical to
        ``max(qualifying_hosts, key=lambda h: (h.idle_gpus, h.host_id))``.
        """
        best_idle = -1
        for idle in self._idle_buckets:
            if idle >= min_idle and idle > best_idle:
                best_idle = idle
        if best_idle < 0:
            return None
        return self._hosts_by_id[self._idle_buckets[best_idle][-1]]

    def iter_hosts_by_idle_desc(self, min_idle: int) -> Iterator[Host]:
        """Hosts with at least ``min_idle`` idle GPUs, best bucket first.

        Yields in ``(idle_gpus descending, host_id ascending)`` order — the
        enumeration order of the sort-based scans the LCP baseline replaced,
        restricted to the qualifying buckets so a wait-loop probe touches
        only hosts that can actually serve the request.  Do not mutate the
        index while iterating.
        """
        hosts_by_id = self._hosts_by_id
        for idle in sorted(self._idle_buckets, reverse=True):
            if idle < min_idle:
                break
            for host_id in self._idle_buckets[idle]:
                yield hosts_by_id[host_id]

    # ------------------------------------------------------------------
    # Invariant checking (tests).
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Assert every view matches a from-scratch rebuild (test helper)."""
        expected = sorted(((rank_key(h), h) for h in self._rank_hosts),
                          key=lambda kv: kv[0])
        assert self._rank_keys == [k for k, _ in expected], \
            "rank keys out of order or stale"
        assert self._rank_hosts == [h for _, h in expected], \
            "rank hosts out of order"
        for key, host in zip(self._rank_keys, self._rank_hosts):
            assert key == rank_key(host), f"stale key for {host.host_id}"
        assert self._idle_serials == sorted(self._idle_serials)
        expected_idle = [h for h in sorted(
            self._rank_hosts, key=lambda h: self._idle_serial_of[h.host_id])
            if h.is_idle]
        assert self._idle_hosts == expected_idle, "idle view out of sync"
        assert self._idle_ids == {h.host_id for h in self._idle_hosts}, \
            "idle membership set out of sync"
        buckets: Dict[int, List[str]] = {}
        for host in self._rank_hosts:
            buckets.setdefault(host.idle_gpus, []).append(host.host_id)
        assert {idle: sorted(ids) for idle, ids in buckets.items()} == \
            self._idle_buckets, "idle-GPU buckets out of sync"
        assert self._hosts_by_id == \
            {h.host_id: h for h in self._rank_hosts}, "host map out of sync"
