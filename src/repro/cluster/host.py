"""GPU server hosts.

A :class:`Host` is one GPU server (the paper's evaluation uses 8-GPU EC2 VMs,
matching the Adobe research cluster's ``p3.16xlarge`` instances).  Hosts track
two distinct kinds of accounting:

* **committed** resources — exclusively allocated, e.g. GPUs bound during an
  active cell execution, or an entire reservation under the Reservation
  baseline;
* **subscribed** GPUs — the sum of the GPU requests of every kernel replica
  scheduled on the host, whether or not those replicas are currently
  executing.  The ratio of subscribed GPUs to physical GPUs (adjusted by the
  kernel replication factor) is the *subscription ratio* of §3.4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cluster.gpu import GPUAllocator
from repro.cluster.resources import ResourcePool, ResourceRequest


@dataclass(frozen=True)
class HostSpec:
    """Hardware shape and pricing of one GPU server."""

    num_gpus: int = 8
    millicpus: int = 64_000
    memory_mb: int = 488_000
    vram_per_gpu_gb: float = 32.0
    hourly_cost_usd: float = 24.48  # on-demand p3.16xlarge-equivalent rate

    def capacity(self) -> ResourceRequest:
        return ResourceRequest(millicpus=self.millicpus, memory_mb=self.memory_mb,
                               gpus=self.num_gpus,
                               vram_gb=self.vram_per_gpu_gb * self.num_gpus)


@dataclass
class Host:
    """One GPU server in the NotebookOS cluster."""

    host_id: str
    spec: HostSpec = field(default_factory=HostSpec)
    provisioned_at: float = 0.0
    decommissioned_at: Optional[float] = None

    def __post_init__(self) -> None:
        self.gpus = GPUAllocator.create(self.host_id, self.spec.num_gpus,
                                        vram_gb=self.spec.vram_per_gpu_gb)
        self.pool = ResourcePool(self.spec.capacity())
        # kernel_id -> GPUs subscribed by the replica of that kernel on this host.
        self._subscriptions: Dict[str, int] = {}
        # kernel_id -> GPUs actively committed to a running training task.
        self._active_trainings: Dict[str, int] = {}
        # Running totals of the two dicts above plus the GPU allocator, kept
        # exact (same integers a scan would sum) so the placement rank key
        # reads three ints instead of summing dicts and scanning devices.
        self._subscribed_total = 0
        self._committed_total = 0
        self._allocated_gpus = 0
        self.containers: Dict[str, object] = {}
        # Monotonic change counter bumped by every mutator that can affect a
        # placement/election read of this host (subscribe, unsubscribe,
        # bind_gpus, release_gpus, decommission).  May over-approximate
        # change — a zero-GPU release still bumps — never under-approximate;
        # decision-cache guards (repro.core.runstate) snapshot it.
        self.version = 0
        # The ClusterState this host reports aggregate deltas to (set via
        # attach_cluster); lets the metrics sampler read cluster totals in
        # O(1) instead of re-scanning every host each interval, and keeps the
        # cluster's placement HostIndex positioned as this host's counters
        # change.
        self._cluster = None

    def attach_cluster(self, cluster) -> None:
        """Register the ClusterState that receives this host's deltas."""
        self._cluster = cluster

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        return self.decommissioned_at is None

    def decommission(self, now: float) -> None:
        if self.decommissioned_at is None:
            self.version += 1
            if self._cluster is not None:
                # Must fire while still marked active, before the timestamp
                # flips is_active, so the cluster subtracts exactly what this
                # host was contributing.
                self._cluster._host_deactivated(self)
            self.decommissioned_at = now

    # ------------------------------------------------------------------
    # Subscription accounting (oversubscription support).
    # ------------------------------------------------------------------
    @property
    def subscribed_gpus(self) -> int:
        """Total GPUs requested by kernel replicas scheduled on this host."""
        return self._subscribed_total

    def subscribe(self, kernel_id: str, gpus: int) -> None:
        """Record that a replica of ``kernel_id`` subscribes ``gpus`` GPUs."""
        self._subscriptions[kernel_id] = self._subscriptions.get(kernel_id, 0) + gpus
        self._subscribed_total += gpus
        self.version += 1
        if self._cluster is not None and self.decommissioned_at is None:
            self._cluster._subscribed_delta(gpus, self)

    def unsubscribe(self, kernel_id: str) -> None:
        """Remove the subscription of ``kernel_id`` (replica removed)."""
        removed = self._subscriptions.pop(kernel_id, 0)
        self._subscribed_total -= removed
        self.version += 1
        if removed and self._cluster is not None and self.decommissioned_at is None:
            self._cluster._subscribed_delta(-removed, self)

    def has_subscription(self, kernel_id: str) -> bool:
        return kernel_id in self._subscriptions

    def subscription_ratio(self, replication_factor: int) -> float:
        """S / (G * R) as defined in §3.4.1 of the paper."""
        if self.spec.num_gpus == 0 or replication_factor == 0:
            return 0.0
        return self.subscribed_gpus / (self.spec.num_gpus * replication_factor)

    # ------------------------------------------------------------------
    # Active-training / GPU-binding accounting.
    # ------------------------------------------------------------------
    @property
    def idle_gpus(self) -> int:
        return self.spec.num_gpus - self._allocated_gpus

    @property
    def allocated_gpus(self) -> int:
        return self._allocated_gpus

    @property
    def active_training_count(self) -> int:
        return len(self._active_trainings)

    @property
    def committed_training_gpus(self) -> int:
        """GPUs currently bound to actively executing kernel replicas."""
        return self._committed_total

    def can_bind_gpus(self, count: int) -> bool:
        return count <= self.spec.num_gpus - self._allocated_gpus

    def bind_gpus(self, kernel_id: str, count: int, now: float) -> list[int]:
        """Exclusively bind ``count`` GPUs to ``kernel_id`` for a cell task."""
        device_ids = self.gpus.allocate(kernel_id, count, now)
        self._allocated_gpus += len(device_ids)
        self.version += 1
        previous = self._active_trainings.get(kernel_id, 0)
        self._active_trainings[kernel_id] = count
        self._committed_total += count - previous
        if self._cluster is not None and self.decommissioned_at is None:
            self._cluster._committed_delta(count - previous, self)
        return device_ids

    def release_gpus(self, kernel_id: str, now: float) -> int:
        """Release all GPUs bound to ``kernel_id``."""
        released = self.gpus.release(kernel_id, now)
        self._allocated_gpus -= released
        self.version += 1
        entry = self._active_trainings.pop(kernel_id, None)
        removed = entry or 0
        self._committed_total -= removed
        # Fire whenever anything observable changed — devices released
        # (idle_gpus ranks the host) or a training entry dropped (even a
        # zero-GPU one flips is_idle) — so the cluster index stays current.
        if (released or entry is not None) and self._cluster is not None \
                and self.decommissioned_at is None:
            self._cluster._committed_delta(-removed, self)
        return released

    @property
    def is_idle(self) -> bool:
        """Idle means no replica on this host is actively training."""
        return not self._active_trainings

    # ------------------------------------------------------------------
    # Container registry.
    # ------------------------------------------------------------------
    def register_container(self, container_id: str, container: object) -> None:
        self.containers[container_id] = container

    def unregister_container(self, container_id: str) -> None:
        self.containers.pop(container_id, None)

    @property
    def container_count(self) -> int:
        return len(self.containers)

    # ------------------------------------------------------------------
    # Cost and utilization helpers.
    # ------------------------------------------------------------------
    def uptime(self, now: float) -> float:
        end = self.decommissioned_at if self.decommissioned_at is not None else now
        return max(0.0, end - self.provisioned_at)

    def cost(self, now: float) -> float:
        """Provider-side cost of keeping this host provisioned until ``now``."""
        return self.uptime(now) / 3600.0 * self.spec.hourly_cost_usd

    def gpu_utilization(self, now: float) -> float:
        """Fraction of GPU-time actually used since the host was provisioned."""
        uptime = self.uptime(now)
        if uptime <= 0 or self.spec.num_gpus == 0:
            return 0.0
        busy = self.gpus.total_busy_time(now if self.is_active else self.decommissioned_at)
        return busy / (uptime * self.spec.num_gpus)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Host {self.host_id} gpus={self.allocated_gpus}/{self.spec.num_gpus} "
                f"subscribed={self.subscribed_gpus} containers={self.container_count}>")
