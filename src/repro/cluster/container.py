"""Kernel-replica containers and their provisioning latency model.

The paper's baselines differ primarily in *when* they pay container
provisioning costs: Reservation pays once per session, Batch pays a cold
start on every submission, NotebookOS pays three cold starts at kernel
creation but keeps a small pre-warmed pool for migrations, and LCP serves
requests from a large shared warm pool.  :class:`ContainerLatencyModel`
captures those costs; :class:`ContainerRuntime` is the per-host runtime that
provisions and terminates containers (the role Docker plays in the real
system).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Dict, Optional

from repro.simulation.distributions import SeededRandom
from repro.simulation.engine import Environment
from repro.cluster.resources import ResourceRequest

_CONTAINER_IDS = count(1)


class ContainerState(enum.Enum):
    """Lifecycle states of a kernel replica container."""

    PROVISIONING = "provisioning"
    WARM = "warm"          # pre-warmed, no kernel assigned yet
    RUNNING = "running"    # hosting a kernel replica
    TERMINATED = "terminated"


@dataclass
class ContainerLatencyModel:
    """Provisioning latency parameters (seconds).

    Defaults follow the magnitudes reported for containerized notebook
    platforms: pulling images and initializing a Python runtime with the DL
    stack dominates cold starts, while warm starts only pay process start and
    registration.
    """

    cold_start_mean: float = 35.0
    cold_start_sigma: float = 0.35
    warm_start_mean: float = 1.2
    warm_start_sigma: float = 0.3
    termination_time: float = 0.5
    registration_time: float = 0.25

    def cold_start(self, rng: SeededRandom) -> float:
        return max(5.0, rng.lognormvariate(_mu(self.cold_start_mean), self.cold_start_sigma))

    def warm_start(self, rng: SeededRandom) -> float:
        return max(0.1, rng.lognormvariate(_mu(self.warm_start_mean), self.warm_start_sigma))


def _mu(median: float) -> float:
    import math

    return math.log(median)


@dataclass
class Container:
    """A container that can host one kernel replica."""

    host_id: str
    resources: ResourceRequest
    container_id: str = field(default_factory=lambda: f"container-{next(_CONTAINER_IDS)}")
    state: ContainerState = ContainerState.PROVISIONING
    kernel_id: Optional[str] = None
    replica_id: Optional[str] = None
    created_at: float = 0.0
    started_at: Optional[float] = None
    terminated_at: Optional[float] = None
    was_prewarmed: bool = False

    @property
    def is_running(self) -> bool:
        return self.state == ContainerState.RUNNING

    @property
    def is_warm(self) -> bool:
        return self.state == ContainerState.WARM

    def assign(self, kernel_id: str, replica_id: str) -> None:
        """Assign a kernel replica to this container."""
        if self.state not in (ContainerState.WARM, ContainerState.PROVISIONING):
            raise RuntimeError(f"cannot assign kernel to container in state {self.state}")
        self.kernel_id = kernel_id
        self.replica_id = replica_id
        self.state = ContainerState.RUNNING

    def release_to_pool(self) -> None:
        """Return the container to the warm pool (LCP policy behaviour)."""
        if self.state != ContainerState.RUNNING:
            raise RuntimeError(f"cannot release container in state {self.state}")
        self.kernel_id = None
        self.replica_id = None
        self.state = ContainerState.WARM

    def terminate(self, now: float) -> None:
        self.state = ContainerState.TERMINATED
        self.terminated_at = now

    def lifetime(self, now: float) -> float:
        end = self.terminated_at if self.terminated_at is not None else now
        return max(0.0, end - self.created_at)


class ContainerRuntime:
    """Per-host container runtime (the simulated Docker daemon).

    Provisioning is a simulation process: callers ``yield`` the returned
    process to wait for the container to become available.  Cold and warm
    starts draw from :class:`ContainerLatencyModel`.
    """

    def __init__(self, env: Environment, host_id: str,
                 latency_model: Optional[ContainerLatencyModel] = None,
                 rng: Optional[SeededRandom] = None) -> None:
        self.env = env
        self.host_id = host_id
        self.latency_model = latency_model or ContainerLatencyModel()
        self._rng = rng or SeededRandom(hash(host_id) & 0x7FFFFFFF)
        self.containers: Dict[str, Container] = {}
        self.cold_starts = 0
        self.warm_starts = 0
        self.terminations = 0

    def begin_provision(self, resources: ResourceRequest,
                        prewarmed: bool = False) -> tuple[Container, float]:
        """Synchronous first half of :meth:`provision`.

        Creates and registers the container, draws the start latency from
        this runtime's rng stream, and returns ``(container, wait)`` where
        ``wait`` is the seconds until :meth:`finish_provision` may run.
        Split out so the batched multi-replica start path can begin several
        provisions in one pass and sleep through their waits with single
        scheduled wake-ups.
        """
        container = Container(host_id=self.host_id, resources=resources,
                              created_at=self.env.now, was_prewarmed=prewarmed)
        self.containers[container.container_id] = container
        if prewarmed:
            delay = self.latency_model.warm_start(self._rng)
            self.warm_starts += 1
        else:
            delay = self.latency_model.cold_start(self._rng)
            self.cold_starts += 1
        return container, delay + self.latency_model.registration_time

    def finish_provision(self, container: Container) -> Container:
        """Synchronous second half of :meth:`provision` (post-wait)."""
        if container.state == ContainerState.PROVISIONING:
            container.state = ContainerState.WARM
        container.started_at = self.env.now
        return container

    def provision(self, resources: ResourceRequest, prewarmed: bool = False):
        """Simulation process: provision a container and return it."""
        container, wait = self.begin_provision(resources, prewarmed=prewarmed)
        yield wait
        return self.finish_provision(container)

    def finish_terminate(self, container: Container) -> Container:
        """Synchronous second half of :meth:`terminate` (post-wait)."""
        container.terminate(self.env.now)
        self.containers.pop(container.container_id, None)
        self.terminations += 1
        return container

    def terminate(self, container: Container):
        """Simulation process: terminate a container."""
        yield self.latency_model.termination_time
        return self.finish_terminate(container)

    @property
    def running_containers(self) -> list[Container]:
        return [c for c in self.containers.values() if c.is_running]

    @property
    def warm_containers(self) -> list[Container]:
        return [c for c in self.containers.values() if c.is_warm]
