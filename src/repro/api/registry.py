"""The pluggable scheduling-policy registry.

Policies declare themselves with :func:`register_policy` instead of being
hard-wired into ``core/platform.py``::

    from repro.api import register_policy
    from repro.policies import SchedulingPolicy

    @register_policy("my-policy", aliases=("mine",),
                     description="always pick host-0")
    class MyPolicy(SchedulingPolicy):
        name = "my-policy"
        ...

Every entry point that accepts a policy *name* — ``repro.api.Simulation``,
the ``repro.experiments`` sweeps and CLI, the benchmarks, and the deprecated
``run_experiment`` shim — resolves it through the default registry, so a
registered policy is immediately runnable everywhere (including by name in a
:class:`~repro.api.RunSpec`, provided the registration is importable in
worker processes).

A registration captures the policy's *capabilities* — the attributes the
platform consults when wiring a run (whether the auto-scaler runs, the
kernel replication factor) — and the factory's tunable keyword arguments, so
tooling can introspect the policy surface without instantiating anything.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "DuplicatePolicyError",
    "PolicyCapabilities",
    "PolicyRegistry",
    "RegisteredPolicy",
    "UnknownPolicyError",
    "default_policy_registry",
    "register_policy",
]


class UnknownPolicyError(KeyError):
    """Raised when a policy name resolves to nothing."""


class DuplicatePolicyError(ValueError):
    """Raised when a name or alias is registered twice without ``replace``."""


@dataclass(frozen=True)
class PolicyCapabilities:
    """The declared platform-facing behaviour of a policy."""

    uses_autoscaler: bool = False
    replication_factor: int = 1


@dataclass(frozen=True)
class RegisteredPolicy:
    """One registry entry: name, factory, capabilities, tunable knobs."""

    name: str
    factory: Callable[..., object]
    aliases: Tuple[str, ...] = ()
    description: str = ""
    capabilities: PolicyCapabilities = PolicyCapabilities()
    config_fields: Tuple[str, ...] = ()

    def create(self, **kwargs) -> object:
        """Instantiate the policy with factory keyword arguments."""
        return self.factory(**kwargs)


def _capabilities_of(factory: Callable[..., object]) -> PolicyCapabilities:
    return PolicyCapabilities(
        uses_autoscaler=bool(getattr(factory, "uses_autoscaler", False)),
        replication_factor=int(getattr(factory, "replication_factor", 1)))


def _config_fields_of(factory: Callable[..., object]) -> Tuple[str, ...]:
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # builtins / C factories
        return ()
    return tuple(name for name, parameter in signature.parameters.items()
                 if name != "self" and parameter.kind in
                 (parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY))


class PolicyRegistry:
    """Case-insensitive name/alias -> :class:`RegisteredPolicy` lookup."""

    def __init__(self) -> None:
        self._entries: Dict[str, RegisteredPolicy] = {}
        self._lookup: Dict[str, RegisteredPolicy] = {}

    # ------------------------------------------------------------------
    # Registration.
    # ------------------------------------------------------------------
    def register(self, name: str, factory: Callable[..., object],
                 aliases: Tuple[str, ...] = (), description: str = "",
                 replace: bool = False) -> RegisteredPolicy:
        entry = RegisteredPolicy(
            name=name.lower(), factory=factory,
            aliases=tuple(alias.lower() for alias in aliases),
            description=description or (inspect.getdoc(factory) or "").split("\n")[0],
            capabilities=_capabilities_of(factory),
            config_fields=_config_fields_of(factory))
        claimed = (entry.name,) + entry.aliases
        if not replace:
            for key in claimed:
                if key in self._lookup:
                    raise DuplicatePolicyError(
                        f"policy name {key!r} is already registered to "
                        f"{self._lookup[key].name!r}; pass replace=True to "
                        f"override")
        previous = self._entries.pop(entry.name, None)
        if previous is not None:
            # Release only the keys still pointing at the replaced entry: an
            # alias it once claimed may have been legitimately re-registered
            # to another policy since (via an earlier replace=True).
            for key in (previous.name,) + previous.aliases:
                if self._lookup.get(key) is previous:
                    del self._lookup[key]
        self._entries[entry.name] = entry
        for key in claimed:
            self._lookup[key] = entry
        return entry

    def decorator(self, name: str, aliases: Tuple[str, ...] = (),
                  description: str = "", replace: bool = False):
        """``@registry.decorator("name")`` — register a policy class."""
        def register(factory):
            self.register(name, factory, aliases=aliases,
                          description=description, replace=replace)
            return factory
        return register

    # ------------------------------------------------------------------
    # Resolution.
    # ------------------------------------------------------------------
    def get(self, name: str) -> RegisteredPolicy:
        try:
            return self._lookup[name.lower()]
        except KeyError:
            raise UnknownPolicyError(
                f"unknown policy {name!r}; choose from "
                f"{sorted(self._entries)}") from None
        except AttributeError:
            raise TypeError(f"policy name must be a string, got {name!r}") from None

    def create(self, name: str, **kwargs) -> object:
        """Instantiate a policy by name or alias."""
        return self.get(name).create(**kwargs)

    def resolve(self, policy, **kwargs) -> object:
        """Turn a name *or* an already constructed policy into an instance."""
        if isinstance(policy, str):
            return self.create(policy, **kwargs)
        if kwargs:
            raise TypeError("policy kwargs are only valid with a policy name, "
                            f"not an instance ({policy!r})")
        return policy

    def names(self) -> List[str]:
        """Primary registered names (aliases excluded), sorted."""
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return isinstance(name, str) and name.lower() in self._lookup

    def __iter__(self) -> Iterator[RegisteredPolicy]:
        return iter(self._entries[name] for name in self.names())

    def __len__(self) -> int:
        return len(self._entries)


# ----------------------------------------------------------------------
# The default (process-wide) registry.
# ----------------------------------------------------------------------
_DEFAULT_REGISTRY = PolicyRegistry()


def default_policy_registry() -> PolicyRegistry:
    """The process-wide registry, with the built-in policies registered.

    Importing :mod:`repro.policies` is what registers the built-ins (each
    policy class carries a :func:`register_policy` decoration), so this
    accessor imports it on every call — cheap after the first — before
    handing the registry out.
    """
    import repro.policies  # noqa: F401  - registration side effect

    return _DEFAULT_REGISTRY


def register_policy(name: str, aliases: Tuple[str, ...] = (),
                    description: str = "", replace: bool = False,
                    registry: Optional[PolicyRegistry] = None):
    """Class decorator registering a scheduling policy under ``name``.

    ``aliases`` are extra lookup names; ``replace=True`` allows overriding an
    existing registration (e.g. experiment-local variants).  By default the
    registration lands in the process-wide registry used by every entry
    point.
    """
    target = registry if registry is not None else _DEFAULT_REGISTRY
    return target.decorator(name, aliases=aliases, description=description,
                            replace=replace)
