"""The ``Simulation`` builder: one façade over every way to run the platform.

Before this façade existed there were three parallel entry points —
``repro.run_experiment`` (ad-hoc trace + kwargs), ``repro.experiments``
(specs, sweeps, the result store), and hand-assembled
``NotebookOSPlatform`` wiring in the examples and benchmarks.  ``Simulation``
unifies them::

    from repro.api import Simulation

    # A registered scenario, optionally tweaked:
    result = Simulation.from_scenario("excerpt", policy="batch", seed=9).run()

    # An explicit trace with explicit configs (what the examples do):
    sim = (Simulation.from_trace(trace)
           .with_policy("notebookos")
           .with_config(cluster_config=ClusterConfig(initial_hosts=3)))
    result = sim.run()
    print(sim.platform.cluster.active_host_count)   # inspect afterwards

    # Instrumented via lifecycle hooks (zero timeline impact):
    result = (Simulation.from_scenario("smoke")
              .on(api.MIGRATION, lambda t, k, src, dst: print(k, src, dst))
              .run())

``run()`` reproduces the legacy entry points *bit for bit*: the trace
generation, config resolution, seed override, and platform wiring happen in
exactly the order ``run_experiment`` / ``experiments.runner`` performed
them, which the golden-digest and API-regression tests pin.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, Optional, Union

from repro.api.hooks import HookBus
from repro.api.registry import default_policy_registry
from repro.api.spec import RunSpec
from repro.core.config import ClusterConfig, PlatformConfig
from repro.workload.trace import Trace

__all__ = ["Simulation", "default_cluster_config", "peak_gpu_demand"]


def peak_gpu_demand(trace: Trace) -> int:
    """Peak GPUs reserved by concurrently active sessions (min 8)."""
    events = []
    for session in trace:
        events.append((session.start_time, session.gpus_requested))
        events.append((session.end_time, -session.gpus_requested))
    peak = current = 0
    for _, delta in sorted(events):
        current += delta
        peak = max(peak, current)
    return max(peak, 8)


def default_cluster_config(policy, trace: Trace) -> ClusterConfig:
    """Per-policy default cluster sizing (the ``run_experiment`` defaults).

    Elastic policies (NotebookOS, LCP) start small and rely on auto-scaling;
    Reservation and Batch get a cluster sized to the trace's peak demand,
    mirroring the statically provisioned clusters those baselines represent.
    """
    peak_gpus = peak_gpu_demand(trace)
    gpus_per_host = 8
    if getattr(policy, "uses_autoscaler", False):
        initial = max(2, (peak_gpus // gpus_per_host) // 4 + 1)
    else:
        initial = max(2, peak_gpus // gpus_per_host + 2)
    return ClusterConfig(initial_hosts=initial, max_hosts=max(60, initial * 4))


class Simulation:
    """Fluent builder for one platform run (spec-backed or ad-hoc trace)."""

    def __init__(self, spec: Optional[RunSpec] = None,
                 trace: Optional[Trace] = None) -> None:
        if (spec is None) == (trace is None):
            raise ValueError("construct via Simulation.from_scenario(), "
                             ".from_spec(), or .from_trace()")
        # Own a copy: the fluent setters rebind spec fields (policy, seed,
        # preset) and must not mutate a spec object the caller still holds.
        self._spec = RunSpec.from_dict(spec.to_dict()) if spec is not None \
            else None
        self._trace = trace
        self._policy_obj = None
        self._policy_name: Optional[str] = None if spec is None else spec.policy
        self._policy_kwargs: Dict[str, object] = \
            {} if spec is None else dict(spec.policy_kwargs)
        self._seed: Optional[int] = None if spec is None else spec.seed
        self._platform_config: Optional[PlatformConfig] = None
        self._cluster_config: Optional[ClusterConfig] = None
        self._hooks: Optional[HookBus] = None
        self._profiler = None
        self._telemetry = None
        self._sketch_mode = False
        self._sketch_compression = 300
        self._policy_batching: Optional[bool] = None
        self._qos: Optional[Dict[str, object]] = None
        self._store = None
        #: The wired platform of the most recent ``run()`` / ``build()`` —
        #: ``None`` until then, and still ``None`` after a ``run()`` that was
        #: served from the result store (check :attr:`cached`): a cache hit
        #: deserializes the result without simulating anything.
        self.platform = None
        #: Whether the most recent ``run()`` was served from the store.
        self.cached = False

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------
    @classmethod
    def from_scenario(cls, scenario: str, policy: Optional[str] = None,
                      seed: Optional[int] = None,
                      **generator_overrides) -> "Simulation":
        """Start from a registered scenario (``smoke``, ``excerpt``, ...)."""
        return cls(spec=RunSpec.from_scenario(scenario, policy=policy,
                                              seed=seed, **generator_overrides))

    @classmethod
    def from_spec(cls, spec) -> "Simulation":
        """Start from a :class:`RunSpec` / ``ScenarioSpec`` / spec dict."""
        return cls(spec=RunSpec.from_spec(spec))

    @classmethod
    def from_trace(cls, trace: Trace) -> "Simulation":
        """Start from an explicit, already generated workload trace."""
        return cls(trace=trace)

    # ------------------------------------------------------------------
    # Fluent configuration.
    # ------------------------------------------------------------------
    def with_policy(self, policy: Union[str, object],
                    **policy_kwargs) -> "Simulation":
        """Select the scheduling policy, by registry name or as an instance.

        A *name* keeps the run spec-backed (hashable, storable) — including
        any constructor ``policy_kwargs``, which are recorded on the spec
        (``RunSpec.policy_kwargs``) and folded into its content hash, so
        tuned policy variants cache and sweep like any other spec.  Passing
        an *instance* makes the run ad hoc.
        """
        if isinstance(policy, str):
            # Validate now, and canonicalize to the registered primary name
            # so aliases and case variants share one spec hash (store key).
            registered = default_policy_registry().get(policy)
            self._policy_obj = None
            self._policy_name = registered.name
            self._policy_kwargs = dict(policy_kwargs)
            if self._spec is not None:
                self._spec.policy = registered.name
                self._spec.policy_kwargs = dict(policy_kwargs)
        else:
            if policy_kwargs:
                raise TypeError("policy kwargs are only valid with a policy "
                                "name, not an instance")
            self._policy_obj = policy
            self._policy_name = None
            self._policy_kwargs = {}
            if self._spec is not None:
                # Keep the spec's provenance honest: record the instance's
                # declared name (the run is no longer storable either way).
                self._spec.policy = getattr(policy, "name",
                                            type(policy).__name__)
                self._spec.policy_kwargs = {}
        return self

    def with_seed(self, seed: int) -> "Simulation":
        """Set the platform seed (and the spec seed, for spec-backed runs)."""
        self._seed = seed
        if self._spec is not None:
            self._spec.seed = seed
        return self

    def with_config(self, platform_config: Optional[PlatformConfig] = None,
                    cluster_config: Optional[ClusterConfig] = None,
                    preset: Optional[str] = None) -> "Simulation":
        """Override the platform / cluster configuration.

        ``preset`` selects a registered config preset by name (spec-backed
        runs only — presets are resolved against the spec); explicit config
        objects win over the preset and over per-policy defaults.
        """
        if platform_config is not None:
            self._platform_config = platform_config
        if cluster_config is not None:
            self._cluster_config = cluster_config
        if preset is not None:
            if self._spec is None:
                raise ValueError("config presets require a spec-backed run; "
                                 "pass explicit config objects for trace runs")
            self._spec.config_preset = preset
        return self

    def with_hooks(self, hooks: HookBus) -> "Simulation":
        """Attach a pre-populated lifecycle :class:`HookBus`.

        Call this *before* any :meth:`on` — replacing a bus that ``on``
        already subscribed callbacks to would silently drop them, so that
        ordering is rejected.
        """
        if self._hooks is not None:
            raise ValueError("a hook bus is already attached (from an "
                             "earlier .on() or .with_hooks()); call "
                             ".with_hooks() first and .on() after, or "
                             "subscribe directly on the attached bus")
        self._hooks = hooks
        return self

    def on(self, topic: str, callback: Callable[..., None]) -> "Simulation":
        """Subscribe one lifecycle hook (creates the bus on first use)."""
        if self._hooks is None:
            self._hooks = HookBus()
        self._hooks.subscribe(topic, callback)
        return self

    def with_profiler(self, profiler) -> "Simulation":
        """Attach a :class:`repro.profiling.Profiler` to this run.

        The profiler subscribes its counters to the run's hook bus
        (created on first use) and this builder additionally measures the
        ``trace_build`` and ``platform_build`` phases around :meth:`run`'s
        setup work.  Profiled runs always execute (like any
        hook-instrumented run) and stay bit-identical to bare ones.
        """
        if self._hooks is None:
            self._hooks = HookBus()
        profiler.attach(self._hooks)
        self._profiler = profiler
        return self

    def with_telemetry(self, telemetry=None, **kwargs) -> "Simulation":
        """Attach a :class:`repro.telemetry.Telemetry` to this run.

        Pass an existing attachment (to share streams/reports across
        several builders) or keyword arguments (``window_s``, ``quantiles``,
        ``spans``, ...) to construct one here; it is available afterwards as
        :attr:`telemetry`.  Telemetry rides the hook bus like the profiler:
        the run stays bit-identical to a bare one and instrumented runs
        always execute rather than being served from a store.
        """
        from repro.telemetry import Telemetry

        if telemetry is None:
            telemetry = Telemetry(**kwargs)
        elif kwargs:
            raise TypeError("pass either a Telemetry instance or "
                            "constructor kwargs, not both")
        if self._hooks is None:
            self._hooks = HookBus()
        telemetry.attach(self._hooks)
        self._telemetry = telemetry
        return self

    @property
    def telemetry(self):
        """The attached :class:`~repro.telemetry.Telemetry`, if any."""
        return self._telemetry

    def with_sketch_metrics(self, compression: int = 300) -> "Simulation":
        """Run the metrics collector in fixed-memory sketch mode.

        Interactivity/TCT fold into quantile sketches instead of the
        unbounded per-task list (see ``MetricsCollector``); applied as a
        config override on a copy of the resolved platform config, so
        presets and explicit configs compose.  Sketch-mode results
        serialize differently from exact ones, so the run is not served
        from (or saved to) a result store.
        """
        self._sketch_mode = True
        self._sketch_compression = int(compression)
        return self

    def with_policy_batching(self, enabled: bool = True) -> "Simulation":
        """Toggle the batched/cached policy-decision path (default on).

        Disabling routes every policy decision through the frozen per-task
        reference implementation (see :mod:`repro.core.runstate`).  Results
        are bit-identical either way — the differential tests pin it — so
        this exists for A/B benchmarking and verification, not for
        behavioral control.  Applied as a config override on a copy of the
        resolved platform config, like sketch mode; because the flag is not
        part of the spec hash, an explicit override makes the run ad hoc
        (not store-served).
        """
        self._policy_batching = bool(enabled)
        return self

    def with_qos(self, *targets, window_s: float = 300.0) -> "Simulation":
        """Enable the closed-loop QoS control plane for this run.

        ``targets`` are :class:`~repro.qos.targets.QosTarget` objects, their
        dict forms, or CLI-shorthand strings
        (``"interactivity:p99>120:migrate_hottest"``); alternatively pass a
        single :class:`~repro.qos.targets.QosConfig` (or its dict form).
        ``window_s`` sets the controller's evaluation window.

        The block is recorded on the spec (``RunSpec.qos``) for spec-backed
        runs — it participates in the content hash and sweeps like
        ``policy_kwargs``, so the run stays storable — and applied as a
        config override for ad-hoc trace runs.
        """
        from repro.qos.targets import QosConfig

        if len(targets) == 1 and isinstance(targets[0], QosConfig):
            config = targets[0]
        elif len(targets) == 1 and isinstance(targets[0], dict) \
                and "targets" in targets[0]:
            config = QosConfig.from_dict(targets[0])
        else:
            config = QosConfig.from_specs(targets, window_s=window_s)
        config.validate()
        self._qos = config.to_dict()
        if self._spec is not None:
            self._spec.qos = dict(self._qos)
        return self

    def with_store(self, store) -> "Simulation":
        """Attach a :class:`~repro.experiments.store.ResultStore`.

        Spec-backed, un-instrumented runs are served from the store when
        present and persisted to it when fresh.  Hook-instrumented runs
        always execute (a cache hit would silently skip every callback) but
        still persist their result.  A store-served ``run()`` builds no
        platform — :attr:`platform` stays ``None`` and :attr:`cached` is
        set — so code that inspects the platform afterwards should either
        skip the store or handle the cached case.
        """
        self._store = store
        return self

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def spec(self) -> Optional[RunSpec]:
        """The bound :class:`RunSpec`, or ``None`` for ad-hoc trace runs."""
        return self._spec

    @property
    def storable(self) -> bool:
        """Whether this run is reproducible from its spec alone.

        Policy constructor kwargs do not break storability: they live on
        the spec (``policy_kwargs``) and participate in its content hash.
        """
        return (self._spec is not None and self._policy_obj is None
                and self._platform_config is None
                and self._cluster_config is None
                and not self._sketch_mode
                and self._policy_batching is None)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def _resolve_trace(self) -> Trace:
        if self._trace is not None:
            return self._trace
        from repro.experiments.scenarios import build_trace

        return build_trace(self._spec)

    def build(self, trace: Optional[Trace] = None):
        """Wire (but do not run) the platform; returns it.

        The construction order matches the legacy ``run_experiment`` exactly:
        resolve the policy, resolve configs (preset, then explicit
        overrides), apply the seed to the platform config, size the cluster
        per policy when nothing else chose one.
        """
        from repro.core.platform import NotebookOSPlatform

        if self.platform is not None:
            # The hook bus outlives individual platforms: retire the previous
            # run's collector so it stops recording this run's events.
            self.platform.detach_metrics()
        trace = trace if trace is not None else self._resolve_trace()
        if self._policy_obj is not None:
            policy = self._policy_obj
        else:
            policy = default_policy_registry().create(
                self._policy_name or "notebookos", **self._policy_kwargs)

        platform_config = self._platform_config
        cluster_config = self._cluster_config
        if self._spec is not None and (platform_config is None
                                       or cluster_config is None):
            from repro.experiments.scenarios import resolve_configs

            preset_platform, preset_cluster = resolve_configs(self._spec, trace)
            platform_config = platform_config or preset_platform
            cluster_config = cluster_config or preset_cluster
        platform_config = platform_config or PlatformConfig()
        if self._seed is not None:
            # Seed a shallow copy: the values the platform sees are the same,
            # but a config object the caller still holds (and may share with
            # other runs) is never mutated.
            platform_config = copy.copy(platform_config)
            platform_config.seed = self._seed
        if self._sketch_mode:
            # Same never-mutate-the-caller's-config rule as the seed.
            platform_config = copy.copy(platform_config)
            platform_config.metrics_sketch_mode = True
            platform_config.metrics_sketch_compression = self._sketch_compression
        if self._policy_batching is not None:
            platform_config = copy.copy(platform_config)
            platform_config.policy_batching_enabled = self._policy_batching
        qos_block = self._qos if self._qos is not None else \
            (self._spec.qos if self._spec is not None and self._spec.qos
             else None)
        if qos_block:
            # QoS rides the spec (hash-participating), so like the seed it
            # is applied onto a copy of whatever config the preset or the
            # caller resolved.
            platform_config = copy.copy(platform_config)
            platform_config.qos = dict(qos_block)
        if cluster_config is None:
            cluster_config = default_cluster_config(policy, trace)

        self.platform = NotebookOSPlatform(
            policy, cluster_config=cluster_config,
            platform_config=platform_config, hooks=self._hooks)
        return self.platform

    def run(self, until: Optional[float] = None):
        """Execute the run and return its ExperimentResult.

        Store-served results (and store-persisted fresh results) are
        materialized through the same JSON round-trip the parallel runner
        uses, so a later cache hit is bit-identical to the original run.
        After a cache hit no platform exists to inspect: :attr:`platform`
        is ``None`` and :attr:`cached` is ``True``.
        """
        from repro.metrics.collector import ExperimentResult

        consult_store = (self._store is not None and self.storable
                         and until is None)
        if consult_store and self._hooks is None:
            cached = self._store.load(self._spec)
            if cached is not None:
                self.platform = None
                self.cached = True
                return cached
        self.cached = False

        if self._telemetry is not None:
            # Like the profiler below: a telemetry object shared across
            # builders follows whichever simulation runs (idempotent when
            # it never left this bus).
            self._telemetry.attach(self._hooks)
        profiler = self._profiler
        if profiler is not None:
            # The profiler follows whichever of its simulations runs: a
            # profiler shared across several builders re-attaches to this
            # run's bus (idempotent when it never left).
            profiler.attach(self._hooks)
            with profiler.phase("trace_build"):
                trace = self._resolve_trace()
            with profiler.phase("platform_build"):
                platform = self.build(trace)
        else:
            trace = self._resolve_trace()
            platform = self.build(trace)
        result = platform.run_workload(trace, until=until)
        if consult_store:
            result_dict = result.to_dict()
            self._store.save(self._spec, result_dict)
            return ExperimentResult.from_dict(result_dict)
        return result
