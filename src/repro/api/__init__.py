"""``repro.api`` — the unified simulation façade.

One import surface for everything a user of the platform needs:

* **Building and running simulations** — :class:`Simulation` (the fluent
  builder), :class:`RunSpec` (typed, JSON-round-trippable run descriptions),
  and the sweep machinery re-exported from :mod:`repro.experiments`
  (:class:`SweepGrid`, :func:`run_specs`, :class:`ResultStore`);
* **Pluggable policies** — :func:`register_policy`,
  :class:`PolicyRegistry`, and :func:`default_policy_registry`; anything
  registered is immediately runnable by name from every entry point;
* **Lifecycle hooks** — :class:`HookBus` and the topic constants; custom
  instrumentation and failure injection subscribe to the platform's
  published lifecycle instead of editing core files.

Quickstart::

    from repro import api

    result = api.Simulation.from_scenario("excerpt", policy="notebookos").run()
    print(result.summary())

Extending (see EXPERIMENTS.md, "Extending repro")::

    @api.register_policy("greedy", description="always the first ranked host")
    class GreedyPolicy(SchedulingPolicy):
        ...

    migrations = []
    (api.Simulation.from_scenario("smoke", policy="greedy")
        .on(api.MIGRATION, lambda t, k, src, dst: migrations.append((k, src)))
        .run())

The legacy entry points (``repro.run_experiment``,
``repro.policies.make_policy``) remain as thin deprecated shims over this
façade.

The hook and registry primitives are imported eagerly (they depend on
nothing); the builder, spec, and sweep re-exports resolve lazily (PEP 562)
so that core modules can import :mod:`repro.api.hooks` without dragging the
whole control plane — or a circular import — behind them.
"""

from repro.api.hooks import (
    CHECKPOINT,
    MIGRATION,
    PLACEMENT_DECISION,
    PLATFORM_EVENT,
    QOS_ACTION,
    QOS_BREACH,
    QOS_RECOVER,
    RUN_END,
    RUN_START,
    SCALE_IN,
    SCALE_OUT,
    SESSION_END,
    SESSION_START,
    SPEC_RETRY,
    TASK_COMPLETE,
    TASK_SUBMIT,
    TOPICS,
    WORKER_LOST,
    WORKER_RECOVERED,
    HookBus,
)
from repro.api.registry import (
    DuplicatePolicyError,
    PolicyCapabilities,
    PolicyRegistry,
    RegisteredPolicy,
    UnknownPolicyError,
    default_policy_registry,
    register_policy,
)

__all__ = [
    # hooks
    "CHECKPOINT",
    "MIGRATION",
    "PLACEMENT_DECISION",
    "PLATFORM_EVENT",
    "QOS_ACTION",
    "QOS_BREACH",
    "QOS_RECOVER",
    "RUN_END",
    "RUN_START",
    "SCALE_IN",
    "SCALE_OUT",
    "SESSION_END",
    "SESSION_START",
    "SPEC_RETRY",
    "TASK_COMPLETE",
    "TASK_SUBMIT",
    "TOPICS",
    "WORKER_LOST",
    "WORKER_RECOVERED",
    "HookBus",
    # policies
    "DuplicatePolicyError",
    "PolicyCapabilities",
    "PolicyRegistry",
    "RegisteredPolicy",
    "UnknownPolicyError",
    "default_policy_registry",
    "register_policy",
    # qos
    "QosConfig",
    "QosTarget",
    # runs
    "RunSpec",
    "Simulation",
    "default_cluster_config",
    "peak_gpu_demand",
    # sweeps
    "RunOutcome",
    "SweepExecutionError",
    "ResultStore",
    "Scenario",
    "ScenarioRegistry",
    "SweepGrid",
    "build_trace",
    "default_registry",
    "run_spec",
    "run_specs",
]

_LAZY_EXPORTS = {
    "QosConfig": ("repro.qos.targets", "QosConfig"),
    "QosTarget": ("repro.qos.targets", "QosTarget"),
    "RunSpec": ("repro.api.spec", "RunSpec"),
    "Simulation": ("repro.api.simulation", "Simulation"),
    "default_cluster_config": ("repro.api.simulation", "default_cluster_config"),
    "peak_gpu_demand": ("repro.api.simulation", "peak_gpu_demand"),
    "RunOutcome": ("repro.experiments.runner", "RunOutcome"),
    "SweepExecutionError": ("repro.experiments.runner", "SweepExecutionError"),
    "run_spec": ("repro.experiments.runner", "run_spec"),
    "run_specs": ("repro.experiments.runner", "run_specs"),
    "Scenario": ("repro.experiments.scenarios", "Scenario"),
    "ScenarioRegistry": ("repro.experiments.scenarios", "ScenarioRegistry"),
    "build_trace": ("repro.experiments.scenarios", "build_trace"),
    "default_registry": ("repro.experiments.scenarios", "default_registry"),
    "ResultStore": ("repro.experiments.store", "ResultStore"),
    "SweepGrid": ("repro.experiments.sweep", "SweepGrid"),
}


def __getattr__(name: str):
    """Lazily resolve the builder/spec/sweep exports (PEP 562)."""
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.api' has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
