"""The lifecycle hook bus: pluggable instrumentation without core edits.

A :class:`HookBus` is a synchronous publish/subscribe fan-out for platform
lifecycle events.  The platform (and the components it wires — the Global
Scheduler, the checkpoint manager) publishes every notable occurrence as a
*plain function call*: callbacks run inline, create no simulation events, and
never advance or touch the simulation clock.  That guarantee is what keeps
instrumented runs bit-identical to bare ones — the golden-metrics digests and
the serial-vs-parallel determinism suite pin it.

Subscribers are invoked in subscription order, and the platform always seats
its :class:`~repro.metrics.collector.MetricsCollector` adapter first, so
custom hooks observe a collector that already reflects the event being
published.

Topics and payloads (all positional):

=====================  ====================================================
topic                  payload
=====================  ====================================================
``RUN_START``          ``(platform, trace)``
``RUN_END``            ``(platform, result, stats)`` — ``stats`` is a dict
                       of run-scoped counters (e.g. AST-cache hits/misses)
``SESSION_START``      ``(time, session)`` — the :class:`SessionTrace`
``SESSION_END``        ``(time, session)``
``TASK_SUBMIT``        ``(time, session, task, metrics)``
``TASK_COMPLETE``      ``(time, session, task, metrics)``
``PLACEMENT_DECISION`` ``(time, kernel_id, decision)`` — a
                       :class:`~repro.core.placement.PlacementDecision`
``CHECKPOINT``         ``(time, kernel_id, name, size_bytes)``
``MIGRATION``          ``(time, kernel_id, source_host, target_host)``
``SCALE_OUT``          ``(time, num_hosts, reason)``
``SCALE_IN``           ``(time, num_hosts)``
``PLATFORM_EVENT``     ``(time, kind, detail)`` — every discrete
                       :class:`~repro.metrics.collector.EventKind` record;
                       this is the topic the metrics collector subscribes to
``QOS_BREACH``         ``(time, target, detail)`` — a QoS target entered its
                       breached state (``target`` is the target name,
                       ``detail`` a plain dict; see :mod:`repro.qos`)
``QOS_RECOVER``        ``(time, target, detail)`` — a breached QoS target
                       recovered through its hysteresis band
``QOS_ACTION``         ``(time, target, action, detail)`` — a QoS controller
                       fired a mitigation action
``WORKER_LOST``        ``(time, shard, detail)`` — a supervised shard worker
                       died, hung past its deadline, or corrupted a barrier
                       frame (``time`` is the barrier's *simulated* time;
                       published by the coordinator, see
                       :mod:`repro.resilience`)
``WORKER_RECOVERED``   ``(time, shard, detail)`` — a respawned shard worker
                       finished its deterministic replay and rejoined the
                       barrier protocol
``SPEC_RETRY``         ``(attempt, label, detail)`` — a sweep spec failed
                       and is being retried on the deterministic backoff
                       schedule (published by the sweep runner)
=====================  ====================================================

Example — count migrations without touching core code::

    from repro.api import HookBus, MIGRATION, Simulation

    moved = []
    sim = (Simulation.from_scenario("smoke")
           .on(MIGRATION, lambda t, kernel, src, dst: moved.append(kernel)))
    result = sim.run()
"""

from __future__ import annotations

from typing import Callable, Dict, List

# -- topic names -------------------------------------------------------
RUN_START = "run_start"
RUN_END = "run_end"
SESSION_START = "session_start"
SESSION_END = "session_end"
TASK_SUBMIT = "task_submit"
TASK_COMPLETE = "task_complete"
PLACEMENT_DECISION = "placement_decision"
CHECKPOINT = "checkpoint"
MIGRATION = "migration"
SCALE_OUT = "scale_out"
SCALE_IN = "scale_in"
PLATFORM_EVENT = "platform_event"
QOS_BREACH = "qos_breach"
QOS_RECOVER = "qos_recover"
QOS_ACTION = "qos_action"
WORKER_LOST = "worker_lost"
WORKER_RECOVERED = "worker_recovered"
SPEC_RETRY = "spec_retry"

#: Every topic the platform publishes, in documentation order.
TOPICS = (RUN_START, RUN_END, SESSION_START, SESSION_END, TASK_SUBMIT,
          TASK_COMPLETE, PLACEMENT_DECISION, CHECKPOINT, MIGRATION,
          SCALE_OUT, SCALE_IN, PLATFORM_EVENT, QOS_BREACH, QOS_RECOVER,
          QOS_ACTION, WORKER_LOST, WORKER_RECOVERED, SPEC_RETRY)

HookCallback = Callable[..., None]


class HookBus:
    """Synchronous, ordered publish/subscribe for platform lifecycle events.

    Publishing to a topic with no subscribers costs one dictionary lookup, so
    the platform can publish unconditionally from hot paths.  Callbacks must
    not interact with the simulation environment (no ``env.process``, no
    event creation): the bus adds **zero events to the simulation timeline**
    by construction, and instrumented runs stay bit-identical to bare runs.
    Subscribing or unsubscribing from inside a callback is undefined
    behaviour for the in-flight publish.
    """

    __slots__ = ("_subscribers",)

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[HookCallback]] = {}

    # ------------------------------------------------------------------
    # Subscription.
    # ------------------------------------------------------------------
    def subscribe(self, topic: str, callback: HookCallback,
                  first: bool = False) -> HookCallback:
        """Append ``callback`` to ``topic``'s subscriber list.

        ``first=True`` *prepends* instead — the platform uses it to seat the
        metrics-collector adapter ahead of any hooks subscribed before the
        platform was built.  Returns the callback so the call can be used as
        a decorator::

            @bus.subscribe_to(MIGRATION)  # or: bus.subscribe(MIGRATION, fn)
        """
        if topic not in TOPICS:
            raise ValueError(f"unknown hook topic {topic!r}; choose from "
                             f"{', '.join(TOPICS)}")
        subscribers = self._subscribers.setdefault(topic, [])
        if first:
            subscribers.insert(0, callback)
        else:
            subscribers.append(callback)
        return callback

    def subscribe_to(self, topic: str) -> Callable[[HookCallback], HookCallback]:
        """Decorator form of :meth:`subscribe`."""
        def decorator(callback: HookCallback) -> HookCallback:
            return self.subscribe(topic, callback)
        return decorator

    def unsubscribe(self, topic: str, callback: HookCallback) -> bool:
        """Remove one subscription; returns whether it was present."""
        subscribers = self._subscribers.get(topic)
        if subscribers and callback in subscribers:
            subscribers.remove(callback)
            return True
        return False

    def subscriber_count(self, topic: str) -> int:
        return len(self._subscribers.get(topic, ()))

    # ------------------------------------------------------------------
    # Publishing.
    # ------------------------------------------------------------------
    def publish(self, topic: str, *payload) -> None:
        """Invoke every subscriber of ``topic`` synchronously, in order."""
        subscribers = self._subscribers.get(topic)
        if subscribers:
            for callback in subscribers:
                callback(*payload)
