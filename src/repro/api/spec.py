"""Typed run specifications for the simulation façade.

A :class:`RunSpec` is the one JSON-serializable description of an experiment
run: scenario, trace generator and knobs, policy, seed, and config preset.
It extends :class:`~repro.experiments.scenarios.ScenarioSpec` — the content
hash, dict round-trip, and result-store key are inherited unchanged, so a
``RunSpec`` is accepted everywhere a ``ScenarioSpec`` is (sweeps, the
parallel runner, the result store) — and adds the façade conveniences: JSON
string round-trip, scenario-registry construction, and a one-call ``run()``.

    from repro.api import RunSpec

    spec = RunSpec.from_scenario("excerpt", policy="batch", seed=9)
    print(spec.to_json())
    result = spec.run()
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.experiments.scenarios import ScenarioSpec, default_registry

__all__ = ["RunSpec"]


@dataclass
class RunSpec(ScenarioSpec):
    """A fully bound, hashable, JSON-round-trippable experiment description."""

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    @classmethod
    def from_scenario(cls, scenario: str, policy: Optional[str] = None,
                      seed: Optional[int] = None,
                      policy_kwargs: Optional[dict] = None,
                      qos: Optional[dict] = None,
                      **generator_overrides) -> "RunSpec":
        """Bind a registered scenario's free parameters into a spec.

        ``policy_kwargs`` are constructor knobs for the policy (a tuned
        variant); ``qos`` is a declarative QoS block
        (``QosConfig.to_dict()`` form, see :mod:`repro.qos`).  Both
        round-trip through JSON and the content hash like every other
        spec field.
        """
        bound = default_registry().get(scenario).instantiate(
            policy=policy, seed=seed, policy_kwargs=policy_kwargs, qos=qos,
            **generator_overrides)
        return cls.from_dict(bound.to_dict())

    @classmethod
    def from_spec(cls, spec) -> "RunSpec":
        """Adopt a :class:`ScenarioSpec` (or spec dict) as a ``RunSpec``."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, ScenarioSpec):
            return cls.from_dict(spec.to_dict())
        return cls.from_dict(spec)

    # ------------------------------------------------------------------
    # JSON round-trip.
    # ------------------------------------------------------------------
    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "RunSpec":
        data = json.loads(payload)
        if not isinstance(data, dict):
            raise ValueError(f"RunSpec JSON must decode to an object, "
                             f"got {type(data).__name__}")
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(self, store=None, hooks=None):
        """Run this spec through the façade; returns an ExperimentResult."""
        from repro.api.simulation import Simulation

        simulation = Simulation.from_spec(self)
        if store is not None:
            simulation.with_store(store)
        if hooks is not None:
            simulation.with_hooks(hooks)
        return simulation.run()
