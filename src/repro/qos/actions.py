"""QoS mitigation actions, wired through the platform's existing seams.

An action is a plain callable ``action(platform, target, now, **kwargs) ->
dict`` registered by name.  The returned dict is the action *detail*: it is
published verbatim on the ``QOS_ACTION`` hook topic and accumulated into
``RUN_END stats["qos"]``, so every mitigation the controller takes is
observable without bespoke instrumentation.

Built-in actions (all reach the platform only through public seams —
``GlobalScheduler.migrate_replica``, the autoscaler's override fields, the
admission-throttle attributes consulted by the session processes):

``log``
    No-op: records the breach in the action log and does nothing else.
    The default, and the right choice for pure observability targets.
``migrate_hottest``
    Proactively migrates the kernel with active replicas on the *busiest*
    host (fewest idle GPUs), the same victim-selection rule reactive
    migration uses, via :meth:`GlobalScheduler.migrate_replica`.
``autoscaler_override``
    Temporarily raises the autoscaler's minimum-host floor by
    ``extra_hosts`` and freezes scale-in, both for ``hold_s`` simulated
    seconds.  The override is a pair of plain fields the autoscaler loop
    consults; when inactive the loop's behaviour is bit-identical to a
    build without QoS.
``admission_throttle``
    Defers every task admission for the next ``hold_s`` seconds by
    ``delay_s`` — backpressure at the `RunState.admit` seam, applied in the
    session processes *before* the batched decision warming runs.

Custom actions register with :func:`register_action`::

    from repro.qos.actions import register_action

    @register_action("shed_load")
    def shed_load(platform, target, now, fraction=0.1):
        ...
        return {"shed": fraction}

Determinism contract: an action may create simulation events (QoS is a
*controller*, not an observer — it intentionally changes the timeline when
enabled), but everything it does must be a pure function of platform state
at the moment it runs.  No wall-clock reads, no unseeded randomness, no
iteration over unordered containers without sorting.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

__all__ = ["register_action", "known_actions", "resolve_action"]

ActionFn = Callable[..., dict]

_ACTIONS: Dict[str, ActionFn] = {}


def register_action(name: str) -> Callable[[ActionFn], ActionFn]:
    """Register an action under ``name`` (decorator)."""
    def decorator(fn: ActionFn) -> ActionFn:
        if name in _ACTIONS:
            raise ValueError(f"qos action {name!r} already registered")
        _ACTIONS[name] = fn
        return fn
    return decorator


def known_actions() -> Tuple[str, ...]:
    return tuple(sorted(_ACTIONS))


def resolve_action(name: str) -> ActionFn:
    try:
        return _ACTIONS[name]
    except KeyError:
        raise ValueError(f"unknown qos action {name!r} (known: "
                         f"{', '.join(known_actions())})") from None


# ----------------------------------------------------------------------
# Built-in actions.
# ----------------------------------------------------------------------
@register_action("log")
def log_only(platform, target, now, **kwargs) -> dict:
    """Record the breach; take no mitigation."""
    return {"noop": True}


@register_action("migrate_hottest")
def migrate_hottest(platform, target, now, gpus_required: int = 1) -> dict:
    """Proactively migrate one replica off the busiest host.

    Victim selection is deterministic: among hosts carrying at least one
    active replica, pick the one with the fewest idle GPUs (ties broken by
    host id), then the lexicographically-first kernel with a replica there.
    ``migrate_replica`` itself re-derives the exact replica to move and
    handles checkpointing, target search, and retry.
    """
    scheduler = platform.global_scheduler
    hosts: dict = {}
    for kernel_id in sorted(scheduler.kernels):
        kernel = scheduler.kernels[kernel_id]
        for replica in kernel.active_replicas:
            host = replica.host
            if host is None or not host.is_active:
                continue
            entry = hosts.setdefault(host.host_id,
                                     (host.idle_gpus, host.host_id, []))
            entry[2].append(kernel_id)
    if not hosts:
        return {"migrated": False, "reason": "no active replicas"}
    _, host_id, kernel_ids = min(hosts.values())
    kernel = scheduler.kernels[kernel_ids[0]]
    platform.env.process(
        scheduler.migrate_replica(kernel, int(gpus_required)),
        name=f"qos-migrate-{kernel.kernel_id}")
    return {"migrated": True, "kernel": kernel.kernel_id,
            "source_host": host_id}


@register_action("autoscaler_override")
def autoscaler_override(platform, target, now, extra_hosts: int = 1,
                        hold_s: float = 1800.0,
                        freeze_scale_in: bool = True) -> dict:
    """Raise the min-host floor and freeze scale-in for ``hold_s`` seconds."""
    autoscaler = platform.autoscaler
    floor = platform.cluster.active_host_count + int(extra_hosts)
    until = now + float(hold_s)
    # Overrides extend, never shrink: overlapping breaches keep the
    # strongest floor and the longest hold.
    autoscaler.qos_min_hosts = max(autoscaler.qos_min_hosts, floor)
    autoscaler.qos_floor_until = max(autoscaler.qos_floor_until, until)
    if freeze_scale_in:
        autoscaler.qos_freeze_until = max(autoscaler.qos_freeze_until, until)
    return {"overridden": True, "min_hosts": autoscaler.qos_min_hosts,
            "until": until, "scale_in_frozen": bool(freeze_scale_in)}


@register_action("admission_throttle")
def admission_throttle(platform, target, now, delay_s: float = 30.0,
                       hold_s: float = 900.0) -> dict:
    """Defer admissions by ``delay_s`` for the next ``hold_s`` seconds."""
    until = now + float(hold_s)
    platform.admission_throttle_until = max(
        platform.admission_throttle_until, until)
    platform.admission_throttle_delay_s = float(delay_s)
    return {"throttled": True, "delay_s": float(delay_s), "until": until}
