"""The closed-loop QoS controller.

A :class:`QosController` owns a private :class:`~repro.telemetry.Telemetry`
instance sized to exactly the quantiles its targets read, subscribes one
:class:`TargetState` machine per target to the matching stream's
``on_window`` callback, and evaluates triggers **only at window closes** —
deterministic simulated times derived from the sample stream itself.  When
several targets watch the same stream their machines run in declaration
order (the telemetry layer invokes window callbacks in subscription order),
which is the tie-break rule the multi-target tests pin.

Every transition is published on the platform HookBus:

* ``QOS_BREACH (time, target_name, detail)`` — ``windows`` consecutive
  violating windows observed;
* ``QOS_ACTION (time, target_name, action_name, detail)`` — the target's
  action fired (on breach entry and, while still breached, every time the
  cooldown expires);
* ``QOS_RECOVER (time, target_name, detail)`` — ``windows`` consecutive
  windows inside the hysteresis band.

At ``RUN_END`` the controller folds a summary into ``stats["qos"]``: per
target the transition counts, the full timeline of transitions, and the
actions taken.

Determinism: a :class:`TargetState` decision is a pure function of the
window-snapshot sequence it has seen (plus, when a
:class:`~repro.shard.barrier.ShardContext` is attached, the fleet pressure
of the current barrier frame — itself a deterministic function of epoch
state identical under the serial and parallel shard drivers).  Replaying
the same snapshot sequence through a fresh machine yields the identical
transition sequence; the hypothesis property test pins this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.api.hooks import QOS_ACTION, QOS_BREACH, QOS_RECOVER, RUN_END
from repro.qos.actions import resolve_action
from repro.qos.targets import QosConfig, QosTarget
from repro.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.streams import WindowSnapshot

__all__ = ["QosController", "TargetState"]

OK, BREACHED = "ok", "breached"


class TargetState:
    """Pure per-target trigger state machine.

    ``observe(snapshot, fleet_pressure)`` consumes one closed window and
    returns the transition it caused (``"breach"``, ``"recover"``,
    ``"action"`` or ``None``).  The machine reads nothing but its target,
    the snapshots it is fed, and the pressure argument — no clocks, no
    platform state — so its decision sequence is replayable.
    """

    __slots__ = ("target", "state", "_violating", "_clearing",
                 "_last_action_at", "breaches", "recoveries", "actions_fired")

    def __init__(self, target: QosTarget) -> None:
        self.target = target
        self.state = OK
        self._violating = 0
        self._clearing = 0
        self._last_action_at: Optional[float] = None
        self.breaches = 0
        self.recoveries = 0
        self.actions_fired = 0

    # ------------------------------------------------------------------
    def value_of(self, snapshot: "WindowSnapshot") -> Optional[float]:
        """The statistic this target reads off a window, or ``None``."""
        target = self.target
        if target.percentile is not None:
            return snapshot.quantiles.get(target.stat_label)
        if target.aggregate == "mean":
            return snapshot.mean
        if target.aggregate == "rate":
            return snapshot.rate_per_s
        if target.aggregate == "count":
            return float(snapshot.count)
        if target.aggregate == "min":
            return snapshot.minimum
        return snapshot.maximum

    def observe(self, snapshot: "WindowSnapshot",
                fleet_pressure: int = 0) -> Optional[str]:
        """Consume one closed window; return the transition, if any.

        Empty windows are neutral: they neither extend a violating streak
        nor count toward recovery (no samples means no evidence either
        way), mirroring how a production probe treats a scrape gap.
        """
        if snapshot.count == 0:
            return None
        value = self.value_of(snapshot)
        if value is None:
            return None
        target = self.target
        now = snapshot.end
        if self.state == OK:
            if target.violated(value, fleet_pressure):
                self._violating += 1
                if self._violating >= target.windows:
                    self.state = BREACHED
                    self._violating = 0
                    self._clearing = 0
                    self.breaches += 1
                    return "breach"
            else:
                self._violating = 0
            return None
        # Breached: check recovery through the hysteresis band first, then
        # whether the cooldown allows re-firing the action.
        if target.cleared(value, fleet_pressure):
            self._clearing += 1
            if self._clearing >= target.windows:
                self.state = OK
                self._clearing = 0
                self._violating = 0
                self.recoveries += 1
                return "recover"
            return None
        self._clearing = 0
        if self._last_action_at is None or \
                now - self._last_action_at >= target.cooldown_s:
            return "action"
        return None

    def mark_action(self, now: float) -> None:
        self._last_action_at = now
        self.actions_fired += 1


class QosController:
    """Evaluates QoS targets at window closes and fires their actions.

    Construction wires everything up; the controller then runs entirely
    off telemetry callbacks.  It deliberately relaxes the HookBus
    zero-timeline rule: QoS is a *controller*, and its actions (migrations,
    scale-outs, admission delays) are supposed to change the run.  With no
    targets breaching it schedules nothing, and with QoS disabled (no
    ``qos`` config block) none of this code is reachable, so the goldens'
    byte-identity is preserved by construction.
    """

    def __init__(self, platform, config: QosConfig) -> None:
        config.validate()
        self.platform = platform
        self.config = config
        self.states: List[TargetState] = [TargetState(t)
                                          for t in config.targets]
        #: Chronological (time, kind, target, detail) transition timeline.
        self.timeline: List[tuple] = []
        quantiles = config.quantiles() or (0.5,)
        self.telemetry = Telemetry(window_s=config.window_s,
                                   quantiles=quantiles, retain_sketches=0,
                                   publish_stats=False)
        # Declaration order == evaluation order at a shared window close:
        # on_window registration order is subscription order per stream.
        for state in self.states:
            self.telemetry.on_window(
                state.target.metric,
                self._make_window_callback(state))
        # Seat our RUN_END summarizer *before* telemetry attaches its own
        # RUN_END finalizer with first=True: attach() will prepend the
        # finalizer ahead of us, so at RUN_END the final partial windows
        # close (possibly firing observe/action one last time) and only
        # then does the summary land in stats["qos"] — with later-seated
        # user hooks still seeing the finished summary.
        platform.hooks.subscribe(RUN_END, self._on_run_end, first=True)
        self.telemetry.attach(platform.hooks)

    # ------------------------------------------------------------------
    # Window evaluation.
    # ------------------------------------------------------------------
    def _fleet_pressure(self) -> int:
        """Fleet-wide GPU deficit from the shard barrier frame, if any.

        One-epoch-stale by design: both shard drivers absorb frames at
        identical barrier epochs, so this value is a pure function of
        (epoch, shard payloads) and identical serial vs parallel.
        """
        context = getattr(self.platform, "shard_context", None)
        if context is None:
            return 0
        view = context.global_view
        if view is None or not view.fresh:
            return 0
        return view.frame.pressure

    def _make_window_callback(self, state: TargetState):
        def on_window(snapshot: "WindowSnapshot") -> None:
            # Suppress evaluation once the workload is finished: RUN_END
            # finalization closes partial windows after the platform has
            # already torn down, and firing mitigations there would
            # schedule events into a dead run.
            if self.platform._workload is None:
                return
            transition = state.observe(snapshot, self._fleet_pressure())
            if transition is None:
                return
            now = snapshot.end
            value = state.value_of(snapshot)
            target = state.target
            detail = {
                "metric": target.metric,
                "stat": target.stat_label,
                "value": value,
                "threshold": target.effective_threshold(
                    self._fleet_pressure()),
                "window_end": now,
            }
            if transition == "recover":
                self.timeline.append((now, "recover", target.name, detail))
                self.platform.hooks.publish(QOS_RECOVER, now, target.name,
                                            detail)
                return
            if transition == "breach":
                self.timeline.append((now, "breach", target.name, detail))
                self.platform.hooks.publish(QOS_BREACH, now, target.name,
                                            detail)
            self._fire_action(state, now, detail)
        return on_window

    def _fire_action(self, state: TargetState, now: float,
                     trigger_detail: Dict[str, object]) -> None:
        target = state.target
        action = resolve_action(target.action)
        result = action(self.platform, target, now, **target.action_kwargs)
        state.mark_action(now)
        detail = dict(trigger_detail)
        detail.update(result)
        self.timeline.append((now, "action", target.name, detail))
        self.platform.hooks.publish(QOS_ACTION, now, target.name,
                                    target.action, detail)

    # ------------------------------------------------------------------
    # RUN_END summary.
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        return {
            "window_s": self.config.window_s,
            "targets": {
                state.target.name: {
                    "action": state.target.action,
                    "breaches": state.breaches,
                    "recoveries": state.recoveries,
                    "actions_fired": state.actions_fired,
                    "final_state": state.state,
                }
                for state in self.states
            },
            "timeline": [
                {"time": time, "kind": kind, "target": name, "detail": detail}
                for time, kind, name, detail in self.timeline
            ],
        }

    def _on_run_end(self, platform, result, stats) -> None:
        stats["qos"] = self.summary()
