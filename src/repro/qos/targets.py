"""Declarative QoS targets: the sweepable ``qos`` config block.

A :class:`QosTarget` names one service-level objective over a
:mod:`repro.telemetry` windowed stream — "p99 interactivity above 120 s",
"placement satisfaction rate below 0.9" — together with the trigger
semantics the :class:`~repro.qos.controller.QosController` applies to it:

* **windows** — how many *consecutive* closed windows must violate the
  threshold before the target breaches (debouncing);
* **hysteresis** — the recovery band: a breached target only recovers once
  the value clears ``threshold`` by at least this margin for ``windows``
  consecutive windows, so a value oscillating around the threshold does not
  flap breach/recover every window;
* **cooldown_s** — minimum simulated seconds between fired actions, so a
  persistent breach re-fires its mitigation at a bounded rate instead of
  every window;
* **pressure_relief** — shard awareness: when the platform carries a
  :class:`~repro.shard.barrier.ShardContext` whose (one-epoch-stale) global
  frame reports positive fleet-wide capacity pressure, the breach threshold
  tightens by this fraction, so controllers react earlier when the *whole
  fleet* — not just the local shard — is short on capacity.

Both :class:`QosTarget` and the enclosing :class:`QosConfig` are plain
data: they round-trip through dicts (and therefore through
:class:`~repro.api.spec.RunSpec` JSON and the result-store content hash),
and parse from a compact CLI shorthand::

    interactivity:p99>120:migrate_hottest
    placement:mean<0.9:autoscaler_override,extra_hosts=2,hold_s=1200
    tct:p90>900:admission_throttle,delay_s=30,windows=2,cooldown_s=600

``metric:stat<op>threshold:action[,key=value...]`` — ``stat`` is ``pNN``,
``mean``, ``rate``, ``count``, ``min`` or ``max``; ``<op>`` is ``>``
(breach above) or ``<`` (breach below); trailing ``key=value`` pairs set
any remaining target field, with unknown keys routed to the action's
kwargs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.telemetry.sketch import quantile_label

__all__ = ["QosTarget", "QosConfig"]

#: Aggregates a target may read off a WindowSnapshot (besides percentiles).
AGGREGATES = ("mean", "rate", "count", "min", "max")

#: Target fields settable from the CLI shorthand's key=value suffix.
_SHORTHAND_FIELDS = ("windows", "hysteresis", "cooldown_s",
                     "pressure_relief", "name")
_INT_FIELDS = frozenset({"windows"})
_STR_FIELDS = frozenset({"name"})


@dataclass
class QosTarget:
    """One service-level objective plus its trigger semantics."""

    metric: str
    threshold: float
    #: Percentile in (0, 1) to read from the window sketch, or ``None`` to
    #: use ``aggregate`` instead.
    percentile: Optional[float] = 0.99
    #: Window aggregate when ``percentile`` is None: mean/rate/count/min/max.
    aggregate: str = "mean"
    #: ``"above"`` breaches when the value exceeds the threshold (latency
    #: metrics); ``"below"`` when it falls under it (satisfaction rates).
    comparison: str = "above"
    #: Consecutive violating (resp. clearing) windows to breach (recover).
    windows: int = 1
    #: Recovery band: recover only once clear of the threshold by this much.
    hysteresis: float = 0.0
    #: Minimum simulated seconds between fired actions while breached.
    cooldown_s: float = 0.0
    #: Registered action name (see :mod:`repro.qos.actions`).
    action: str = "log"
    action_kwargs: Dict[str, object] = field(default_factory=dict)
    #: Fraction by which fleet-wide barrier pressure tightens the threshold.
    pressure_relief: float = 0.0
    #: Stable label; defaults to ``metric:stat<op>threshold``.
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            op = ">" if self.comparison == "above" else "<"
            self.name = f"{self.metric}:{self.stat_label}{op}{self.threshold:g}"

    # ------------------------------------------------------------------
    # Derived labels.
    # ------------------------------------------------------------------
    @property
    def stat_label(self) -> str:
        """``p99`` / ``mean`` / ... — the statistic this target watches."""
        if self.percentile is not None:
            return quantile_label(self.percentile)
        return self.aggregate

    def effective_threshold(self, fleet_pressure: int) -> float:
        """The breach threshold after shard-aware pressure relief.

        Pure function of (target, pressure): with positive fleet-wide
        pressure an *above* target's threshold shrinks (breach earlier), a
        *below* target's grows, each by the ``pressure_relief`` fraction.
        """
        if self.pressure_relief <= 0.0 or fleet_pressure <= 0:
            return self.threshold
        if self.comparison == "above":
            return self.threshold * (1.0 - self.pressure_relief)
        return self.threshold * (1.0 + self.pressure_relief)

    def violated(self, value: float, fleet_pressure: int = 0) -> bool:
        threshold = self.effective_threshold(fleet_pressure)
        return value > threshold if self.comparison == "above" \
            else value < threshold

    def cleared(self, value: float, fleet_pressure: int = 0) -> bool:
        """Inside the recovery band (threshold cleared by the hysteresis)."""
        threshold = self.effective_threshold(fleet_pressure)
        return value <= threshold - self.hysteresis \
            if self.comparison == "above" \
            else value >= threshold + self.hysteresis

    # ------------------------------------------------------------------
    # Validation.
    # ------------------------------------------------------------------
    def validate(self) -> None:
        if not self.metric:
            raise ValueError("QosTarget.metric must be a stream name")
        if self.percentile is not None and not 0.0 < self.percentile < 1.0:
            raise ValueError(
                f"percentile must be in (0, 1), got {self.percentile}")
        if self.percentile is None and self.aggregate not in AGGREGATES:
            raise ValueError(f"aggregate must be one of "
                             f"{', '.join(AGGREGATES)}, got {self.aggregate!r}")
        if self.comparison not in ("above", "below"):
            raise ValueError(
                f"comparison must be 'above' or 'below', got {self.comparison!r}")
        if self.windows < 1:
            raise ValueError("windows must be >= 1")
        if self.hysteresis < 0.0:
            raise ValueError("hysteresis must be non-negative")
        if self.cooldown_s < 0.0:
            raise ValueError("cooldown_s must be non-negative")
        if not 0.0 <= self.pressure_relief < 1.0:
            raise ValueError("pressure_relief must be in [0, 1)")
        from repro.qos.actions import known_actions

        if self.action not in known_actions():
            raise ValueError(f"unknown qos action {self.action!r} (known: "
                             f"{', '.join(known_actions())})")

    # ------------------------------------------------------------------
    # Serialization (spec-hash participating: keys are stable).
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "metric": self.metric,
            "threshold": self.threshold,
            "percentile": self.percentile,
            "aggregate": self.aggregate,
            "comparison": self.comparison,
            "windows": self.windows,
            "hysteresis": self.hysteresis,
            "cooldown_s": self.cooldown_s,
            "action": self.action,
            "pressure_relief": self.pressure_relief,
            "name": self.name,
        }
        if self.action_kwargs:
            data["action_kwargs"] = dict(self.action_kwargs)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QosTarget":
        return cls(metric=data["metric"], threshold=data["threshold"],
                   percentile=data.get("percentile"),
                   aggregate=data.get("aggregate", "mean"),
                   comparison=data.get("comparison", "above"),
                   windows=int(data.get("windows", 1)),
                   hysteresis=float(data.get("hysteresis", 0.0)),
                   cooldown_s=float(data.get("cooldown_s", 0.0)),
                   action=data.get("action", "log"),
                   action_kwargs=dict(data.get("action_kwargs", {})),
                   pressure_relief=float(data.get("pressure_relief", 0.0)),
                   name=data.get("name", ""))

    # ------------------------------------------------------------------
    # CLI shorthand.
    # ------------------------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "QosTarget":
        """Parse ``metric:stat<op>threshold:action[,key=value...]``."""
        head, _, suffix = text.partition(",")
        parts = head.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"malformed qos target {text!r}; expected "
                f"metric:stat>threshold[:action][,key=value...]")
        metric, trigger = parts[0].strip(), parts[1].strip()
        action = parts[2].strip() if len(parts) == 3 else "log"
        comparison, op = ("above", ">") if ">" in trigger else ("below", "<")
        if op not in trigger:
            raise ValueError(f"qos target {text!r} needs a '>' or '<' trigger")
        stat, _, threshold_text = trigger.partition(op)
        stat = stat.strip().lower()
        try:
            threshold = float(threshold_text)
        except ValueError:
            raise ValueError(f"qos target {text!r}: threshold "
                             f"{threshold_text!r} is not a number") from None
        percentile: Optional[float] = None
        aggregate = "mean"
        if stat.startswith("p") and stat[1:].replace(".", "", 1).isdigit():
            percentile = float(stat[1:]) / 100.0
        elif stat in AGGREGATES:
            aggregate = stat
        else:
            raise ValueError(f"qos target {text!r}: unknown statistic "
                             f"{stat!r} (use pNN or one of "
                             f"{', '.join(AGGREGATES)})")
        fields: Dict[str, object] = {}
        action_kwargs: Dict[str, object] = {}
        if suffix:
            for pair in suffix.split(","):
                key, eq, value = pair.partition("=")
                key = key.strip()
                if not eq:
                    raise ValueError(f"qos target {text!r}: expected "
                                     f"key=value, got {pair!r}")
                if key in _SHORTHAND_FIELDS:
                    fields[key] = (value if key in _STR_FIELDS
                                   else int(value) if key in _INT_FIELDS
                                   else float(value))
                else:
                    action_kwargs[key] = _coerce(value.strip())
        return cls(metric=metric, threshold=threshold, percentile=percentile,
                   aggregate=aggregate, comparison=comparison, action=action,
                   action_kwargs=action_kwargs, **fields)


def _coerce(text: str) -> object:
    """Best-effort scalar coercion for action kwargs from the CLI."""
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


@dataclass
class QosConfig:
    """The ``qos`` block: targets plus the shared evaluation window."""

    targets: List[QosTarget] = field(default_factory=list)
    #: Tumbling-window length the controller's telemetry evaluates on.
    window_s: float = 300.0

    def validate(self) -> None:
        if self.window_s <= 0.0:
            raise ValueError("qos window_s must be positive")
        seen = set()
        for target in self.targets:
            target.validate()
            if target.name in seen:
                raise ValueError(f"duplicate qos target name {target.name!r}")
            seen.add(target.name)

    def quantiles(self) -> Tuple[float, ...]:
        """Every percentile any target reads, in ascending order."""
        return tuple(sorted({t.percentile for t in self.targets
                             if t.percentile is not None}))

    def to_dict(self) -> Dict[str, object]:
        return {"window_s": self.window_s,
                "targets": [t.to_dict() for t in self.targets]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QosConfig":
        return cls(window_s=float(data.get("window_s", 300.0)),
                   targets=[QosTarget.from_dict(t)
                            for t in data.get("targets", [])])

    @classmethod
    def from_specs(cls, specs: Sequence[object],
                   window_s: float = 300.0) -> "QosConfig":
        """Normalize a mixed list of targets/dicts/shorthand strings."""
        targets: List[QosTarget] = []
        for spec in specs:
            if isinstance(spec, QosTarget):
                targets.append(spec)
            elif isinstance(spec, str):
                targets.append(QosTarget.from_string(spec))
            elif isinstance(spec, dict):
                targets.append(QosTarget.from_dict(spec))
            else:
                raise TypeError(f"cannot build a QosTarget from "
                                f"{type(spec).__name__}")
        return cls(targets=targets, window_s=window_s)
