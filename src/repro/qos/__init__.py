"""``repro.qos`` — the closed-loop QoS control plane.

PR 6 landed the *observability* half of the QoS story: windowed metric
streams with percentile sketches and ``on_window`` callbacks.  This package
is the *control* half: declarative :class:`QosTarget` objectives evaluated
at deterministic window closes by a :class:`QosController`, firing
pluggable mitigation actions (proactive migration, autoscaler overrides,
admission backpressure) through the platform's existing seams, with every
transition published on the HookBus (``qos_breach`` / ``qos_recover`` /
``qos_action``) and summarized in ``RUN_END stats["qos"]``.

QoS is **off by default**: without a ``qos`` config block none of this
code runs and every golden digest is byte-identical to a build without the
package.  Enable it declaratively::

    from repro.api import RUN_END, Simulation

    qos_stats = {}
    (Simulation.from_scenario("cluster_scale")
     .with_qos("interactivity:p99>120:migrate_hottest", window_s=300.0)
     .on(RUN_END, lambda p, r, stats: qos_stats.update(stats["qos"]))
     .run())
    print(qos_stats["targets"])

or from the CLI::

    python -m repro.experiments run failure_storm \\
        --qos "interactivity:p99>120:autoscaler_override,extra_hosts=2"

See EXPERIMENTS.md ("QoS control plane") for the target schema, the sweep
axis, and the determinism contract.
"""

from repro.qos.actions import known_actions, register_action, resolve_action
from repro.qos.controller import QosController, TargetState
from repro.qos.targets import QosConfig, QosTarget

__all__ = [
    "QosConfig",
    "QosController",
    "QosTarget",
    "TargetState",
    "known_actions",
    "register_action",
    "resolve_action",
]
