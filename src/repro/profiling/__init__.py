"""Run profiling: per-phase wall time and event-class counters.

The profiler is pure instrumentation layered on the lifecycle
:class:`~repro.api.hooks.HookBus` — it subscribes counting callbacks, so a
run without a profiler attached pays nothing ("zero overhead when
disabled"), and an instrumented run stays bit-identical to a bare one
(hook callbacks add no simulation events by construction).

    from repro.api import Simulation
    from repro.profiling import Profiler

    profiler = Profiler()
    result = (Simulation.from_scenario("smoke")
              .with_profiler(profiler)
              .run())
    print(profiler.last.format())

or from the command line::

    python -m repro.experiments profile cluster_scale --policy lcp

See EXPERIMENTS.md ("Profiling runs") for the report fields.
"""

from repro.profiling.memory import memory_stats
from repro.profiling.profiler import ProfileReport, Profiler

__all__ = ["ProfileReport", "Profiler", "memory_stats"]
