"""Process-memory measurement for the run stats payload.

:func:`memory_stats` snapshots the process's peak memory at run end; the
platform publishes it in the ``RUN_END`` stats payload under ``"memory"``
and the :class:`~repro.profiling.Profiler` folds it into its report.  Peak
RSS is the process-lifetime high-water mark (``getrusage`` cannot be reset),
so comparing two configurations needs one process per configuration — which
is how the memory-bounding acceptance check runs sketch vs exact mode.
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import Dict

__all__ = ["memory_stats"]

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None


def memory_stats() -> Dict[str, int]:
    """Peak process memory, in bytes.

    * ``peak_rss_bytes`` — lifetime peak resident set size (POSIX only;
      ``ru_maxrss`` is kilobytes on Linux, bytes on macOS).
    * ``peak_traced_bytes`` — peak Python-level allocation, present only
      when the caller already started :mod:`tracemalloc`.
    """
    stats: Dict[str, int] = {}
    if resource is not None:
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if sys.platform != "darwin":
            peak *= 1024
        stats["peak_rss_bytes"] = int(peak)
    if tracemalloc.is_tracing():
        stats["peak_traced_bytes"] = tracemalloc.get_traced_memory()[1]
    return stats
