"""The :class:`Profiler`: hook-bus instrumentation for simulation runs.

A profiler measures *where a run's wall-clock time goes* and *what the run
dispatched*, without touching the simulation timeline:

* **phases** — wall seconds per named phase.  ``replay`` is measured
  between the ``RUN_START`` and ``RUN_END`` hooks; the
  :class:`~repro.api.Simulation` builder adds ``trace_build`` and
  ``platform_build`` around trace generation and platform wiring when a
  profiler is attached (see :meth:`Profiler.phase`).
* **event-class counters** — every ``PLATFORM_EVENT`` publication is
  counted by its :class:`~repro.metrics.collector.EventKind`, and every
  lifecycle topic (task submit/complete, placement decisions, migrations,
  scale events, ...) by topic name.
* **engine dispatch counters** — the run-scoped delta of
  :meth:`Environment.dispatch_stats` (queue entries dispatched, fused
  same-timestamp batches, tuple serials, overflow migrations, window
  rebases), published by the platform in the ``RUN_END`` stats payload.

Everything is collected through :class:`~repro.api.hooks.HookBus`
subscriptions made by :meth:`Profiler.attach`; a run without a profiler
attached executes exactly zero profiler code.
"""

from __future__ import annotations

import json
import time as _wallclock
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api.hooks import (
    PLATFORM_EVENT,
    RUN_END,
    RUN_START,
    TOPICS,
    HookBus,
)

__all__ = ["ProfileReport", "Profiler"]


@dataclass
class ProfileReport:
    """One run's profile: phases, counters, and derived rates."""

    policy: str = "unknown"
    trace_name: str = "unknown"
    #: Wall seconds per phase (``replay`` always present; ``trace_build``
    #: and ``platform_build`` when the run went through ``Simulation``).
    phases: Dict[str, float] = field(default_factory=dict)
    #: Engine dispatch counters for the run (delta of
    #: ``Environment.dispatch_stats``).
    dispatch: Dict[str, int] = field(default_factory=dict)
    #: Discrete platform events by ``EventKind`` value.
    event_counts: Dict[str, int] = field(default_factory=dict)
    #: Lifecycle hook publications by topic name.
    hook_counts: Dict[str, int] = field(default_factory=dict)
    #: Run-scoped cache counters (currently the statesync AST cache).
    ast_cache: Dict[str, int] = field(default_factory=dict)
    #: Policy-decision cache + admission-batching counters (``hits`` /
    #: ``misses`` / ``batches`` / ``batched_tasks`` / ``warmed``; see
    #: :mod:`repro.core.runstate`).  All zero when policy batching is off.
    decisions: Dict[str, int] = field(default_factory=dict)
    #: Peak process memory at run end (``peak_rss_bytes`` always on POSIX,
    #: ``peak_traced_bytes`` when tracemalloc is running) — see
    #: :func:`repro.profiling.memory_stats`.
    memory: Dict[str, int] = field(default_factory=dict)
    #: Per-shard counters (index, epochs, barrier stall seconds, per-epoch
    #: dispatch, pressure; see ``repro.shard.ShardContext.stats_payload``).
    #: Empty — and absent from :meth:`to_dict` — for unsharded runs, so
    #: the existing JSON shapes are unchanged.
    shard: Dict[str, Any] = field(default_factory=dict)
    #: Simulated seconds covered by the run.
    sim_time_s: float = 0.0

    # ------------------------------------------------------------------
    # Derived rates.
    # ------------------------------------------------------------------
    @property
    def wall_time_s(self) -> float:
        """Total wall time across the measured phases."""
        return sum(self.phases.values())

    @property
    def events_per_sec(self) -> float:
        """Dispatched queue entries per replay wall second."""
        replay = self.phases.get("replay", 0.0)
        if replay <= 0:
            return 0.0
        return self.dispatch.get("dispatched", 0) / replay

    @property
    def batch_fusion(self) -> float:
        """Mean entries dispatched per fused same-timestamp batch."""
        batches = self.dispatch.get("batches", 0)
        if batches <= 0:
            return 0.0
        return self.dispatch.get("dispatched", 0) / batches

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "policy": self.policy,
            "trace_name": self.trace_name,
            "phases": dict(self.phases),
            "dispatch": dict(self.dispatch),
            "event_counts": dict(self.event_counts),
            "hook_counts": dict(self.hook_counts),
            "ast_cache": dict(self.ast_cache),
            "decisions": dict(self.decisions),
            "memory": dict(self.memory),
            "sim_time_s": self.sim_time_s,
            "derived": {
                "wall_time_s": round(self.wall_time_s, 3),
                "events_per_sec": round(self.events_per_sec, 1),
                "batch_fusion": round(self.batch_fusion, 3),
            },
        }
        # Present only on sharded runs: unsharded profile JSON keeps its
        # exact pre-shard shape.
        if self.shard:
            data["shard"] = dict(self.shard)
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def format(self) -> str:
        """Human-readable multi-line summary (what the CLI prints)."""
        lines = [f"profile: {self.trace_name} / {self.policy}"]
        lines.append("  phases:")
        for name, seconds in self.phases.items():
            lines.append(f"    {name:<16} {seconds:>9.3f} s")
        lines.append(f"    {'total':<16} {self.wall_time_s:>9.3f} s"
                     f"   (simulated {self.sim_time_s:,.0f} s)")
        d = self.dispatch
        if d:
            lines.append(
                f"  dispatch: {d.get('dispatched', 0):,} entries in "
                f"{d.get('batches', 0):,} batches "
                f"(fusion {self.batch_fusion:.2f}x), "
                f"{self.events_per_sec:,.0f} entries/s")
            lines.append(
                f"            {d.get('serials', 0):,} tuple serials, "
                f"{d.get('overflow', 0):,} overflow migrations, "
                f"{d.get('rebases', 0):,} window rebases")
        if self.ast_cache:
            lines.append(f"  ast cache: {self.ast_cache.get('hits', 0):,} hits"
                         f" / {self.ast_cache.get('misses', 0):,} misses")
        if any(self.decisions.values()):
            dc = self.decisions
            lines.append(
                f"  decision cache: {dc.get('hits', 0):,} hits / "
                f"{dc.get('misses', 0):,} misses, "
                f"{dc.get('batches', 0):,} admission batches "
                f"({dc.get('batched_tasks', 0):,} tasks, "
                f"{dc.get('warmed', 0):,} warmed)")
        if self.memory:
            parts = [f"peak rss {self.memory['peak_rss_bytes'] / 2**20:,.1f} MB"
                     if "peak_rss_bytes" in self.memory else None,
                     f"peak traced {self.memory['peak_traced_bytes'] / 2**20:,.1f} MB"
                     if "peak_traced_bytes" in self.memory else None]
            lines.append("  memory: " + ", ".join(p for p in parts if p))
        if self.shard:
            s = self.shard
            dispatched = s.get("dispatched_per_epoch", [])
            lines.append(
                f"  shard {s.get('index', '?')}/{s.get('num_shards', '?')}: "
                f"{s.get('epochs', 0)} epochs, "
                f"barrier stall {s.get('barrier_stall_s', 0.0):.3f} s, "
                f"{sum(dispatched):,} entries across epochs, "
                f"pressure {s.get('pressure_gpus', 0)} GPUs "
                f"({s.get('pressure_events', 0)} events), "
                f"msgs {s.get('messages_sent', 0)} out / "
                f"{s.get('messages_received', 0)} in")
        if self.event_counts:
            lines.append("  platform events:")
            width = max(len(k) for k in self.event_counts)
            for kind, count in sorted(self.event_counts.items(),
                                      key=lambda kv: (-kv[1], kv[0])):
                lines.append(f"    {kind:<{width}}  {count:>10,}")
        if self.hook_counts:
            lines.append("  lifecycle hooks:")
            width = max(len(k) for k in self.hook_counts)
            for topic, count in sorted(self.hook_counts.items(),
                                       key=lambda kv: (-kv[1], kv[0])):
                lines.append(f"    {topic:<{width}}  {count:>10,}")
        return "\n".join(lines)


class Profiler:
    """Collects :class:`ProfileReport`\\ s from hook-instrumented runs.

    Attach once (directly via :meth:`attach`, or through
    ``Simulation.with_profiler``); each completed run appends a report to
    :attr:`reports`.  The profiler's callbacks are plain counters — they
    never interact with the simulation environment, so instrumented runs
    are bit-identical to bare ones.
    """

    def __init__(self) -> None:
        self.reports: List[ProfileReport] = []
        self._phases: Dict[str, float] = {}
        self._hook_counts: Dict[str, int] = {}
        self._event_counts: Dict[str, int] = {}
        self._replay_started: Optional[float] = None
        self._sim_started = 0.0
        self._attached: Optional[HookBus] = None
        self._subscriptions: List[tuple] = []

    @property
    def last(self) -> Optional[ProfileReport]:
        """The most recent completed run's report, if any."""
        return self.reports[-1] if self.reports else None

    # ------------------------------------------------------------------
    # Attachment.
    # ------------------------------------------------------------------
    def attach(self, bus: HookBus) -> "Profiler":
        """Subscribe this profiler's counters to ``bus``.

        Idempotent for the same bus; attaching to a *different* bus first
        detaches from the previous one, so one profiler can accumulate
        reports across several ``Simulation`` objects (each creates its
        own hook bus) without double-counting.
        """
        if self._attached is bus:
            return self
        if self._attached is not None:
            self.detach()
        self._attached = bus
        counts = self._hook_counts
        subscriptions = self._subscriptions
        for topic in TOPICS:
            if topic == RUN_START:
                callback: Any = self._on_run_start
            elif topic == RUN_END:
                callback = self._on_run_end
            elif topic == PLATFORM_EVENT:
                callback = self._on_platform_event
            else:
                def callback(*_payload, _topic=topic, _counts=counts) -> None:
                    _counts[_topic] = _counts.get(_topic, 0) + 1
            bus.subscribe(topic, callback)
            subscriptions.append((topic, callback))
        return self

    def detach(self) -> None:
        """Unsubscribe from the currently attached bus (no-op if none)."""
        bus = self._attached
        if bus is None:
            return
        for topic, callback in self._subscriptions:
            bus.unsubscribe(topic, callback)
        self._subscriptions.clear()
        self._attached = None

    # ------------------------------------------------------------------
    # Phase measurement (used by Simulation around build steps).
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Measure a wall-clock phase; times accumulate under ``name``."""
        started = _wallclock.monotonic()
        try:
            yield
        finally:
            elapsed = _wallclock.monotonic() - started
            self._phases[name] = self._phases.get(name, 0.0) + elapsed

    # ------------------------------------------------------------------
    # Hook callbacks.
    # ------------------------------------------------------------------
    def _on_run_start(self, platform, trace) -> None:
        self._replay_started = _wallclock.monotonic()
        self._sim_started = platform.env.now

    def _on_platform_event(self, time, kind, detail) -> None:
        key = getattr(kind, "value", str(kind))
        self._event_counts[key] = self._event_counts.get(key, 0) + 1

    def _on_run_end(self, platform, result, stats) -> None:
        phases = dict(self._phases)
        if self._replay_started is not None:
            phases["replay"] = _wallclock.monotonic() - self._replay_started
        report = ProfileReport(
            policy=getattr(platform.policy, "name", "unknown"),
            trace_name=result.trace_name,
            phases=phases,
            dispatch=dict(stats.get("dispatch", {})),
            event_counts=dict(self._event_counts),
            hook_counts=dict(self._hook_counts),
            ast_cache={"hits": stats.get("ast_cache_hits", 0),
                       "misses": stats.get("ast_cache_misses", 0)},
            decisions=dict(stats.get("decisions", {})),
            memory=dict(stats.get("memory", {})),
            shard=dict(stats.get("shard", {})),
            sim_time_s=platform.env.now - self._sim_started,
        )
        self.reports.append(report)
        # Reset per-run accumulators so a reused profiler (sweeps, repeated
        # Simulation.run) starts every run from zero.  Cleared *in place*:
        # the per-topic counting closures bound the dict objects at attach
        # time, so rebinding would orphan them.
        self._phases.clear()
        self._hook_counts.clear()
        self._event_counts.clear()
        self._replay_started = None
