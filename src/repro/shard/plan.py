"""Deterministic space partition and epoch schedule for sharded runs.

A :class:`ShardPlan` fixes, from nothing but the workload trace and the
shard count, everything a sharded run must agree on before any process
starts:

* **session partition** — sessions are dealt round-robin over the shard
  indices in ``(start_time, session_id)`` order, so every shard receives an
  arrival stream with the same temporal shape as the whole (a contiguous
  split would give shard 0 the morning and shard K-1 the evening).  Within
  a shard, sessions keep their *original trace order* — the order the
  platform creates session processes in, which same-timestamp event
  ordering (and therefore bit-identity) depends on.
* **barrier schedule** — the global horizon is cut into fixed epochs; every
  shard steps to exactly the same barrier times.  Barrier ``k`` sits at
  ``(k + 1) * epoch_s`` (computed by multiplication, not accumulation, so
  every process derives byte-identical floats) and the last barrier is the
  horizon itself.

The plan is pure data: both the in-process serial driver and the
per-process workers derive it independently from the same inputs and get
the same object, which is what makes the two execution modes
interchangeable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workload.trace import SessionTrace, Trace

__all__ = ["ShardPlan", "default_epoch_s", "partition_sessions",
           "shard_traces", "MIN_EPOCH_S", "MAX_EPOCH_S"]

#: Epoch bounds: barriers are pure synchronization overhead below a minute
#: of simulated time, and above half an hour the frames get too stale to be
#: a useful global view.
MIN_EPOCH_S = 60.0
MAX_EPOCH_S = 1800.0

#: Default barrier count a run is cut into when no epoch length is given.
DEFAULT_EPOCHS_PER_RUN = 64


def default_epoch_s(horizon: float) -> float:
    """~64 epochs per run, clamped to [MIN_EPOCH_S, MAX_EPOCH_S]."""
    if horizon <= 0:
        return MIN_EPOCH_S
    return min(MAX_EPOCH_S, max(MIN_EPOCH_S, horizon / DEFAULT_EPOCHS_PER_RUN))


def partition_sessions(sessions: Sequence[SessionTrace],
                       num_shards: int) -> List[List[SessionTrace]]:
    """Round-robin sessions over shards in ``(start_time, session_id)``
    order, preserving original relative order within each shard."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    order = sorted(range(len(sessions)),
                   key=lambda i: (sessions[i].start_time,
                                  sessions[i].session_id))
    assigned: List[List[int]] = [[] for _ in range(num_shards)]
    for rank, index in enumerate(order):
        assigned[rank % num_shards].append(index)
    return [[sessions[i] for i in sorted(indices)] for indices in assigned]


def shard_traces(trace: Trace, num_shards: int) -> List[Trace]:
    """The per-shard sub-traces of ``trace`` (shard index order).

    Each sub-trace keeps the parent's sample interval; its name records the
    shard coordinates so per-shard results are tellable apart (the merged
    result restores the parent name).
    """
    parts = partition_sessions(trace.sessions, num_shards)
    return [Trace(name=f"{trace.name}[shard {i}/{num_shards}]",
                  sessions=part, sample_interval=trace.sample_interval)
            for i, part in enumerate(parts)]


@dataclass(frozen=True)
class ShardPlan:
    """Everything the shards of one run agree on, derived deterministically."""

    trace_name: str
    num_shards: int
    horizon: float
    epoch_s: float
    #: Barrier times, strictly increasing, last one == horizon.
    barrier_times: Tuple[float, ...]
    #: Session ids per shard (shard index order, original trace order
    #: within a shard) — recorded for verification/telemetry, the traces
    #: themselves are re-derived by each worker.
    session_ids: Tuple[Tuple[str, ...], ...]

    @classmethod
    def from_trace(cls, trace: Trace, num_shards: int,
                   epoch_s: Optional[float] = None,
                   horizon: Optional[float] = None) -> "ShardPlan":
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        horizon = float(horizon) if horizon is not None else trace.duration
        epoch = float(epoch_s) if epoch_s is not None \
            else default_epoch_s(horizon)
        if epoch <= 0:
            raise ValueError(f"epoch_s must be positive, got {epoch}")
        n_full = max(0, math.ceil(horizon / epoch) - 1)
        barriers = tuple((k + 1) * epoch for k in range(n_full)) + (horizon,)
        parts = partition_sessions(trace.sessions, num_shards)
        return cls(trace_name=trace.name, num_shards=num_shards,
                   horizon=horizon, epoch_s=epoch, barrier_times=barriers,
                   session_ids=tuple(
                       tuple(s.session_id for s in part) for part in parts))

    @property
    def num_epochs(self) -> int:
        return len(self.barrier_times)

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_name": self.trace_name,
            "num_shards": self.num_shards,
            "horizon": self.horizon,
            "epoch_s": self.epoch_s,
            "barrier_times": list(self.barrier_times),
            "session_ids": [list(ids) for ids in self.session_ids],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardPlan":
        return cls(trace_name=data["trace_name"],
                   num_shards=data["num_shards"],
                   horizon=data["horizon"],
                   epoch_s=data["epoch_s"],
                   barrier_times=tuple(data["barrier_times"]),
                   session_ids=tuple(tuple(ids)
                                     for ids in data["session_ids"]))
