"""repro.shard — space-sharded simulation with deterministic barriers.

Partitions one run's sessions over K shards, each simulated by its own
calendar-queue engine (in-process or one process per shard), exchanging
aggregate cluster state and cross-shard messages at fixed epoch barriers.
Serial and parallel execution of the same K-shard plan are byte-identical;
``num_shards=1`` bypasses all of it and is the frozen serial reference.
"""

from repro.shard.barrier import (
    GlobalClusterView,
    GlobalFrame,
    ShardContext,
    ShardFrame,
)
from repro.shard.merge import merge_collectors, merge_results
from repro.shard.plan import (
    ShardPlan,
    default_epoch_s,
    partition_sessions,
    shard_traces,
)
from repro.shard.runner import (
    ShardExecutionError,
    ShardRuntime,
    ShardedRunResult,
    run_sharded,
)

__all__ = [
    "GlobalClusterView",
    "GlobalFrame",
    "ShardContext",
    "ShardFrame",
    "ShardPlan",
    "ShardRuntime",
    "ShardedRunResult",
    "ShardExecutionError",
    "default_epoch_s",
    "merge_collectors",
    "merge_results",
    "partition_sessions",
    "run_sharded",
    "shard_traces",
]
