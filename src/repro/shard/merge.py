"""Merge K per-shard experiment results into one global result.

Every combinator here is a *pure, order-stable function of the shard
results in shard index order*:

* task records and platform events are k-way merged by time with shard
  index as the tie-break (``heapq.merge`` is stable: equal keys yield the
  earlier iterable — i.e. the lower shard — first);
* cluster timelines are summed as step functions over the union of sample
  times (a series contributes 0 before its first sample), except
  ``subscription_ratio``, an intensive quantity, which is merged as the
  ``provisioned_hosts``-weighted mean — the value a fleet-wide scan of all
  shards' hosts would produce on a homogeneous fleet;
* latency sample lists concatenate in shard order, counters sum, and
  sketch-mode quantile sketches fold centroid-by-centroid in shard order.

Because the inputs are per-shard results (identical in the serial and
parallel execution modes) and the combinators never consult anything else,
the merged collector — and therefore its digest — is byte-identical across
modes and across repeated runs.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Tuple

from repro.analysis.timeline import Timeline
from repro.metrics.collector import (
    ExperimentResult,
    MetricsCollector,
    PlatformEvent,
)
from repro.metrics.latency_breakdown import LatencyBreakdown

__all__ = ["merge_results", "merge_collectors",
           "merge_timelines_sum", "merge_timelines_weighted_mean"]


def _union_times(timelines: Sequence[Timeline]) -> List[float]:
    times = set()
    for timeline in timelines:
        times.update(t for t, _ in timeline.points)
    return sorted(times)


def _step_walkers(timelines: Sequence[Timeline]):
    """Per-timeline cursors yielding the step-function value at each probe
    time (probe times must be nondecreasing)."""
    states = [{"points": tl.points, "pos": 0, "value": 0.0}
              for tl in timelines]

    def value_at(state, time):
        points = state["points"]
        pos = state["pos"]
        while pos < len(points) and points[pos][0] <= time:
            state["value"] = points[pos][1]
            pos += 1
        state["pos"] = pos
        return state["value"]

    return states, value_at


def merge_timelines_sum(name: str,
                        timelines: Sequence[Timeline]) -> Timeline:
    """Pointwise sum of step functions over the union of sample times."""
    merged = Timeline(name)
    states, value_at = _step_walkers(timelines)
    for time in _union_times(timelines):
        merged.record(time, sum(value_at(s, time) for s in states))
    return merged


def merge_timelines_weighted_mean(name: str, values: Sequence[Timeline],
                                  weights: Sequence[Timeline]) -> Timeline:
    """Weight-averaged merge for intensive quantities (e.g. SR).

    ``weights[i]`` supplies shard i's weight series (its provisioned host
    count); a shard with zero weight at a time contributes nothing there.
    Falls back to the unweighted mean when every weight is zero.
    """
    merged = Timeline(name)
    value_states, value_at = _step_walkers(values)
    weight_states, weight_at = _step_walkers(weights)
    for time in _union_times(values):
        total = weighted = 0.0
        samples = []
        for vstate, wstate in zip(value_states, weight_states):
            v = value_at(vstate, time)
            w = weight_at(wstate, time)
            samples.append(v)
            total += w
            weighted += v * w
        if total > 0:
            merged.record(time, weighted / total)
        else:
            merged.record(time, sum(samples) / len(samples)
                          if samples else 0.0)
    return merged


def merge_collectors(collectors: Sequence[MetricsCollector]) -> MetricsCollector:
    """Merge per-shard collectors (shard index order) into one."""
    if not collectors:
        raise ValueError("cannot merge zero collectors")
    modes = {c.sketch_mode for c in collectors}
    if len(modes) != 1:
        raise ValueError("cannot merge mixed exact/sketch collectors")
    first = collectors[0]
    merged = MetricsCollector(sample_interval=first.sample_interval,
                              sketch_mode=first.sketch_mode,
                              sketch_compression=first.sketch_compression)

    # Task records: k-way time merge, shard order breaking ties (heapq.merge
    # is stable across its input iterables).
    merged.tasks = list(heapq.merge(
        *[c.tasks for c in collectors], key=lambda t: t.submitted_at))
    # Events likewise; replayed through record_event so the per-kind index
    # stays consistent.
    for event in heapq.merge(*[c.events for c in collectors],
                             key=lambda e: e.time):
        merged.record_event(event.time, event.kind, event.detail)

    weights = [c.provisioned_hosts for c in collectors]
    for name in MetricsCollector._TIMELINE_FIELDS:
        series = [getattr(c, name) for c in collectors]
        if name == "subscription_ratio":
            setattr(merged, name,
                    merge_timelines_weighted_mean(name, series, weights))
        else:
            setattr(merged, name, merge_timelines_sum(name, series))

    for name in ("datastore_read_latencies", "datastore_write_latencies",
                 "raft_sync_latencies"):
        combined: List[float] = []
        for collector in collectors:
            combined.extend(getattr(collector, name))
        setattr(merged, name, combined)

    for name in ("gpu_bind_count", "immediate_gpu_commit_count",
                 "same_executor_count", "executor_decisions"):
        setattr(merged, name, sum(getattr(c, name) for c in collectors))

    if merged.sketch_mode:
        merged.sketch_task_count = sum(c.sketch_task_count
                                       for c in collectors)
        merged.sketch_completed_tasks = sum(c.sketch_completed_tasks
                                            for c in collectors)
        for collector in collectors:
            merged.interactivity_sketch.merge(collector.interactivity_sketch)
            merged.tct_sketch.merge(collector.tct_sketch)
    return merged


def merge_results(results: Sequence[ExperimentResult], trace_name: str,
                  wall_clock_runtime: float = 0.0) -> ExperimentResult:
    """Merge per-shard results (shard index order) into the global result.

    ``trace_name`` restores the parent trace's name (shard results carry
    ``name[shard i/K]`` variants); ``wall_clock_runtime`` is the
    coordinator's end-to-end measurement — per-shard wall clocks overlap
    under parallel execution, so summing them would be meaningless.
    """
    if not results:
        raise ValueError("cannot merge zero results")
    policies = {r.policy for r in results}
    if len(policies) != 1:
        raise ValueError(f"cannot merge results across policies: {policies}")
    breakdown = None
    if all(r.breakdown is not None for r in results):
        breakdown = LatencyBreakdown(policy=results[0].breakdown.policy)
        for result in results:
            breakdown.samples.extend(result.breakdown.samples)
    return ExperimentResult(
        policy=results[0].policy, trace_name=trace_name,
        collector=merge_collectors([r.collector for r in results]),
        wall_clock_runtime=wall_clock_runtime, breakdown=breakdown)
