"""Drive K shards of one run to completion, serially or in parallel.

``run_sharded`` is the entry point.  ``num_shards=1`` is the **frozen
reference path**: it delegates straight to ``Simulation.from_spec(spec)``
— zero shard machinery touches the run, so it is bit-identical to the
pre-shard serial path (the same freeze discipline
``policy_batching_enabled=False`` established for the decision batcher).

For K > 1 the run proceeds in lockstep epochs over the *global* horizon:

1. each shard builds its own full platform from the spec, against its
   sub-trace (configs resolve per sub-trace, so the fleet divides ~K ways);
2. every epoch, each shard steps its calendar queue to the barrier time,
   snapshots a :class:`~repro.shard.barrier.ShardFrame`, and blocks;
3. the coordinator merges the K frames (shard order) into a
   :class:`~repro.shard.barrier.GlobalFrame` and broadcasts it back;
4. after the last barrier each shard drains its session tail
   independently (no further barriers — the tail is cross-shard-free),
   finishes its workload, and ships its result;
5. the coordinator merges the K results (:mod:`repro.shard.merge`).

The serial driver runs the K shard runtimes in-process; the parallel
driver forks one worker process per shard (pipes for the barrier
exchange).  Both execute the identical per-shard event sequences and the
identical shard-order merges, so their outputs are byte-identical —
``tests/test_shard.py`` pins this, and ``benchmarks/bench_giga.py`` gates
the parallel speedup on top of it.
"""

from __future__ import annotations

import time as _wallclock
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.spec import RunSpec
from repro.metrics.collector import ExperimentResult
from repro.profiling.memory import memory_stats
from repro.shard.barrier import GlobalFrame, ShardContext
from repro.shard.merge import merge_results
from repro.shard.plan import ShardPlan, shard_traces

__all__ = ["ShardExecutionError", "ShardRuntime", "ShardedRunResult",
           "run_sharded"]


class ShardExecutionError(RuntimeError):
    """A shard failed *deterministically* (an in-simulation exception or a
    protocol violation); carries the remote traceback text.  Process-level
    losses — kills, hangs, corrupt frames — don't raise this: the
    supervisor (:mod:`repro.resilience`) recovers them transparently."""


@dataclass
class ShardedRunResult:
    """A sharded run's merged result plus per-shard reporting."""

    result: ExperimentResult
    num_shards: int
    #: ``"reference"`` (num_shards=1), ``"serial"``, ``"parallel"``, or
    #: ``"degraded"`` (supervision exhausted a shard's restart budget and
    #: fell back to the serial driver — same digest, no processes).
    mode: str
    #: Per-shard payloads in shard index order; each carries ``shard``
    #: (the stats_payload), ``memory`` (that process's peak RSS), and —
    #: when requested — ``profile`` / ``telemetry`` report dicts.
    shard_payloads: List[Dict[str, object]] = field(default_factory=list)
    #: Supervision accounting from :class:`repro.resilience.
    #: ResilienceMonitor` — worker losses/recoveries, per-shard restart
    #: counts, degrade flag, and the full event timeline.  Empty for the
    #: ``num_shards=1`` reference path.
    resilience: Dict[str, object] = field(default_factory=dict)

    @property
    def peak_rss_bytes(self) -> int:
        """Max per-process peak RSS across shards (coordinator excluded)."""
        return max((p.get("memory", {}).get("peak_rss_bytes", 0)
                    for p in self.shard_payloads), default=0)

    @property
    def barrier_stall_s(self) -> float:
        """Total wall seconds shards spent blocked at barriers."""
        return sum(p.get("shard", {}).get("barrier_stall_s", 0.0)
                   for p in self.shard_payloads)

    @property
    def recoveries(self) -> int:
        """Workers lost and deterministically recovered during this run."""
        return int(self.resilience.get("workers_recovered", 0))

    @property
    def degraded(self) -> bool:
        """Whether supervision gave up and fell back to the serial driver."""
        return bool(self.resilience.get("degraded", False))


class ShardRuntime:
    """One shard's platform, driven epoch-by-epoch from outside.

    Identical in both execution modes: the serial driver holds K of these
    in one process, the parallel worker holds exactly one.  All
    mode-dependent behavior (who waits on whom) lives in the drivers.
    """

    def __init__(self, spec: RunSpec, shard_index: int, plan: ShardPlan,
                 sketch: bool = False, profile: bool = False,
                 telemetry_kwargs: Optional[dict] = None,
                 trace=None) -> None:
        self.spec = RunSpec.from_spec(spec)
        self.shard_index = int(shard_index)
        self.plan = plan
        #: Pre-built sub-trace, when the coordinator already derived it —
        #: skipping the per-shard full-trace rebuild.  ``None`` re-derives
        #: it here; both paths run the same pure partition functions, so
        #: the resulting run is identical either way.
        self._trace = trace
        self.context = ShardContext(shard_index, plan.num_shards)
        self.profiler = None
        self.telemetry = None
        self._sketch = bool(sketch)
        self._profile = bool(profile)
        self._telemetry_kwargs = dict(telemetry_kwargs or {})
        self.platform = None
        self.result: Optional[ExperimentResult] = None
        #: Set on respawned incarnations (see repro.resilience): replay
        #: accounting that rides the payload and RUN_END stats.
        self.resilience = None

    def setup(self) -> None:
        """Build trace + platform and begin the workload (no stepping yet)."""
        from repro.api.simulation import Simulation

        simulation = Simulation.from_spec(self.spec)
        if self._sketch:
            simulation.with_sketch_metrics()
        if self._profile:
            from repro.profiling import Profiler

            self.profiler = Profiler()
            simulation.with_profiler(self.profiler)
        if self._telemetry_kwargs:
            simulation.with_telemetry(**self._telemetry_kwargs)
            self.telemetry = simulation.telemetry
        phase = (self.profiler.phase if self.profiler is not None
                 else _null_phase)
        with phase("trace_build"):
            if self._trace is not None:
                trace = self._trace
            else:
                full_trace = simulation._resolve_trace()
                trace = shard_traces(full_trace, self.plan.num_shards)[
                    self.shard_index]
        with phase("platform_build"):
            platform = simulation.build(trace)
        platform.shard_context = self.context
        platform.global_scheduler.shard_context = self.context
        # The *global* horizon, not the sub-trace's: every shard samples
        # the same windows and steps the same barrier schedule.
        platform.begin_workload(trace, until=self.plan.horizon)
        self.platform = platform
        self.simulation = simulation

    def step_epoch(self, epoch: int, time: float) -> ShardFrame:
        """Advance to the barrier at ``time`` and snapshot a frame."""
        platform = self.platform
        dispatched = platform.step_workload_until(time)
        return self.context.make_frame(
            epoch, time, dispatched,
            platform.cluster.aggregate(),
            platform.cluster.index.idle_gpu_histogram(),
            platform.active_session_count)

    def absorb(self, frame: GlobalFrame) -> None:
        self.context.absorb_global(frame)

    def finalize(self) -> ExperimentResult:
        """Drain the post-horizon tail, finish, and detach."""
        platform = self.platform
        try:
            platform.drain_workload()
            self.result = platform.finish_workload()
        finally:
            platform.detach_metrics()
        return self.result

    def abort(self) -> None:
        """Tear down after a failure elsewhere (idempotent)."""
        if self.platform is not None:
            self.platform.detach_metrics()

    def payload(self) -> Dict[str, object]:
        """Per-shard reporting: counters, memory, optional reports."""
        payload: Dict[str, object] = {
            "shard": self.context.stats_payload(),
            "memory": memory_stats(),
            "events_dispatched":
                self.platform.env.dispatch_stats()["dispatched"],
        }
        if self.profiler is not None and self.profiler.last is not None:
            payload["profile"] = self.profiler.last.to_dict()
            payload["profile_text"] = self.profiler.last.format()
        if self.telemetry is not None and self.telemetry.last is not None:
            payload["telemetry"] = self.telemetry.last.to_dict()
            payload["telemetry_text"] = self.telemetry.last.format()
        if self.resilience is not None:
            payload["resilience"] = self.resilience.stats_payload()
        return payload


class _NullPhase:
    def __call__(self, name: str) -> "_NullPhase":
        return self

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_null_phase = _NullPhase()


# ----------------------------------------------------------------------
# Drivers.
# ----------------------------------------------------------------------
def _drive_serial(runtimes: Sequence[ShardRuntime],
                  plan: ShardPlan) -> List[Dict[str, object]]:
    """Lockstep the runtimes in-process; returns per-shard payload dicts.

    Factored out so tests can inject failing runtimes and observe the
    mid-epoch teardown path without multiprocessing in the way.
    """
    try:
        for runtime in runtimes:
            runtime.setup()
        for epoch, barrier_time in enumerate(plan.barrier_times):
            frames = [runtime.step_epoch(epoch, barrier_time)
                      for runtime in runtimes]
            merged = GlobalFrame.merge(frames)
            for runtime in runtimes:
                runtime.absorb(merged)
        payloads = []
        for runtime in runtimes:
            result = runtime.finalize()
            payload = runtime.payload()
            payload["result"] = result.to_dict()
            payloads.append(payload)
        return payloads
    except BaseException:
        for runtime in runtimes:
            try:
                runtime.abort()
            except Exception:
                pass
        raise


def _shard_worker(connection, spec_dict: dict, shard_index: int,
                  plan_dict: dict, options: dict, trace=None,
                  recover: Optional[dict] = None) -> None:
    """One shard's process: step, exchange frames over the pipe, report.

    ``recover`` is set on respawned incarnations (see
    :mod:`repro.resilience.supervisor`): before rejoining the live barrier
    protocol the worker *fast-forwards* — it re-simulates every journaled
    epoch and absorbs the corresponding merged :class:`GlobalFrame` s,
    which reconstructs the dead incarnation's state bit for bit, then
    resumes at ``resume_epoch``.  ``options["fault_injection"]`` is the
    test-only crash harness (:class:`repro.resilience.FaultInjection`).
    """
    try:
        plan = ShardPlan.from_dict(plan_dict)
        runtime = ShardRuntime(
            RunSpec.from_dict(spec_dict), shard_index, plan,
            sketch=options.get("sketch", False),
            profile=options.get("profile", False),
            telemetry_kwargs=options.get("telemetry_kwargs"),
            trace=trace)
        injection = None
        injection_dict = options.get("fault_injection")
        if injection_dict and injection_dict.get("shard") == shard_index:
            from repro.resilience.supervisor import FaultInjection

            injection = FaultInjection.from_dict(injection_dict)
        runtime.setup()
        start_epoch = 0
        if recover is not None:
            start_epoch = int(recover["resume_epoch"])
            for epoch in range(start_epoch):
                # Deterministic replay: the recomputed frame is identical
                # to the one the dead incarnation sent, so it is discarded
                # and the journaled merged frame absorbed in its place.
                runtime.step_epoch(epoch, plan.barrier_times[epoch])
                runtime.absorb(GlobalFrame.from_dict(
                    recover["frames"][epoch]))
            from repro.resilience.monitor import ResilienceContext

            resilience = ResilienceContext(
                incarnation=int(recover.get("incarnation", 2)),
                replayed_epochs=start_epoch)
            runtime.platform.resilience_context = resilience
            runtime.resilience = resilience
        for epoch in range(start_epoch, plan.num_epochs):
            barrier_time = plan.barrier_times[epoch]
            frame = runtime.step_epoch(epoch, barrier_time)
            if injection is not None and epoch == injection.epoch:
                injection.fire(connection, ("frame", frame.to_dict()))
            connection.send(("frame", frame.to_dict()))
            waited = _wallclock.monotonic()
            message = connection.recv()
            runtime.context.record_stall(_wallclock.monotonic() - waited)
            if message[0] != "global":
                return  # coordinator aborted
            runtime.absorb(GlobalFrame.from_dict(message[1]))
        result = runtime.finalize()
        payload = runtime.payload()
        payload["result"] = result.to_dict()
        if injection is not None and injection.epoch >= plan.num_epochs:
            injection.fire(connection, ("result", payload))
        connection.send(("result", payload))
    except BaseException as error:  # ship the traceback, never hang the pipe
        try:
            connection.send(("error", repr(error), traceback.format_exc()))
        except Exception:
            pass
    finally:
        connection.close()


# ----------------------------------------------------------------------
# Entry point.
# ----------------------------------------------------------------------
def run_sharded(spec, num_shards: int, *, parallel: bool = True,
                epoch_s: Optional[float] = None, sketch: bool = False,
                profile: bool = False,
                telemetry_kwargs: Optional[dict] = None,
                supervision=None, hooks=None,
                fault_injection=None) -> ShardedRunResult:
    """Run ``spec`` partitioned into ``num_shards`` space shards.

    ``parallel`` selects one-process-per-shard execution; the in-process
    serial mode exists for verification (both produce byte-identical
    results) and for environments where forking is unwelcome.  ``sketch``
    runs every shard's collector in fixed-memory sketch mode (required for
    giga-scale traces).  ``profile`` / ``telemetry_kwargs`` attach a
    per-shard Profiler / Telemetry whose report dicts ride the shard
    payloads.

    The parallel driver is **supervised** (see :mod:`repro.resilience`):
    a worker that dies, hangs past ``supervision.worker_timeout_s``, or
    corrupts a barrier frame is respawned and deterministically
    fast-forwarded from the journal of merged global frames, so the merged
    result is byte-identical to a fault-free run; after
    ``supervision.max_worker_restarts`` consecutive failures of one shard
    the run degrades to the serial driver (``mode == "degraded"``).
    ``hooks`` receives ``WORKER_LOST``/``WORKER_RECOVERED`` publishes;
    ``fault_injection`` is the test-only crash harness
    (:class:`repro.resilience.FaultInjection`).
    """
    spec = RunSpec.from_spec(spec)
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    started = _wallclock.monotonic()
    if num_shards == 1:
        # Frozen reference path: no shard machinery at all.
        from repro.api.simulation import Simulation

        simulation = Simulation.from_spec(spec)
        if sketch:
            simulation.with_sketch_metrics()
        profiler = telemetry = None
        if profile:
            from repro.profiling import Profiler

            profiler = Profiler()
            simulation.with_profiler(profiler)
        if telemetry_kwargs:
            simulation.with_telemetry(**telemetry_kwargs)
            telemetry = simulation.telemetry
        result = simulation.run()
        payload: Dict[str, object] = {
            "shard": {}, "memory": memory_stats(),
            "events_dispatched": (
                simulation.platform.env.dispatch_stats()["dispatched"]
                if simulation.platform is not None else 0),
            "result": None,  # the merged result IS the single result
        }
        if profiler is not None and profiler.last is not None:
            payload["profile"] = profiler.last.to_dict()
            payload["profile_text"] = profiler.last.format()
        if telemetry is not None and telemetry.last is not None:
            payload["telemetry"] = telemetry.last.to_dict()
            payload["telemetry_text"] = telemetry.last.format()
        return ShardedRunResult(result=result, num_shards=1,
                                mode="reference", shard_payloads=[payload])

    from repro.experiments.scenarios import build_trace

    full_trace = build_trace(spec)
    plan = ShardPlan.from_trace(full_trace, num_shards, epoch_s=epoch_s)
    traces = shard_traces(full_trace, num_shards)
    options = {"sketch": sketch, "profile": profile,
               "telemetry_kwargs": dict(telemetry_kwargs or {})}
    if fault_injection is not None:
        options["fault_injection"] = (
            fault_injection if isinstance(fault_injection, dict)
            else fault_injection.to_dict())
    # Imported lazily: repro.resilience.supervisor imports _shard_worker
    # from this module at spawn time.
    from repro.resilience import (
        ResilienceExhausted,
        ResilienceMonitor,
        ShardSupervisor,
        SupervisorConfig,
    )

    monitor = ResilienceMonitor(hooks=hooks)
    if parallel:
        config = supervision if supervision is not None else SupervisorConfig()
        supervisor = ShardSupervisor(spec, plan, options, traces,
                                     config, monitor)
        try:
            payloads = supervisor.run()
            mode = "parallel"
        except ResilienceExhausted as error:
            # One shard kept dying past its restart budget: give up on
            # parallelism, not on the run.  The serial driver ignores
            # fault_injection (it never forks), so a persistent injection
            # cannot re-kill the degraded run.
            monitor.degraded(str(error))
            runtimes = [ShardRuntime(spec, i, plan, sketch=sketch,
                                     profile=profile,
                                     telemetry_kwargs=telemetry_kwargs,
                                     trace=traces[i])
                        for i in range(num_shards)]
            payloads = _drive_serial(runtimes, plan)
            mode = "degraded"
    else:
        runtimes = [ShardRuntime(spec, i, plan, sketch=sketch,
                                 profile=profile,
                                 telemetry_kwargs=telemetry_kwargs,
                                 trace=traces[i])
                    for i in range(num_shards)]
        payloads = _drive_serial(runtimes, plan)
        mode = "serial"
    shard_results = [ExperimentResult.from_dict(p["result"])
                     for p in payloads]
    merged = merge_results(shard_results, trace_name=full_trace.name,
                           wall_clock_runtime=(
                               _wallclock.monotonic() - started))
    return ShardedRunResult(result=merged, num_shards=num_shards, mode=mode,
                            shard_payloads=payloads,
                            resilience=monitor.payload())
