"""Barrier frames: what shards exchange, and the merged global view.

At every epoch barrier each shard emits one :class:`ShardFrame` — an O(1)
observational snapshot (cluster aggregates, idle-GPU histogram, capacity
pressure) plus any outgoing cross-shard messages.  The coordinator merges
the K frames **in shard index order** into one :class:`GlobalFrame` and
broadcasts it back; each shard folds the global frame into its
:class:`GlobalClusterView` and collects the messages addressed to it.

Determinism contract: frames are *pure functions of shard state* and the
merge is a *pure function of the frames in shard order*, so the serial
in-process driver and the one-process-per-shard driver exchange
byte-identical data — which is why the two execution modes produce
byte-identical merged results (pinned in tests/test_shard.py).  Nothing a
shard absorbs from a global frame schedules simulation events or perturbs
RNG streams; the exchange is observational plus an explicit message
channel, both carried into the RUN_END ``stats["shard"]`` payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ShardFrame", "GlobalFrame", "GlobalClusterView", "ShardContext"]


@dataclass
class ShardFrame:
    """One shard's barrier snapshot for one epoch."""

    shard: int
    epoch: int
    time: float
    #: Events dispatched by this shard during the epoch.
    dispatched: int
    active_hosts: int
    total_gpus: int
    committed_gpus: int
    subscribed_gpus: int
    #: idle-GPU count -> host count (sorted keys; see
    #: HostIndex.idle_gpu_histogram).
    idle_gpu_histogram: Dict[int, int] = field(default_factory=dict)
    sessions_active: int = 0
    #: GPUs of placement-failure deficit noted this epoch (see
    #: GlobalScheduler/ShardContext.note_pressure).
    pressure: int = 0
    #: Outgoing cross-shard messages: ``[dst_shard, payload]`` pairs,
    #: JSON-serializable payloads, send order preserved.
    messages: List[list] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "epoch": self.epoch,
            "time": self.time,
            "dispatched": self.dispatched,
            "active_hosts": self.active_hosts,
            "total_gpus": self.total_gpus,
            "committed_gpus": self.committed_gpus,
            "subscribed_gpus": self.subscribed_gpus,
            # Sorted-key list form: JSON objects would stringify int keys.
            "idle_gpu_histogram": [[k, v] for k, v in
                                   sorted(self.idle_gpu_histogram.items())],
            "sessions_active": self.sessions_active,
            "pressure": self.pressure,
            "messages": [list(m) for m in self.messages],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardFrame":
        return cls(shard=data["shard"], epoch=data["epoch"],
                   time=data["time"], dispatched=data["dispatched"],
                   active_hosts=data["active_hosts"],
                   total_gpus=data["total_gpus"],
                   committed_gpus=data["committed_gpus"],
                   subscribed_gpus=data["subscribed_gpus"],
                   idle_gpu_histogram={int(k): int(v) for k, v in
                                       data["idle_gpu_histogram"]},
                   sessions_active=data["sessions_active"],
                   pressure=data["pressure"],
                   messages=[list(m) for m in data["messages"]])


@dataclass
class GlobalFrame:
    """The merged view of one epoch across every shard (shard order)."""

    epoch: int
    time: float
    num_shards: int
    dispatched: int
    active_hosts: int
    total_gpus: int
    committed_gpus: int
    subscribed_gpus: int
    sessions_active: int
    pressure: int
    idle_gpu_histogram: Dict[int, int] = field(default_factory=dict)
    #: Per-shard summaries in shard index order (no messages — those are
    #: routed into ``deliveries`` instead).
    per_shard: List[Dict[str, object]] = field(default_factory=list)
    #: dst shard -> delivered payloads, ordered by (src shard, send order).
    deliveries: Dict[int, List[object]] = field(default_factory=dict)

    @classmethod
    def merge(cls, frames: Sequence[ShardFrame]) -> "GlobalFrame":
        """Merge one epoch's frames; ``frames`` MUST be in shard order."""
        if not frames:
            raise ValueError("cannot merge zero frames")
        epochs = {f.epoch for f in frames}
        times = {f.time for f in frames}
        if len(epochs) != 1 or len(times) != 1:
            raise ValueError(
                f"barrier skew: epochs {sorted(epochs)} times {sorted(times)}")
        histogram: Dict[int, int] = {}
        deliveries: Dict[int, List[object]] = {}
        per_shard = []
        for frame in frames:
            for idle, count in frame.idle_gpu_histogram.items():
                histogram[idle] = histogram.get(idle, 0) + count
            for dst, payload in frame.messages:
                deliveries.setdefault(int(dst), []).append(payload)
            per_shard.append({
                "shard": frame.shard,
                "dispatched": frame.dispatched,
                "active_hosts": frame.active_hosts,
                "committed_gpus": frame.committed_gpus,
                "sessions_active": frame.sessions_active,
                "pressure": frame.pressure,
            })
        return cls(
            epoch=frames[0].epoch, time=frames[0].time,
            num_shards=len(frames),
            dispatched=sum(f.dispatched for f in frames),
            active_hosts=sum(f.active_hosts for f in frames),
            total_gpus=sum(f.total_gpus for f in frames),
            committed_gpus=sum(f.committed_gpus for f in frames),
            subscribed_gpus=sum(f.subscribed_gpus for f in frames),
            sessions_active=sum(f.sessions_active for f in frames),
            pressure=sum(f.pressure for f in frames),
            idle_gpu_histogram={k: histogram[k] for k in sorted(histogram)},
            per_shard=per_shard, deliveries=deliveries)

    def to_dict(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "time": self.time,
            "num_shards": self.num_shards,
            "dispatched": self.dispatched,
            "active_hosts": self.active_hosts,
            "total_gpus": self.total_gpus,
            "committed_gpus": self.committed_gpus,
            "subscribed_gpus": self.subscribed_gpus,
            "sessions_active": self.sessions_active,
            "pressure": self.pressure,
            "idle_gpu_histogram": [[k, v] for k, v in
                                   sorted(self.idle_gpu_histogram.items())],
            "per_shard": [dict(s) for s in self.per_shard],
            "deliveries": [[dst, list(payloads)] for dst, payloads in
                           sorted(self.deliveries.items())],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GlobalFrame":
        return cls(epoch=data["epoch"], time=data["time"],
                   num_shards=data["num_shards"],
                   dispatched=data["dispatched"],
                   active_hosts=data["active_hosts"],
                   total_gpus=data["total_gpus"],
                   committed_gpus=data["committed_gpus"],
                   subscribed_gpus=data["subscribed_gpus"],
                   sessions_active=data["sessions_active"],
                   pressure=data["pressure"],
                   idle_gpu_histogram={int(k): int(v) for k, v in
                                       data["idle_gpu_histogram"]},
                   per_shard=[dict(s) for s in data["per_shard"]],
                   deliveries={int(dst): list(payloads) for dst, payloads in
                               data["deliveries"]})


class GlobalClusterView:
    """A shard's (one-epoch-stale) view of the whole cluster.

    Updated at every barrier from the merged :class:`GlobalFrame`; answers
    the same aggregate questions :class:`~repro.core.global_scheduler.
    ClusterState` answers locally, but fleet-wide.  Reads are pure — the
    view never reaches back into any shard's simulation.
    """

    def __init__(self) -> None:
        self.frame: Optional[GlobalFrame] = None

    @property
    def fresh(self) -> bool:
        return self.frame is not None

    @property
    def active_hosts(self) -> int:
        return self.frame.active_hosts if self.frame else 0

    @property
    def total_gpus(self) -> int:
        return self.frame.total_gpus if self.frame else 0

    @property
    def committed_gpus(self) -> int:
        return self.frame.committed_gpus if self.frame else 0

    @property
    def sessions_active(self) -> int:
        return self.frame.sessions_active if self.frame else 0

    def subscription_ratio(self, replication_factor: int) -> float:
        """Fleet-wide SR from the latest frame (0.0 before the first)."""
        if (self.frame is None or self.frame.total_gpus == 0
                or replication_factor == 0):
            return 0.0
        return self.frame.subscribed_gpus / (
            self.frame.total_gpus * replication_factor)

    def hosts_with_idle_gpus(self, min_idle: int) -> int:
        """Fleet-wide count of hosts with >= ``min_idle`` idle GPUs."""
        if self.frame is None:
            return 0
        if min_idle <= 0:
            return self.frame.active_hosts
        return sum(count for idle, count in
                   self.frame.idle_gpu_histogram.items() if idle >= min_idle)

    def update(self, frame: GlobalFrame) -> None:
        self.frame = frame


class ShardContext:
    """One shard's barrier-side state: outbox, inbox, counters, global view.

    Attached to the platform and the global scheduler by the shard runner
    (duck-typed — the core never imports this module).  Everything here is
    accounting: noting pressure, sending a message, or absorbing a global
    frame never schedules simulation events, which is what keeps the
    sharded run's per-shard event streams identical across execution modes.
    """

    def __init__(self, shard_index: int, num_shards: int) -> None:
        self.shard_index = int(shard_index)
        self.num_shards = int(num_shards)
        self.global_view = GlobalClusterView()
        self.epochs = 0
        self.barrier_stall_s = 0.0
        self.dispatched_per_epoch: List[int] = []
        self.pressure_events = 0
        self.pressure_gpus = 0
        self.messages_sent = 0
        self.messages_received = 0
        #: Messages received from other shards, in delivery order; consumers
        #: (policies, tests) drain it via :meth:`drain_inbox`.
        self.inbox: List[object] = []
        self._outbox: List[list] = []
        self._pressure_gpus_last = 0

    # -- producer side (called from inside the shard's simulation) -------
    def note_pressure(self, gpu_deficit: int) -> None:
        """Record a placement-failure capacity deficit (accounting only)."""
        self.pressure_events += 1
        self.pressure_gpus += int(gpu_deficit)

    def send(self, dst_shard: int, payload: object) -> None:
        """Queue a message for ``dst_shard``; delivered at the next barrier."""
        if not 0 <= dst_shard < self.num_shards:
            raise ValueError(f"dst_shard {dst_shard} out of range "
                             f"[0, {self.num_shards})")
        self.messages_sent += 1
        self._outbox.append([int(dst_shard), payload])

    # -- barrier side (called by the shard runner) -----------------------
    def make_frame(self, epoch: int, time: float, dispatched: int,
                   aggregate: Dict[str, int],
                   idle_gpu_histogram: Dict[int, int],
                   sessions_active: int) -> ShardFrame:
        """Snapshot this epoch into a frame; drains the outbox."""
        self.epochs += 1
        self.dispatched_per_epoch.append(int(dispatched))
        pressure = self.pressure_gpus - self._pressure_gpus_last
        self._pressure_gpus_last = self.pressure_gpus
        messages, self._outbox = self._outbox, []
        return ShardFrame(
            shard=self.shard_index, epoch=epoch, time=time,
            dispatched=int(dispatched),
            active_hosts=aggregate["active_hosts"],
            total_gpus=aggregate["total_gpus"],
            committed_gpus=aggregate["committed_gpus"],
            subscribed_gpus=aggregate["subscribed_gpus"],
            idle_gpu_histogram=dict(idle_gpu_histogram),
            sessions_active=int(sessions_active),
            pressure=pressure, messages=messages)

    def absorb_global(self, frame: GlobalFrame) -> None:
        """Fold one merged frame into the view; collect own deliveries."""
        self.global_view.update(frame)
        delivered = frame.deliveries.get(self.shard_index, ())
        self.messages_received += len(delivered)
        self.inbox.extend(delivered)

    def drain_inbox(self) -> List[object]:
        drained, self.inbox = self.inbox, []
        return drained

    def record_stall(self, seconds: float) -> None:
        """Account wall-clock time spent waiting at a barrier."""
        self.barrier_stall_s += max(0.0, seconds)

    # -- reporting --------------------------------------------------------
    def stats_payload(self) -> Dict[str, object]:
        """The ``stats["shard"]`` payload for the RUN_END publish."""
        return {
            "index": self.shard_index,
            "num_shards": self.num_shards,
            "epochs": self.epochs,
            "barrier_stall_s": round(self.barrier_stall_s, 6),
            "dispatched_per_epoch": list(self.dispatched_per_epoch),
            "pressure_events": self.pressure_events,
            "pressure_gpus": self.pressure_gpus,
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
        }
