"""The supervised parallel shard driver: poll, detect, respawn, replay.

The unsupervised driver this replaces blocked forever on bare
``Pipe.recv()``: one SIGKILLed or hung worker wedged the whole run, and a
truncated frame on the pipe surfaced as an unhandled unpickling error with
every sibling left running.  :class:`ShardSupervisor` drives the identical
barrier protocol defensively:

* **poll-with-deadline** — the coordinator waits on all pending pipes with
  :func:`multiprocessing.connection.wait` in short slices, checking worker
  liveness (``Process.is_alive``) between slices and, when a
  ``worker_timeout_s`` is configured, killing workers that blow their
  per-barrier deadline;
* **deterministic recovery** — every merged
  :class:`~repro.shard.barrier.GlobalFrame` is journaled; a lost worker is
  respawned with the journal and *fast-forwards* by re-simulating its
  sub-trace epoch by epoch (``step_epoch`` + ``absorb`` of the journaled
  frames), which reproduces the dead incarnation's state bit for bit —
  shard simulations are pure functions of (spec, sub-trace, absorbed
  frames).  The recovered run's merged digest is byte-identical to a
  fault-free run (pinned by tests/test_resilience.py and gated by
  benchmarks/bench_resilience.py);
* **graceful degradation** — after ``max_worker_restarts`` consecutive
  failures of one shard, the supervisor gives up on parallelism and
  ``run_sharded`` falls back to the in-process serial driver (same digest,
  no processes);
* **clean teardown** — every exit path drains and closes the parent pipe
  ends *before* joining, so a worker blocked writing into a full pipe
  buffer can never deadlock the join (the bug the unsupervised
  ``terminate()`` path had).

Deterministic in-simulation errors (an unknown policy, an assertion in the
engine) are *not* retried: replaying would fail identically, so they raise
:class:`~repro.shard.runner.ShardExecutionError` immediately, exactly as
before.  Supervision only treats process death, hangs, and transport
corruption as recoverable.

:class:`FaultInjection` is the test-only crash harness: it makes the worker
SIGKILL itself at epoch *k*, hang forever, truncate a frame mid-pickle on
the pipe, or raise — letting tests and the benchmark gate drive every
recovery path on demand.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time as _wallclock
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Dict, List, Optional, Sequence

from repro.resilience.monitor import ResilienceMonitor
from repro.shard.barrier import GlobalFrame, ShardFrame
from repro.shard.plan import ShardPlan

__all__ = ["FaultInjection", "ResilienceExhausted", "ShardSupervisor",
           "SupervisorConfig"]


class ResilienceExhausted(RuntimeError):
    """A shard kept dying past ``max_worker_restarts``; degrade to serial."""

    def __init__(self, shard: int, restarts: int, reason: str) -> None:
        self.shard = shard
        self.restarts = restarts
        super().__init__(
            f"shard {shard} failed {restarts} consecutive times "
            f"(last: {reason}); degrading to the serial driver")


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision knobs for the parallel shard driver."""

    #: Wall seconds a worker may take to deliver one barrier frame (or its
    #: final result) before it is declared hung and killed.  ``None``
    #: disables the deadline — liveness (process death, pipe corruption) is
    #: still detected.  A respawned worker's deadline is scaled by the
    #: number of epochs it must replay.
    worker_timeout_s: Optional[float] = None
    #: Consecutive failures of one shard before the run degrades to the
    #: serial driver.  "Consecutive" resets whenever the shard delivers a
    #: message successfully.
    max_worker_restarts: int = 3
    #: Pipe poll slice; liveness is checked between slices.
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.worker_timeout_s is not None and self.worker_timeout_s <= 0:
            raise ValueError("worker_timeout_s must be positive or None")
        if self.max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be >= 0")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")


@dataclass(frozen=True)
class FaultInjection:
    """Test-only crash harness carried to shard workers via the options
    dict.  Fires in shard ``shard`` just before it would send the frame for
    barrier ``epoch`` (``epoch >= num_epochs`` targets the final result
    send instead).  Non-``persistent`` injections are stripped from the
    options when the supervisor respawns the shard, so the recovered
    incarnation runs clean; ``persistent=True`` crashes every incarnation
    (the degradation path).
    """

    shard: int
    epoch: int
    #: ``sigkill`` — raw SIGKILL, no cleanup; ``hang`` — sleep forever
    #: (needs ``worker_timeout_s`` to be detected); ``truncate_frame`` —
    #: write a truncated pickle onto the pipe then die; ``exception`` —
    #: raise inside the worker (a *deterministic* failure: surfaces as
    #: ShardExecutionError, never retried).
    mode: str = "sigkill"
    persistent: bool = False

    MODES = ("sigkill", "hang", "truncate_frame", "exception")

    def __post_init__(self) -> None:
        if self.mode not in self.MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; choose from "
                             f"{', '.join(self.MODES)}")

    def to_dict(self) -> Dict[str, object]:
        return {"shard": self.shard, "epoch": self.epoch, "mode": self.mode,
                "persistent": self.persistent}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultInjection":
        return cls(shard=int(data["shard"]), epoch=int(data["epoch"]),
                   mode=str(data["mode"]),
                   persistent=bool(data.get("persistent", False)))

    def fire(self, connection, payload) -> None:
        """Execute the injected fault inside the worker process."""
        import os
        import signal

        if self.mode == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.mode == "hang":
            while True:
                _wallclock.sleep(0.25)
        elif self.mode == "truncate_frame":
            # Half a pickle on the wire: recv() on the other end raises.
            connection.send_bytes(pickle.dumps(payload)[:16])
            os._exit(1)
        elif self.mode == "exception":
            raise RuntimeError(
                f"injected failure in shard {self.shard} at epoch "
                f"{self.epoch}")


class _Worker:
    """Coordinator-side handle for one shard process."""

    __slots__ = ("shard", "process", "connection", "incarnation",
                 "consecutive_failures", "deadline", "recovering",
                 "replayed_epochs")

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.process = None
        self.connection = None
        self.incarnation = 0
        self.consecutive_failures = 0
        self.deadline: Optional[float] = None
        self.recovering = False
        self.replayed_epochs = 0


def drain_and_close(connection) -> None:
    """Drain then close a parent pipe end (idempotent, never raises).

    Draining first matters: a worker blocked writing a large payload into a
    full pipe buffer only exits once the buffer empties — joining it with
    the buffer full deadlocks, and closing without draining leaks whatever
    was in flight.
    """
    if connection is None:
        return
    try:
        while connection.poll(0):
            connection.recv_bytes()
    except (EOFError, OSError):
        pass
    except Exception:
        pass
    try:
        connection.close()
    except Exception:
        pass


def reap(worker: _Worker, join_timeout: float = 10.0) -> None:
    """Tear one worker down: drain + close the pipe, then terminate/join."""
    drain_and_close(worker.connection)
    worker.connection = None
    process = worker.process
    if process is None:
        return
    if process.is_alive():
        process.terminate()
    process.join(timeout=join_timeout)
    if process.is_alive():
        process.kill()
        process.join(timeout=join_timeout)


class ShardSupervisor:
    """Drive one sharded run's workers with supervision and recovery."""

    def __init__(self, spec, plan: ShardPlan, options: dict,
                 traces: Optional[Sequence], config: SupervisorConfig,
                 monitor: ResilienceMonitor) -> None:
        self.spec = spec
        self.plan = plan
        self.options = dict(options)
        self.traces = traces
        self.config = config
        self.monitor = monitor
        #: Merged GlobalFrame dicts in epoch order — the recovery journal.
        #: ``len(journal)`` is always the resume epoch for a respawn: during
        #: the gather of epoch *e* it holds epochs ``0..e-1``, after the
        #: merge/broadcast of *e* it holds ``0..e``, and during the result
        #: phase it holds every epoch.
        self.journal: List[Dict[str, object]] = []
        self.workers: List[_Worker] = []
        self._context = multiprocessing.get_context("fork")

    # ------------------------------------------------------------------
    # Process lifecycle.
    # ------------------------------------------------------------------
    def _worker_options(self, recovering: bool) -> dict:
        options = dict(self.options)
        injection = options.get("fault_injection")
        if recovering and injection and not injection.get("persistent"):
            # One-shot injections die with the incarnation they killed.
            options = {k: v for k, v in options.items()
                       if k != "fault_injection"}
        return options

    def _spawn(self, worker: _Worker) -> None:
        from repro.shard.runner import _shard_worker

        recovering = worker.incarnation > 0
        recover = None
        if recovering:
            recover = {"resume_epoch": len(self.journal),
                       "frames": list(self.journal),
                       "incarnation": worker.incarnation + 1}
            worker.replayed_epochs = len(self.journal)
        parent_end, child_end = self._context.Pipe()
        process = self._context.Process(
            target=_shard_worker,
            args=(child_end, self.spec.to_dict(), worker.shard,
                  self.plan.to_dict(), self._worker_options(recovering),
                  self.traces[worker.shard] if self.traces else None,
                  recover),
            name=f"shard-{worker.shard}", daemon=True)
        process.start()
        child_end.close()
        worker.process = process
        worker.connection = parent_end
        worker.incarnation += 1
        worker.recovering = recovering
        worker.deadline = self._deadline_for(worker)

    def _deadline_for(self, worker: _Worker) -> Optional[float]:
        timeout = self.config.worker_timeout_s
        if timeout is None:
            return None
        # A respawned worker must re-simulate every journaled epoch before
        # it can answer, so its deadline budget scales with the replay.
        replay_epochs = len(self.journal) if worker.recovering else 0
        return _wallclock.monotonic() + timeout * (1 + replay_epochs)

    def _lose(self, worker: _Worker, sim_time: float, reason: str) -> None:
        """Handle one worker loss: account, enforce the restart budget,
        respawn with the journal."""
        worker.consecutive_failures += 1
        self.monitor.worker_lost(worker.shard, sim_time, reason)
        reap(worker)
        if worker.consecutive_failures > self.config.max_worker_restarts:
            raise ResilienceExhausted(worker.shard,
                                      worker.consecutive_failures, reason)
        self._spawn(worker)

    def _note_delivery(self, worker: _Worker, sim_time: float) -> None:
        if worker.recovering:
            self.monitor.worker_recovered(worker.shard, sim_time,
                                          worker.replayed_epochs,
                                          worker.incarnation)
            worker.recovering = False
        worker.consecutive_failures = 0
        worker.deadline = None

    # ------------------------------------------------------------------
    # Supervised message collection.
    # ------------------------------------------------------------------
    def _gather(self, expected: str, sim_time: float) -> Dict[int, object]:
        """Collect one ``expected`` message from every shard, surviving
        worker death, hangs, and corrupt frames along the way."""
        from repro.shard.runner import ShardExecutionError

        pending = {worker.shard for worker in self.workers}
        received: Dict[int, object] = {}
        now = _wallclock.monotonic()
        for worker in self.workers:
            if worker.deadline is None:
                worker.deadline = self._deadline_for(worker)
        while pending:
            by_connection = {self.workers[shard].connection: shard
                            for shard in pending}
            ready = _connection_wait(list(by_connection),
                                     timeout=self.config.poll_interval_s)
            for connection in ready:
                shard = by_connection[connection]
                worker = self.workers[shard]
                try:
                    message = connection.recv()
                except (EOFError, OSError) as error:
                    self._lose(worker, sim_time,
                               f"pipe closed mid-{expected} "
                               f"({type(error).__name__})")
                    continue
                except Exception as error:
                    # A frame truncated/corrupted in flight: unpicklable.
                    self._lose(worker, sim_time,
                               f"corrupt {expected} frame on the pipe "
                               f"({type(error).__name__}: {error})")
                    continue
                if message[0] == "error":
                    # Deterministic in-simulation failure: replay would fail
                    # identically, so surface it instead of retrying.
                    raise ShardExecutionError(
                        f"shard {shard} failed: {message[1]}\n{message[2]}")
                if message[0] != expected:
                    raise ShardExecutionError(
                        f"shard {shard}: expected {expected!r} message, "
                        f"got {message[0]!r}")
                received[shard] = message[1]
                pending.discard(shard)
                self._note_delivery(worker, sim_time)
            now = _wallclock.monotonic()
            for shard in sorted(pending):
                worker = self.workers[shard]
                if worker.connection in ready:
                    continue  # just respawned or handled this slice
                try:
                    # A worker that exits normally right after sending (the
                    # result phase) or that is slow but has data in flight
                    # is not lost: recv the pending message first.
                    if worker.connection.poll(0):
                        continue
                except (EOFError, OSError):
                    pass
                if not worker.process.is_alive():
                    self._lose(worker, sim_time,
                               f"worker died (exit code "
                               f"{worker.process.exitcode})")
                elif worker.deadline is not None and now > worker.deadline:
                    worker.process.kill()
                    self._lose(worker, sim_time,
                               f"no {expected} within "
                               f"{self.config.worker_timeout_s}s deadline "
                               f"(hung)")
        return received

    def _broadcast(self, merged: Dict[str, object], sim_time: float) -> None:
        """Send the merged frame to every worker; a worker whose pipe died
        is respawned (it picks the frame up from the journal instead)."""
        for worker in self.workers:
            try:
                worker.connection.send(("global", merged))
            except (BrokenPipeError, OSError):
                self._lose(worker, sim_time, "pipe closed at broadcast")

    # ------------------------------------------------------------------
    # The drive loop.
    # ------------------------------------------------------------------
    def run(self) -> List[Dict[str, object]]:
        """Drive all shards through every barrier; returns payload dicts."""
        try:
            self.workers = [_Worker(shard)
                            for shard in range(self.plan.num_shards)]
            for worker in self.workers:
                self._spawn(worker)
            for epoch, barrier_time in enumerate(self.plan.barrier_times):
                frames = self._gather("frame", barrier_time)
                merged = GlobalFrame.merge(
                    [ShardFrame.from_dict(frames[shard])
                     for shard in range(self.plan.num_shards)]).to_dict()
                self.journal.append(merged)
                self._broadcast(merged, barrier_time)
            payloads = self._gather("result", self.plan.horizon)
            for worker in self.workers:
                drain_and_close(worker.connection)
                worker.connection = None
                worker.process.join(timeout=60)
            return [payloads[shard]
                    for shard in range(self.plan.num_shards)]
        except BaseException:
            self.teardown()
            raise

    def teardown(self) -> None:
        """Reap every worker (drain + close pipes before joining)."""
        for worker in self.workers:
            try:
                reap(worker)
            except Exception:
                pass
