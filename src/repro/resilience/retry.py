"""Deterministic (jitterless) exponential backoff for sweep retries.

Randomized jitter exists to decorrelate many independent clients hammering
one shared service; a sweep's retries contend only with the local machine,
and determinism is this codebase's core contract — so the schedule is a
pure function of the attempt number: ``base * 2**(attempt-1)``, capped.
Two runs of the same failing sweep wait the exact same seconds before the
exact same attempts.
"""

from __future__ import annotations

from typing import List

__all__ = ["backoff_delay", "backoff_schedule", "DEFAULT_BACKOFF_CAP_S"]

#: Ceiling on any single retry delay; doubling past this buys nothing.
DEFAULT_BACKOFF_CAP_S = 30.0


def backoff_delay(attempt: int, base_s: float,
                  cap_s: float = DEFAULT_BACKOFF_CAP_S) -> float:
    """Seconds to wait after failed attempt number ``attempt`` (1-based)."""
    if attempt < 1:
        raise ValueError(f"attempt is 1-based, got {attempt}")
    if base_s <= 0.0:
        return 0.0
    return min(float(cap_s), float(base_s) * (2.0 ** (attempt - 1)))


def backoff_schedule(retries: int, base_s: float,
                     cap_s: float = DEFAULT_BACKOFF_CAP_S) -> List[float]:
    """The full delay sequence for ``retries`` retry attempts."""
    return [backoff_delay(attempt, base_s, cap_s)
            for attempt in range(1, retries + 1)]
