"""repro.resilience — fault-tolerant execution for sharded runs and sweeps.

Production harnesses survive worker death; simulation harnesses usually do
not.  This package closes that gap for the two load-bearing execution paths:

* **Supervised shard workers** (:mod:`repro.resilience.supervisor`) — the
  parallel shard driver polls pipes with a deadline instead of blocking on
  bare ``recv``, notices a dead / hung / frame-corrupting worker, respawns
  the shard process, and deterministically fast-forwards it by replaying its
  sub-trace against the journal of already-merged
  :class:`~repro.shard.barrier.GlobalFrame` s.  Because every shard's
  simulation is a pure function of its spec, sub-trace, and absorbed global
  frames, the recovered run's merged collector digest is **byte-identical**
  to a fault-free run.  After too many consecutive failures of one shard the
  run degrades gracefully to the in-process serial driver (same digest,
  no parallelism).
* **Resilient sweeps** (:func:`repro.experiments.runner.run_specs`) — each
  spec runs in its own supervised process, failed specs are retried on a
  deterministic (jitterless) exponential backoff schedule, persistently
  failing specs are quarantined with their captured tracebacks, and every
  completed sibling is salvaged.  ``sweep --resume`` skips anything already
  in the content-addressed store.
* **Observability** — recovery transitions publish
  ``WORKER_LOST`` / ``WORKER_RECOVERED`` / ``SPEC_RETRY`` hook topics, ride
  ``ShardedRunResult.resilience``, and a recovered worker's RUN_END carries
  ``stats["resilience"]`` (incarnation + replayed-epoch accounting).
* **Adversarial proof** (:class:`FaultInjection`) — a test-only crash
  harness that SIGKILLs a worker at epoch *k*, hangs it, truncates a frame
  on the pipe, or raises; ``tests/test_resilience.py`` and
  ``benchmarks/bench_resilience.py`` drive bit-identity assertions with it.
"""

from repro.resilience.monitor import ResilienceContext, ResilienceMonitor
from repro.resilience.retry import backoff_delay, backoff_schedule
from repro.resilience.supervisor import (
    FaultInjection,
    ResilienceExhausted,
    ShardSupervisor,
    SupervisorConfig,
)

__all__ = [
    "FaultInjection",
    "ResilienceContext",
    "ResilienceExhausted",
    "ResilienceMonitor",
    "ShardSupervisor",
    "SupervisorConfig",
    "backoff_delay",
    "backoff_schedule",
]
