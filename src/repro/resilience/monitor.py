"""Recovery accounting: the coordinator-side monitor and the per-worker
context.

:class:`ResilienceMonitor` lives in the coordinator (``run_sharded`` / the
shard supervisor): it records every supervision transition as a plain event
dict, mirrors it onto an optional :class:`~repro.api.hooks.HookBus`
(``WORKER_LOST`` / ``WORKER_RECOVERED`` topics), and renders the
``ShardedRunResult.resilience`` payload.

:class:`ResilienceContext` lives in a *recovered* worker process: the
respawned incarnation attaches it to its platform (duck-typed, like
``shard_context``), and ``finish_workload`` folds its payload into the
RUN_END ``stats["resilience"]`` block — so per-shard telemetry and profiler
reports can see that this result came from a replayed incarnation.

Everything here is wall-clock/observational accounting; nothing touches the
simulation, so recovered runs stay byte-identical to fault-free ones.
"""

from __future__ import annotations

import time as _wallclock
from typing import Dict, List, Optional

from repro.api.hooks import WORKER_LOST, WORKER_RECOVERED, HookBus

__all__ = ["ResilienceContext", "ResilienceMonitor"]


class ResilienceContext:
    """A recovered shard incarnation's replay accounting (worker side)."""

    __slots__ = ("incarnation", "replayed_epochs")

    def __init__(self, incarnation: int, replayed_epochs: int) -> None:
        #: 1 for the original process, 2 for the first respawn, ...
        self.incarnation = int(incarnation)
        #: Epochs deterministically re-simulated from the journal before
        #: rejoining the live barrier protocol.
        self.replayed_epochs = int(replayed_epochs)

    def stats_payload(self) -> Dict[str, object]:
        return {
            "recovered": True,
            "incarnation": self.incarnation,
            "replayed_epochs": self.replayed_epochs,
        }


class ResilienceMonitor:
    """Coordinator-side recorder of supervision events.

    One instance spans a whole ``run_sharded`` call (including a degrade to
    the serial driver); its :meth:`payload` becomes
    ``ShardedRunResult.resilience``.  When a ``hooks`` bus is given, every
    loss/recovery is also published as a ``WORKER_LOST`` /
    ``WORKER_RECOVERED`` topic with the barrier's *simulated* time, so
    telemetry can fold the transitions into counter streams via
    ``Telemetry.watch``.
    """

    def __init__(self, hooks: Optional[HookBus] = None) -> None:
        self.hooks = hooks
        self.events: List[Dict[str, object]] = []
        self.workers_lost = 0
        self.workers_recovered = 0
        self.restarts: Dict[int, int] = {}
        self.degraded_reason: Optional[str] = None
        self._started = _wallclock.monotonic()

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def _event(self, kind: str, **detail) -> Dict[str, object]:
        event = {"event": kind,
                 "wall_s": round(_wallclock.monotonic() - self._started, 3)}
        event.update(detail)
        self.events.append(event)
        return event

    def worker_lost(self, shard: int, sim_time: float, reason: str) -> None:
        self.workers_lost += 1
        self.restarts[shard] = self.restarts.get(shard, 0) + 1
        detail = self._event("worker_lost", shard=shard, time=sim_time,
                             reason=reason)
        if self.hooks is not None:
            self.hooks.publish(WORKER_LOST, sim_time, shard, detail)

    def worker_recovered(self, shard: int, sim_time: float,
                         replayed_epochs: int, incarnation: int) -> None:
        self.workers_recovered += 1
        detail = self._event("worker_recovered", shard=shard, time=sim_time,
                             replayed_epochs=replayed_epochs,
                             incarnation=incarnation)
        if self.hooks is not None:
            self.hooks.publish(WORKER_RECOVERED, sim_time, shard, detail)

    def degraded(self, reason: str) -> None:
        self.degraded_reason = reason
        self._event("degraded_to_serial", reason=reason)

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    @property
    def recoveries(self) -> int:
        return self.workers_recovered

    def payload(self) -> Dict[str, object]:
        """The ``ShardedRunResult.resilience`` payload."""
        return {
            "workers_lost": self.workers_lost,
            "workers_recovered": self.workers_recovered,
            "restarts_per_shard": {str(shard): count for shard, count in
                                   sorted(self.restarts.items())},
            "degraded": self.degraded_reason is not None,
            "degraded_reason": self.degraded_reason,
            "events": list(self.events),
        }
