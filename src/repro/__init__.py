"""NotebookOS reproduction.

``repro`` is a simulation-based reproduction of *NotebookOS: A Replicated
Notebook Platform for Interactive Training with On-Demand GPUs*
(ASPLOS 2026).  It provides:

* ``repro.simulation`` — a discrete-event engine, latency-modelled network,
  and seeded distributions;
* ``repro.raft`` — a from-scratch Raft consensus implementation;
* ``repro.cluster`` — GPU servers, containers, a pre-warmed container pool,
  a distributed data store, and a VM provisioner;
* ``repro.jupyter`` — the Jupyter messaging layer, sessions and clients;
* ``repro.statesync`` — AST-based kernel state analysis and replication;
* ``repro.core`` — the NotebookOS control plane (global/local schedulers,
  distributed kernels, executor election, migration, auto-scaling);
* ``repro.policies`` — the Reservation, Batch, NotebookOS, LCP, and Oracle
  scheduling policies used in the paper's evaluation;
* ``repro.workload`` — synthetic IDLT/BDLT trace generators calibrated to the
  published AdobeTrace / PhillyTrace / AlibabaTrace statistics;
* ``repro.metrics`` / ``repro.analysis`` — the metrics, cost model, and
  analysis helpers used to regenerate every figure in the paper;
* ``repro.experiments`` — named scenarios, parameter sweeps, a parallel
  runner, and a persistent content-addressed result store (see
  EXPERIMENTS.md; CLI: ``python -m repro.experiments``);
* ``repro.api`` — the unified simulation façade: the :class:`Simulation`
  builder, typed :class:`RunSpec`, the pluggable policy registry
  (``@register_policy``), and the lifecycle hook bus;
* ``repro.profiling`` — hook-bus run profiling: per-phase wall time,
  event-class counters, and engine dispatch statistics (CLI:
  ``python -m repro.experiments profile``).

Quickstart::

    from repro.api import Simulation

    result = Simulation.from_scenario("smoke", policy="notebookos").run()
    print(result.summary())

(``repro.run_experiment`` remains as a deprecated shim over the façade.)

The heavyweight platform symbols are imported lazily (PEP 562) so that the
substrate packages (``repro.simulation``, ``repro.raft``, …) can be used on
their own without pulling in the full control plane.
"""

from repro.version import __version__

__all__ = [
    "ClusterConfig",
    "NotebookOSPlatform",
    "PlatformConfig",
    "api",
    "run_experiment",
    "__version__",
]

_LAZY_EXPORTS = {
    "NotebookOSPlatform": ("repro.core.platform", "NotebookOSPlatform"),
    "run_experiment": ("repro.core.platform", "run_experiment"),
    "ClusterConfig": ("repro.core.config", "ClusterConfig"),
    "PlatformConfig": ("repro.core.config", "PlatformConfig"),
}


def __getattr__(name: str):
    """Lazily resolve the top-level platform exports."""
    import importlib

    if name == "api":
        module = importlib.import_module("repro.api")
        globals()[name] = module
        return module
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    module = importlib.import_module(module_name)
    value = getattr(module, attribute)
    globals()[name] = value
    return value
