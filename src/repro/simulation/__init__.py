"""Discrete-event simulation substrate.

This package provides the simulation kernel on which every other part of the
NotebookOS reproduction runs: a generator-based discrete-event engine
(:mod:`repro.simulation.engine`), waitable events and queues
(:mod:`repro.simulation.events`), a latency-modelled message-passing network
(:mod:`repro.simulation.network`), and seeded random distributions
(:mod:`repro.simulation.distributions`).

The engine is deliberately SimPy-like: simulation *processes* are Python
generators that ``yield`` waitable objects (timeouts, events, other
processes).  All NotebookOS components — schedulers, kernel replicas, Raft
nodes, clients — are implemented as such processes, which lets multi-day
workloads execute in seconds of wall-clock time while exercising the same
control-plane logic a real deployment would.
"""

from repro.simulation.engine import Environment, Process, SimulationError
from repro.simulation.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.simulation.queues import PriorityStore, Resource, Store
from repro.simulation.network import Link, Message, Network, NetworkAddress
from repro.simulation.distributions import (
    BoundedParetoSampler,
    EmpiricalSampler,
    ExponentialSampler,
    LogNormalSampler,
    PiecewiseCDFSampler,
    SeededRandom,
    constant,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "BoundedParetoSampler",
    "EmpiricalSampler",
    "Environment",
    "Event",
    "ExponentialSampler",
    "Interrupt",
    "Link",
    "LogNormalSampler",
    "Message",
    "Network",
    "NetworkAddress",
    "PiecewiseCDFSampler",
    "PriorityStore",
    "Process",
    "Resource",
    "SeededRandom",
    "SimulationError",
    "Store",
    "Timeout",
    "constant",
]
