"""Seeded random-variate samplers used by workloads and latency models.

Every sampler is constructed from a :class:`SeededRandom` (or an explicit
seed), so all simulations in the reproduction are deterministic and
repeatable.  The samplers intentionally cover the families needed to match
the workload statistics published in the NotebookOS paper:

* :class:`LogNormalSampler` — heavy-tailed task durations,
* :class:`ExponentialSampler` — memoryless inter-arrival components,
* :class:`BoundedParetoSampler` — long tails with hard caps,
* :class:`PiecewiseCDFSampler` — distributions specified directly from the
  percentile tables the paper reports (e.g. AdobeTrace task-duration
  percentiles in §2.3.1),
* :class:`EmpiricalSampler` — resampling from observed values.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Optional, Sequence


class SeededRandom(random.Random):
    """A :class:`random.Random` with named sub-streams.

    ``substream(name)`` derives an independent, deterministic generator from
    the parent seed, so different components (workload, network, failures)
    never perturb each other's sequences.
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self._seed_value = seed

    @property
    def seed_value(self) -> int:
        return self._seed_value

    def substream(self, name: str) -> "SeededRandom":
        """Derive an independent generator keyed by ``name``.

        The derivation uses a stable cryptographic digest rather than
        :func:`hash` so that simulations are reproducible across processes
        (Python randomizes string hashing per interpreter run).
        """
        digest = hashlib.md5(f"{self._seed_value}:{name}".encode()).digest()
        derived = int.from_bytes(digest[:4], "little") & 0x7FFFFFFF
        return SeededRandom(derived)


class LogNormalSampler:
    """Samples log-normal variates parameterised by median and sigma."""

    def __init__(self, median: float, sigma: float, rng: SeededRandom,
                 minimum: float = 0.0, maximum: Optional[float] = None) -> None:
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.mu = math.log(median)
        self.sigma = sigma
        self.minimum = minimum
        self.maximum = maximum
        self._rng = rng

    def sample(self) -> float:
        value = self._rng.lognormvariate(self.mu, self.sigma)
        value = max(self.minimum, value)
        if self.maximum is not None:
            value = min(self.maximum, value)
        return value


class ExponentialSampler:
    """Samples exponential variates with a given mean."""

    def __init__(self, mean: float, rng: SeededRandom, minimum: float = 0.0) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self.mean = mean
        self.minimum = minimum
        self._rng = rng

    def sample(self) -> float:
        return max(self.minimum, self._rng.expovariate(1.0 / self.mean))


class BoundedParetoSampler:
    """Samples from a Pareto distribution truncated to ``[lower, upper]``."""

    def __init__(self, alpha: float, lower: float, upper: float,
                 rng: SeededRandom) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if not 0 < lower < upper:
            raise ValueError(f"require 0 < lower < upper, got {lower}, {upper}")
        self.alpha = alpha
        self.lower = lower
        self.upper = upper
        self._rng = rng

    def sample(self) -> float:
        alpha, low, high = self.alpha, self.lower, self.upper
        u = self._rng.random()
        ratio = (low / high) ** alpha
        value = low / ((1.0 - u * (1.0 - ratio)) ** (1.0 / alpha))
        return min(high, max(low, value))


class PiecewiseCDFSampler:
    """Samples from a distribution specified by (percentile, value) knots.

    The knots are linearly interpolated in log-space of the value axis when
    ``log_interpolation`` is true, which matches the log-scaled CDFs the
    paper publishes.  This is the primary tool for reproducing the AdobeTrace,
    PhillyTrace, and AlibabaTrace distributions from their published
    percentiles.
    """

    def __init__(self, knots: Sequence[tuple[float, float]], rng: SeededRandom,
                 log_interpolation: bool = True) -> None:
        if len(knots) < 2:
            raise ValueError("need at least two (percentile, value) knots")
        ordered = sorted(knots)
        percentiles = [p for p, _ in ordered]
        values = [v for _, v in ordered]
        if percentiles[0] < 0.0 or percentiles[-1] > 1.0:
            raise ValueError("percentiles must lie within [0, 1]")
        if any(b <= a for a, b in zip(percentiles, percentiles[1:])):
            raise ValueError("percentiles must be strictly increasing")
        if any(v <= 0 for v in values) and log_interpolation:
            raise ValueError("log interpolation requires positive values")
        self.percentiles = percentiles
        self.values = values
        self.log_interpolation = log_interpolation
        self._rng = rng

    def quantile(self, q: float) -> float:
        """Inverse CDF evaluated at ``q`` in [0, 1]."""
        q = min(max(q, self.percentiles[0]), self.percentiles[-1])
        for i in range(len(self.percentiles) - 1):
            p_lo, p_hi = self.percentiles[i], self.percentiles[i + 1]
            if p_lo <= q <= p_hi:
                frac = 0.0 if p_hi == p_lo else (q - p_lo) / (p_hi - p_lo)
                v_lo, v_hi = self.values[i], self.values[i + 1]
                if self.log_interpolation:
                    return math.exp(math.log(v_lo) + frac * (math.log(v_hi) - math.log(v_lo)))
                return v_lo + frac * (v_hi - v_lo)
        return self.values[-1]

    def sample(self) -> float:
        return self.quantile(self._rng.random())


class EmpiricalSampler:
    """Resamples uniformly from a list of observed values."""

    def __init__(self, values: Sequence[float], rng: SeededRandom) -> None:
        if not values:
            raise ValueError("empirical sampler needs at least one value")
        self.values = list(values)
        self._rng = rng

    def sample(self) -> float:
        return self._rng.choice(self.values)


def constant(value: float):
    """Return a zero-argument callable that always yields ``value``.

    Useful as a latency function for deterministic links.
    """
    def _sample() -> float:
        return value
    return _sample
