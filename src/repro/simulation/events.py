"""Waitable event primitives for the discrete-event engine.

Events are the unit of coordination in the simulation: a process ``yield``\\ s
an event and is resumed when that event is *triggered* (either successfully,
with a value, or with an exception).  The engine (:mod:`repro.simulation.engine`)
owns the event queue; this module only defines the event objects themselves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.simulation.engine import Environment


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupting party supplies a ``cause`` describing why the process was
    interrupted (for example, a migration request arriving while a kernel
    replica is idle-waiting).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """A one-shot waitable event.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it, which schedules it with the environment; once the scheduler
    pops it, every registered callback runs and waiting processes resume.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been triggered (scheduled for processing)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event was triggered successfully (no exception)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The value the event was triggered with.

        Raises the failure exception if the event failed.
        """
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._triggered = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Processes waiting on the event will have ``exception`` raised at their
        ``yield`` statement.
        """
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.env.schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed."""
        if self.callbacks is None:
            # Already processed: run immediately so late waiters still resume.
            callback(self)
        else:
            self.callbacks.append(callback)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks is None:
            return
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now:.3f}>"


class Timeout(Event):
    """An event that triggers automatically after ``delay`` simulation time."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env.schedule(self, delay=delay)


class ConditionEvent(Event):
    """Base class for events composed of several child events."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        self._completed: dict[Event, Any] = {}
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event._exception)  # noqa: SLF001 - intentional propagation
            return
        self._completed[event] = event.value
        if self._is_satisfied():
            self.succeed(dict(self._completed))

    def _is_satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Triggers once *all* child events have triggered successfully."""

    def _is_satisfied(self) -> bool:
        return len(self._completed) == len(self.events)


class AnyOf(ConditionEvent):
    """Triggers once *any* child event has triggered successfully."""

    def _is_satisfied(self) -> bool:
        return len(self._completed) >= 1
