"""Waitable event primitives for the discrete-event engine.

Events are the unit of coordination in the simulation: a process ``yield``\\ s
an event and is resumed when that event is *triggered* (either successfully,
with a value, or with an exception).  The engine (:mod:`repro.simulation.engine`)
owns the event queue; this module only defines the event objects themselves.

Events are the single most-allocated objects in a run (one ``Timeout`` per
tick of every periodic loop, one resume per message delivery), so the class
is deliberately allocation-light:

* every event class uses ``__slots__`` — no per-instance ``__dict__``;
* the callback list is lazy: most events have exactly one waiter, which is
  stored directly in the ``_callbacks`` slot; a list is only materialized
  when a second callback registers;
* ``succeed``/``fail`` trigger *at the current time*, so they append the
  event straight to the environment's same-time FIFO lane — no serial, no
  tuple, no heap operation; ``Timeout`` routes through the calendar queue
  (``env._push``), which is a plain list append for most delays.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.simulation.engine import Environment


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupting party supplies a ``cause`` describing why the process was
    interrupted (for example, a migration request arriving while a kernel
    replica is idle-waiting).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interrupt(cause={self.cause!r})"


#: Sentinel stored in ``_callbacks`` once an event has been processed; it
#: doubles as the "processed" flag so no separate boolean slot is needed.
_PROCESSED = object()


class Event:
    """A one-shot waitable event.

    An event starts *untriggered*.  Calling :meth:`succeed` or :meth:`fail`
    triggers it, which schedules it with the environment; once the scheduler
    pops it, every registered callback runs and waiting processes resume.

    Failure escalation (``defused``)
        A failed event normally delivers its exception to whoever waits on
        it.  If the engine processes a failed event and *nothing* marked the
        failure as handled, the exception would previously vanish silently;
        now the engine re-raises it from :meth:`Environment.run` so broken
        simulations fail loudly.  Setting :attr:`defused` to ``True``
        suppresses that escalation.  It is set automatically when

        * a waiting process has the exception thrown at its ``yield`` (the
          waiter is now responsible for it),
        * a condition event absorbs a child's failure, or
        * a process dies of an uncaught :class:`Interrupt` — interruption is
          deliberate cancellation, not an error.
    """

    __slots__ = ("env", "_callbacks", "_value", "_exception", "_triggered",
                 "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._callbacks: Any = None
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self.defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been triggered (scheduled for processing)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already been executed."""
        return self._callbacks is _PROCESSED

    @property
    def ok(self) -> bool:
        """Whether the event was triggered successfully (no exception)."""
        return self._triggered and self._exception is None

    @property
    def callbacks(self) -> Optional[Tuple[Callable[["Event"], None], ...]]:
        """The registered callbacks (``None`` once processed).

        Read-only introspection: a *tuple* snapshot, so the seed engine's
        ``event.callbacks.append(cb)`` idiom fails loudly instead of
        mutating a throwaway copy.  Register via :meth:`add_callback`.
        """
        cbs = self._callbacks
        if cbs is _PROCESSED:
            return None
        if cbs is None:
            return ()
        if type(cbs) is list:
            return tuple(cbs)
        return (cbs,)

    @property
    def value(self) -> Any:
        """The value the event was triggered with.

        Raises the failure exception if the event failed.
        """
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._triggered = True
        self._value = value
        self.env._fifo.append(self)  # triggers at the current time
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Processes waiting on the event will have ``exception`` raised at their
        ``yield`` statement.
        """
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.env._fifo.append(self)  # triggers at the current time
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed."""
        cbs = self._callbacks
        if cbs is _PROCESSED:
            # Already processed: run immediately so late waiters still resume.
            callback(self)
        elif cbs is None:
            self._callbacks = callback
        elif type(cbs) is list:
            cbs.append(callback)
        else:
            self._callbacks = [cbs, callback]

    def _run_callbacks(self) -> None:
        cbs = self._callbacks
        self._callbacks = _PROCESSED
        if cbs is None or cbs is _PROCESSED:
            return
        if type(cbs) is list:
            for callback in cbs:
                callback(self)
        else:
            cbs(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._callbacks is _PROCESSED else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now:.3f}>"


class Timeout(Event):
    """An event that triggers automatically after ``delay`` simulation time.

    Timeouts are created once per tick of every periodic loop, so the
    constructor is pared to the bone: ``_exception`` and ``defused`` are
    class-level constants (shadowing the :class:`Event` slots) because a
    timeout can never fail — reads fall through to the class, and the two
    per-instance writes are saved.  ``fail()`` on a timeout is already
    impossible: it is born triggered.  As a consequence these two
    attributes are *read-only* on timeouts: ``timeout.defused = True``
    raises ``AttributeError`` — which is correct, since there can never be
    a failure to defuse.
    """

    __slots__ = ("delay",)

    _exception = None
    defused = False

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.env = env
        self.delay = delay
        self._callbacks = None
        self._value = value
        self._triggered = True
        now = env._now
        time = now + delay
        if time == now:
            env._fifo.append(self)
        else:
            env._push(time, self)


class ConditionEvent(Event):
    """Base class for events composed of several child events."""

    __slots__ = ("events", "_completed")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        # Event.__init__ and add_callback inlined: one AllOf is built per
        # fan-out (replica starts, session joins), right on the hot path.
        self.env = env
        self._callbacks = None
        self._value = None
        self._exception = None
        self._triggered = False
        self.defused = False
        if type(events) is not list:
            events = list(events)
        self.events = events
        self._completed: dict[Event, Any] = {}
        if not events:
            self.succeed({})
            return
        on_child = self._on_child
        for event in events:
            cbs = event._callbacks
            if cbs is _PROCESSED:
                on_child(event)
            elif cbs is None:
                event._callbacks = on_child
            elif type(cbs) is list:
                cbs.append(on_child)
            else:
                event._callbacks = [cbs, on_child]

    def _on_child(self, event: Event) -> None:
        # ``event.ok`` inlined: _on_child only ever sees processed (and
        # therefore triggered) events, so "not ok" reduces to "failed".
        if event._exception is not None:
            # The condition adopts the child's failure: it either propagates
            # it to its own waiters below, or (if already triggered) absorbs
            # it — either way the child's failure is handled.
            event.defused = True
            if not self._triggered:
                self.fail(event._exception)  # noqa: SLF001 - intentional propagation
            return
        if self._triggered:
            return
        self._completed[event] = event._value
        if self._is_satisfied():
            # _completed is never mutated after triggering, so it is handed
            # out as the value without a defensive copy.
            self.succeed(self._completed)

    def _is_satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Triggers once *all* child events have triggered successfully."""

    __slots__ = ()

    def _is_satisfied(self) -> bool:
        return len(self._completed) == len(self.events)

    def _on_child(self, event: Event) -> None:
        # ConditionEvent._on_child with the satisfaction check and the
        # ``ok`` property inlined: one AllOf child completes per replica
        # start / session join, so both dispatches are worth skipping.
        if event._exception is not None:
            event.defused = True
            if not self._triggered:
                self.fail(event._exception)  # noqa: SLF001
            return
        if self._triggered:
            return
        completed = self._completed
        completed[event] = event._value  # noqa: SLF001
        if len(completed) == len(self.events):
            self.succeed(completed)


class AnyOf(ConditionEvent):
    """Triggers once *any* child event has triggered successfully."""

    __slots__ = ()

    def _is_satisfied(self) -> bool:
        return len(self._completed) >= 1

    def _on_child(self, event: Event) -> None:
        if event._exception is not None:
            event.defused = True
            if not self._triggered:
                self.fail(event._exception)  # noqa: SLF001
            return
        if self._triggered:
            return
        self._completed[event] = event._value  # noqa: SLF001
        self.succeed(self._completed)
