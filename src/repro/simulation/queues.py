"""Queueing primitives built on top of the event engine.

These primitives carry messages and model contended resources:

* :class:`Store` — an unbounded FIFO queue of items with waitable ``get``.
* :class:`PriorityStore` — like :class:`Store`, but items are retrieved in
  priority order (used e.g. by FCFS-with-priority schedulers).
* :class:`Resource` — a counting resource with waitable ``request``; used to
  model bounded pools such as per-host GPU slots or provisioning concurrency.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Optional

from repro.simulation.engine import Environment
from repro.simulation.events import Event


class Store:
    """An unbounded FIFO store with waitable retrieval."""

    def __init__(self, env: Environment, name: str = "store") -> None:
        self.env = env
        self.name = name
        self._items: list[Any] = []
        self._getters: list[Event] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list[Any]:
        """A snapshot of the currently queued items."""
        return list(self._items)

    def put(self, item: Any) -> None:
        """Add ``item`` to the store, waking one waiting getter if any."""
        self._items.append(item)
        self._dispatch()

    def get(self) -> Event:
        """Return an event that triggers with the next available item."""
        getter = self.env.event()
        self._getters.append(getter)
        self._dispatch()
        return getter

    def _dispatch(self) -> None:
        while self._items and self._getters:
            getter = self._getters.pop(0)
            if getter.triggered:
                continue
            getter.succeed(self._items.pop(0))


class PriorityStore(Store):
    """A store whose items are retrieved in ascending priority order."""

    def __init__(self, env: Environment, name: str = "priority-store") -> None:
        super().__init__(env, name=name)
        self._heap: list[tuple[Any, int, Any]] = []
        self._sequence = count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> list[Any]:
        return [item for _, _, item in sorted(self._heap)]

    def put(self, item: Any, priority: Any = 0) -> None:  # type: ignore[override]
        heapq.heappush(self._heap, (priority, next(self._sequence), item))
        self._dispatch()

    def _dispatch(self) -> None:
        while self._heap and self._getters:
            getter = self._getters.pop(0)
            if getter.triggered:
                continue
            _, _, item = heapq.heappop(self._heap)
            getter.succeed(item)


class Resource:
    """A counting resource with ``capacity`` identical slots.

    ``request`` returns an event that triggers once a slot is available;
    ``release`` frees a slot.  The :meth:`acquire` generator helper combines
    the two into a context usable from a simulation process.
    """

    def __init__(self, env: Environment, capacity: int, name: str = "resource") -> None:
        if capacity < 0:
            raise ValueError(f"resource capacity must be non-negative, got {capacity}")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: list[Event] = []

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - self._in_use

    def request(self) -> Event:
        """Return an event that triggers once a slot has been granted."""
        event = self.env.event()
        self._waiters.append(event)
        self._grant()
        return event

    def release(self) -> None:
        """Release a previously granted slot."""
        if self._in_use <= 0:
            raise RuntimeError(f"release() on {self.name!r} with no slots in use")
        self._in_use -= 1
        self._grant()

    def resize(self, capacity: int) -> None:
        """Change the capacity (used when hosts gain or lose devices)."""
        if capacity < 0:
            raise ValueError(f"resource capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self._grant()

    def _grant(self) -> None:
        while self._waiters and self._in_use < self.capacity:
            waiter = self._waiters.pop(0)
            if waiter.triggered:
                continue
            self._in_use += 1
            waiter.succeed(self)

    def acquire(self, body: Optional[Generator[Event, Any, Any]] = None
                ) -> Generator[Event, Any, Any]:
        """Acquire a slot, optionally run ``body``, then release the slot."""
        yield self.request()
        try:
            if body is not None:
                result = yield self.env.process(body)
                return result
            return None
        finally:
            self.release()
