"""The discrete-event simulation engine.

:class:`Environment` owns the simulation clock and the pending-event queue.
:class:`Process` wraps a Python generator so that it can participate in the
simulation: each time the generator ``yield``\\ s an :class:`~repro.simulation.events.Event`
the process suspends until that event is processed.

The engine is single-threaded and fully deterministic: two runs with the same
seeds and the same process structure produce identical schedules.

Dispatch order
--------------
Every scheduled entry is dispatched in ``(time, serial)`` order, where the
serial reflects scheduling order — exactly the order a single global
``(time, serial, item)`` heap would produce.  That contract is what the
golden-metrics digests and the serial-vs-parallel determinism suite pin;
every structure below is an *implementation* of it, never a relaxation.

Calendar queue
--------------
The pending-event queue is a three-tier calendar queue instead of one
global heap (this is the hottest data structure in the repository — the
90-day summer trace pops millions of entries):

* **same-time lane** — entries scheduled at exactly the current simulation
  time (process bootstraps, ``succeed``/``fail``, completions, interrupt
  deliveries, zero-delay timeouts) go to a plain FIFO deque: no heap
  entry, no ``(time, serial, item)`` tuple, no serial minted.  FIFO order
  *is* serial order for same-time entries, because serials are monotonic.
* **near-future buckets** — entries within ``num_buckets * bucket_width``
  seconds of the window base land in a fixed-width time bucket.  Future
  buckets are plain lists (schedule = ``append``, O(1), no comparisons);
  a bucket is heapified once, lazily, when the clock enters it, after
  which pops and same-bucket inserts are heap operations on a *small*
  heap.  Bucket placement ``int((t - base) / width)`` is monotonic in
  ``t``, so cross-bucket order is correct even at float boundaries.
* **overflow heap** — entries beyond the window go to an ordinary heap
  and migrate into the buckets when the window is re-based onto them.
  Far-future/irregular events (session starts hours ahead, multi-minute
  task durations, stale interrupted sleeps) pay one extra pop+append.

Fused same-timestamp dispatch
-----------------------------
The run loops dispatch one *batch* per distinct timestamp: all bucket
entries at that time, then the same-time FIFO (which may grow while it
drains), without re-entering the outer loop — the clock is written once
per batch and the ``until`` bound is checked once per batch.  New entries
cannot land ahead of the batch cursor: scheduling *at* the current time
goes to the FIFO (by definition after everything already queued at that
time, which holds smaller serials), and scheduling later goes to a
bucket/overflow position the batch has already passed.

Failed events whose exception nobody handled are re-raised out of the run
loop unless they are *defused* — see :class:`~repro.simulation.events.Event`.
"""

from __future__ import annotations

import heapq
from heapq import heapify, heappush
from itertools import count
from types import GeneratorType
from typing import Any, Generator, Iterable, Optional

from repro.simulation.events import _PROCESSED, Event, Interrupt, Timeout

#: Default calendar geometry.  The width is sized so the simulator's dense
#: short delays (network hops, processing delays, election latencies, sleeps
#: of a few seconds) spread across a handful of small buckets, while the
#: window (width * count = 256 s) still covers container cold starts and the
#: relaxed control-loop intervals without touching the overflow heap.
BUCKET_WIDTH = 0.25
NUM_BUCKETS = 1024


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class _Call:
    """A bare scheduled callback: the cheapest possible queue entry.

    Implements just enough of the event-dispatch protocol (``_callbacks``,
    ``_exception``, ``_value``) for the engine's dispatch loops —
    and for :meth:`Process._resume` — to treat it like a processed-on-pop
    event that succeeded with ``None``.  Used for process bootstrap,
    interrupt delivery, and deferred internal callbacks
    (:meth:`Environment.defer`), where a full :class:`Event` would be wasted
    allocation.
    """

    __slots__ = ("_callbacks", "_exception", "_value", "payload")

    # _exception/_value are real slots (not class-level constants): the
    # reusable per-process sleep stub is popped many times, and a slot read
    # beats an MRO lookup on every one of those pops.  ``payload`` is an
    # optional uninitialized slot for callbacks that need one argument
    # (e.g. the Interrupt instance an interrupt delivery will throw).

    def __init__(self, fn) -> None:
        self._callbacks = fn
        self._exception = None
        self._value = None


_call_new = _Call.__new__


class Process(Event):
    """A running simulation process.

    A process is itself an event: it triggers (with the generator's return
    value) when the generator finishes, so other processes can ``yield`` it to
    wait for completion.
    """

    __slots__ = ("_name", "_generator", "_waiting_on", "_resume_cb",
                 "_sleep_call")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any],
                 name: Optional[str] = None) -> None:
        if type(generator) is not GeneratorType and not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}")
        # Event.__init__ inlined: processes are created once per task/session.
        # _value is deliberately left unset — the completion paths always
        # write it (or _exception) before anything reads it.
        self.env = env
        self._callbacks = None
        self._exception = None
        self._triggered = False
        self.defused = False
        self._name = name
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Bind the resume callback once; it is registered on every event this
        # process ever waits for.  The bootstrap entry reuses it too: a _Call
        # looks like an event that succeeded with None, so popping it drives
        # the first generator step through the same fast path as any resume.
        resume = self._resume
        self._resume_cb = resume
        call = _Call(resume)
        # The bootstrap stub doubles as this process's reusable sleep stub:
        # a process waits on at most one sleep at a time, so once the stub
        # has been popped it can carry the next ``yield delay`` — zero
        # allocations per sleep in the steady state.
        self._sleep_call = call
        env._fifo.append(call)  # bootstrap runs at the current time

    @property
    def name(self) -> str:
        """The process name (defaults to the generator's function name)."""
        return self._name or getattr(self._generator, "__name__", "process")

    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self._triggered:
            return
        call = _Call(self._deliver_interrupt)
        call.payload = Interrupt(cause)
        self.env._fifo.append(call)  # delivery at the current time

    def _deliver_interrupt(self, call: _Call) -> None:
        if not self._triggered:
            self._step(throw=call.payload)

    def _resume(self, event: Event) -> None:
        # This is the hottest callback in the engine (every timeout tick and
        # message delivery lands here), so _step's body is inlined — one
        # Python call per resume instead of two — and the waiter
        # registration skips Event.add_callback for the empty-slot case.
        if self._triggered:
            return
        waiting = self._waiting_on
        if event is not waiting and waiting is not None:
            # A stale wake-up (e.g. the event we were interrupted away from).
            return
        # _waiting_on is deliberately NOT reset here: a finished process
        # ignores every further wake-up via the _triggered guard above, and
        # a process that keeps running overwrites it at its next yield.
        try:
            exc = event._exception  # noqa: SLF001 - engine-internal fast path
            if exc is None:
                target = self._generator.send(event._value)  # noqa: SLF001
            else:
                # The exception is about to be thrown at this process's
                # yield: from here on, handling it is this process's
                # responsibility.
                event.defused = True
                target = self._generator.throw(exc)
        except StopIteration as stop:
            # _finish inlined: trigger this process's completion event.
            if not self._triggered:
                self._triggered = True
                self._value = stop.value
                self.env._fifo.append(self)
            return
        except Interrupt as interrupt:
            if not self._triggered:
                self._triggered = True
                self._exception = interrupt
                # Deliberate cancellation, not an engine-level error.
                self.defused = True
                self.env._fifo.append(self)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            if not self._triggered:
                self._triggered = True
                self._exception = exc
                self.env._fifo.append(self)
            return

        cls = target.__class__
        if cls is float or cls is int:
            # Sleep fast path: ``yield delay`` parks the process for ``delay``
            # seconds without allocating an Event at all — just the queue
            # stub.  Scheduling order is identical to
            # ``yield env.timeout(delay)``.
            if target >= 0:
                call = self._sleep_call
                if call._callbacks is _PROCESSED:
                    call._callbacks = self._resume_cb
                else:
                    # The stub is still pending in the queue (we were
                    # interrupted away from it); it must keep its identity so
                    # the stale-wake-up guard can reject it when it pops.
                    call = _Call(self._resume_cb)
                    self._sleep_call = call
                self._waiting_on = call  # type: ignore[assignment]
                # This is the hottest schedule site in the engine (every
                # sleep of every process): same-time sleeps take the FIFO
                # lane directly; the rest inlines the _put placement (a
                # second call frame costs more than the slot reads here).
                # Keep in sync with Environment._put.
                env = self.env
                now = env._now
                time = now + target
                if time == now:
                    env._fifo.append(call)
                else:
                    offset = time - env._base
                    if offset >= 0.0:
                        idx = int(offset * env._inv_width)
                        if idx < env._nbuckets:
                            entry = (time, env._mint(), call)
                            if idx > env._cur:
                                env._buckets[idx].append(entry)
                                if idx > env._max:
                                    env._max = idx
                            else:
                                heappush(env._inc, entry)
                        else:
                            heappush(env._overflow,
                                     (time, env._mint(), call))
                    else:
                        env._put(time, call)  # cold: window rebuild
            else:
                self._finish(exception=SimulationError(
                    f"process {self.name!r} yielded a negative sleep: {target!r}"))
        elif cls is Timeout or isinstance(target, Event):
            self._waiting_on = target
            cbs = target._callbacks  # noqa: SLF001 - add_callback inlined
            if cbs is None:
                target._callbacks = self._resume_cb
            elif cbs is _PROCESSED:  # late waiter resumes now
                self._resume(target)
            elif type(cbs) is list:
                cbs.append(self._resume_cb)
            else:
                target._callbacks = [cbs, self._resume_cb]
        else:
            self._finish(exception=SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except Interrupt as interrupt:
            self._finish(exception=interrupt)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            self._finish(exception=exc)
            return

        cls = target.__class__
        if cls is float or cls is int:
            # Cold path (one _step per interrupt delivery): delegate to the
            # shared helper rather than duplicating _resume's inline copy.
            self._park_for_sleep(target)
        elif isinstance(target, Event):
            self._waiting_on = target
            target.add_callback(self._resume_cb)
        else:
            self._finish(exception=SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))

    def _park_for_sleep(self, delay) -> None:
        """Park this process for ``delay`` seconds (the ``yield number`` form).

        Single source of truth for the sleep-stub reuse rules; _resume
        inlines an identical copy for speed — keep the two in sync.
        """
        if delay >= 0:
            call = self._sleep_call
            if call._callbacks is _PROCESSED:
                call._callbacks = self._resume_cb
            else:
                # The stub is still pending in the queue (we were interrupted
                # away from it); it must keep its identity so the stale-wake-
                # up guard can reject it when it pops.
                call = _Call(self._resume_cb)
                self._sleep_call = call
            self._waiting_on = call  # type: ignore[assignment]
            env = self.env
            now = env._now
            time = now + delay
            if time == now:
                env._fifo.append(call)
            else:
                env._put(time, call)
        else:
            self._finish(exception=SimulationError(
                f"process {self.name!r} yielded a negative sleep: {delay!r}"))

    def _finish(self, value: Any = None, exception: Optional[BaseException] = None) -> None:
        # succeed()/fail() inlined: _finish runs once per completed process
        # and has already established that the event is untriggered.
        self._waiting_on = None
        if self._triggered:
            return
        self._triggered = True
        if exception is not None:
            self._exception = exception
            if isinstance(exception, Interrupt):
                # Dying of an uncaught Interrupt is deliberate cancellation
                # (e.g. RaftNode.stop tearing down its loops), not an error
                # the engine should escalate.  Waiters still receive it.
                self.defused = True
        else:
            self._value = value
        self.env._fifo.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._triggered else "alive"
        return f"<Process {self.name} {state}>"


class Environment:
    """Owns simulation time and the scheduled-event calendar queue.

    The factory helpers ``event``/``timeout``/``process`` are *instance*
    attributes (closures created in ``__init__``) rather than methods: the
    call sites are the hottest allocation points in the simulator, and a
    closure call skips both the per-call bound-method allocation and — for
    ``timeout`` and ``event`` — the type-call/``__init__`` dispatch, writing
    the slots directly.  Their behaviour is identical to calling the
    ``Timeout``/``Event``/``Process`` constructors.

    The current bucket is kept *sorted* (one C sort when the clock enters
    it) and drained through a cursor — a fused same-timestamp batch is a
    contiguous slice, dispatched with one list read per entry instead of a
    heappop.  Entries that land at or before the current bucket after it
    was sorted go to a small *incursion* heap (``_inc``); its entries
    always carry larger serials than same-time cursor entries, so draining
    cursor-then-incursion preserves exact ``(time, serial)`` order.

    ``bucket_width``/``num_buckets`` tune the calendar window (see the
    module docstring); the defaults fit the simulator's delay mix, and the
    engine tests shrink them to force bucket-boundary and rebase paths.
    """

    __slots__ = ("_now", "_counter", "_mint", "_serials",
                 "_fifo", "_buckets", "_cur", "_cur_list", "_pos", "_inc",
                 "_max", "_overflow",
                 "_base", "_inv_width", "_nbuckets", "_push", "_put",
                 "event", "timeout", "at", "process", "defer",
                 "_stat_disp", "_stat_batches",
                 "_stat_overflow", "_stat_rebases")

    def __init__(self, initial_time: float = 0.0,
                 bucket_width: float = BUCKET_WIDTH,
                 num_buckets: int = NUM_BUCKETS) -> None:
        now = float(initial_time)
        self._now = now
        counter = count()
        self._counter = counter
        mint = counter.__next__
        self._mint = mint
        self._serials: dict[str, int] = {}

        # Calendar-queue state (see the module docstring for the tiers).
        from collections import deque

        fifo: Any = deque()
        self._fifo = fifo
        buckets: list[list] = [[] for _ in range(num_buckets)]
        self._buckets = buckets
        self._cur = 0            # index of the current (sorted) bucket
        self._cur_list = buckets[0]
        self._pos = 0            # dispatch cursor into _cur_list
        inc: list[tuple] = []    # incursions at/before the current bucket
        self._inc = inc
        self._max = 0            # upper-bound hint of the highest nonempty bucket
        overflow: list[tuple] = []
        self._overflow = overflow
        self._base = now         # time of bucket 0's left edge
        inv_width = 1.0 / bucket_width
        self._inv_width = inv_width
        self._nbuckets = num_buckets
        self._stat_disp = 0
        self._stat_batches = 0
        self._stat_overflow = 0
        self._stat_rebases = 0

        push = self._schedule_entry
        self._push = push            # slot read beats a descriptor bind
        fifo_append = fifo.append

        def put(time: float, item: Any, _mint=mint, _heappush=heappush,
                _buckets=buckets, _inc=inc, _overflow=overflow,
                _inv_w=inv_width, _n=num_buckets) -> None:
            """Place a ``(time, serial, item)`` entry (``time > now``).

            Canonical tuple placement: an O(1) append for buckets past the
            current one; the incursion heap for the current bucket (and,
            after a stopped-early rebase, for times before it); the
            overflow heap beyond the window.  Immutable structure (the list objects, the
            geometry, the serial minter) is bound once as defaults; the
            ``timeout``/``at``/``defer`` closures inline this body to save
            their callers a frame — keep them in sync.
            """
            offset = time - self._base
            if offset >= 0.0:
                idx = int(offset * _inv_w)
                if idx < _n:
                    entry = (time, _mint(), item)
                    if idx > self._cur:
                        _buckets[idx].append(entry)
                        if idx > self._max:
                            self._max = idx
                    else:
                        _heappush(_inc, entry)
                else:
                    _heappush(_overflow, (time, _mint(), item))
            else:
                # time < base: only possible after run(until=t) stopped
                # short of a rebased window.  Re-anchor and place again.
                self._rebuild(time)
                put(time, item)

        self._put = put

        # NOTE: these closures mirror Timeout.__init__ / Event.__init__ in
        # events.py slot for slot, and inline ``put`` above; keep them in
        # sync.
        timeout_new = Timeout.__new__

        def timeout(delay: float, value: Any = None,
                    _new=timeout_new, _cls=Timeout, _mint=mint,
                    _heappush=heappush, _buckets=buckets, _inc=inc,
                    _overflow=overflow, _inv_w=inv_width,
                    _n=num_buckets) -> Timeout:
            """Create a timeout event that triggers after ``delay`` seconds."""
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            t = _new(_cls)
            t.env = self
            t.delay = delay
            t._callbacks = None
            t._value = value
            t._triggered = True
            now = self._now
            time = now + delay
            if time == now:
                fifo_append(t)
                return t
            offset = time - self._base
            if offset >= 0.0:
                idx = int(offset * _inv_w)
                if idx < _n:
                    entry = (time, _mint(), t)
                    if idx > self._cur:
                        _buckets[idx].append(entry)
                        if idx > self._max:
                            self._max = idx
                    else:
                        _heappush(_inc, entry)
                else:
                    _heappush(_overflow, (time, _mint(), t))
            else:
                push(time, t)  # cold: window rebuild
            return t

        self.timeout = timeout

        def at(time: float, value: Any = None,
               _new=timeout_new, _cls=Timeout, _mint=mint,
               _heappush=heappush, _buckets=buckets, _inc=inc,
               _overflow=overflow, _inv_w=inv_width,
               _n=num_buckets) -> Timeout:
            """A timeout that fires at *absolute* simulation time ``time``.

            ``yield env.at(t)`` parks the process until exactly ``t`` — no
            float round-off from re-deriving a relative delay.  The batched
            request-path fast paths accumulate their per-hop delays into an
            absolute wake-up time with the same float additions the
            individual sleeps performed, then schedule one event at that
            exact time: one queue entry instead of several, with
            bit-identical timestamps.
            """
            now = self._now
            if time < now:
                raise ValueError(
                    f"cannot sleep until {time}: simulation time is already {now}")
            t = _new(_cls)
            t.env = self
            t.delay = time - now
            t._callbacks = None
            t._value = value
            t._triggered = True
            if time == now:
                fifo_append(t)
                return t
            offset = time - self._base
            if offset >= 0.0:
                idx = int(offset * _inv_w)
                if idx < _n:
                    entry = (time, _mint(), t)
                    if idx > self._cur:
                        _buckets[idx].append(entry)
                        if idx > self._max:
                            self._max = idx
                    else:
                        _heappush(_inc, entry)
                else:
                    _heappush(_overflow, (time, _mint(), t))
            else:
                push(time, t)  # cold: window rebuild
            return t

        self.at = at

        event_new = Event.__new__

        def event(_new=event_new, _cls=Event) -> Event:
            """Create an untriggered event bound to this environment."""
            e = _new(_cls)
            e.env = self
            e._callbacks = None
            e._value = None
            e._exception = None
            e._triggered = False
            e.defused = False
            return e

        self.event = event

        process_new = Process.__new__

        def process(generator: Generator[Event, Any, Any],
                    name: Optional[str] = None,
                    _new=process_new, _cls=Process) -> Process:
            """Register ``generator`` as a new simulation process."""
            # Mirrors Process.__init__ slot for slot; keep the two in sync.
            if type(generator) is not GeneratorType \
                    and not hasattr(generator, "send"):
                raise SimulationError(
                    f"process body must be a generator, "
                    f"got {type(generator).__name__}")
            p = _new(_cls)
            p.env = self
            p._callbacks = None
            p._exception = None
            p._triggered = False
            p.defused = False
            p._name = name
            p._generator = generator
            p._waiting_on = None
            resume = p._resume
            p._resume_cb = resume
            call = _Call(resume)
            p._sleep_call = call
            fifo_append(call)
            return p

        self.process = process

        def defer(delay: float, fn, _new=_call_new, _cls=_Call, _mint=mint,
                  _heappush=heappush, _buckets=buckets, _inc=inc,
                  _overflow=overflow, _inv_w=inv_width,
                  _n=num_buckets) -> None:
            """Schedule a bare callback — no :class:`Event` is allocated.

            ``fn`` is invoked with one throwaway argument (the internal queue
            stub) after ``delay`` seconds, ordered exactly as an event
            scheduled at the same moment would be.  Internal plumbing (e.g.
            network message delivery) uses this instead of
            ``timeout(delay).add_callback(fn)``; nothing can wait on a
            deferred call.
            """
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule callback in the past: {delay}")
            c = _new(_cls)
            c._callbacks = fn
            c._exception = None
            c._value = None
            now = self._now
            time = now + delay
            if time == now:
                fifo_append(c)
                return
            offset = time - self._base
            if offset >= 0.0:
                idx = int(offset * _inv_w)
                if idx < _n:
                    entry = (time, _mint(), c)
                    if idx > self._cur:
                        _buckets[idx].append(entry)
                        if idx > self._max:
                            self._max = idx
                    else:
                        _heappush(_inc, entry)
                else:
                    _heappush(_overflow, (time, _mint(), c))
            else:
                push(time, c)  # cold: window rebuild

        self.defer = defer

    @property
    def now(self) -> float:
        """Current simulation time, in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Calendar-queue internals.
    # ------------------------------------------------------------------
    def _schedule_entry(self, time: float, item: Any) -> None:
        """Place ``item`` for dispatch at ``time`` (``time >= now``).

        Same-time entries go to the FIFO lane (no serial, no tuple, no heap
        operation — FIFO order is serial order because serials are
        monotonic); everything else is a ``(time, serial, item)`` tuple
        placed by the bound :attr:`_put` closure.  Serials are minted only
        for tuple entries, so relative order among them is exactly global
        scheduling order.
        """
        if time == self._now:
            self._fifo.append(item)
        else:
            self._put(time, item)

    def _rebuild(self, new_base: float) -> None:
        """Cold path: re-anchor the window at ``new_base`` (< current base).

        Every pending tuple entry — future buckets, the current bucket\'s
        undispatched suffix, the incursion heap — is folded into the
        overflow heap and the window is refilled from it, exactly as a
        rebase would.  Placement stays consistent with the (new) base, so
        dispatch order is unchanged.
        """
        overflow = self._overflow
        lst = self._cur_list
        del lst[:self._pos]          # drop the dispatched prefix
        self._pos = 0
        for bucket in self._buckets:
            if bucket:
                for entry in bucket:
                    heappush(overflow, entry)
                del bucket[:]
        inc = self._inc
        for entry in inc:
            heappush(overflow, entry)
        del inc[:]
        self._base = new_base
        self._cur = 0
        self._cur_list = self._buckets[0]
        self._max = 0
        self._refill()
        self._cur_list.sort()        # _cur == 0 asserts sorted form

    def _refill(self) -> None:
        """Migrate overflow entries that now fall inside the window."""
        overflow = self._overflow
        if not overflow:
            return
        base = self._base
        inv_w = self._inv_width
        n = self._nbuckets
        buckets = self._buckets
        mx = self._max
        migrated = 0
        while overflow:
            idx = int((overflow[0][0] - base) * inv_w)
            if idx >= n:
                break
            buckets[idx].append(heapq.heappop(overflow))
            migrated += 1
            if idx > mx:
                mx = idx
        self._max = mx
        self._stat_overflow += migrated

    def _advance_time(self) -> Optional[float]:
        """Time of the next tuple entry, readying its bucket; ``None`` if none.

        Leaves the cursor (``_cur``/``_cur_list``/``_pos``) and incursion
        heap positioned so their earliest entry is the next one.  Clears a
        drained bucket and sorts the next nonempty one; re-bases the window
        onto the overflow heap when the buckets are exhausted.  The FIFO
        lane is *not* consulted — callers order it explicitly (same-time
        tuple entries first, then FIFO).
        """
        lst = self._cur_list
        pos = self._pos
        inc = self._inc
        if pos < len(lst):
            t = lst[pos][0]
            if inc:
                ti = inc[0][0]
                if ti < t:
                    return ti
            return t
        if inc:
            return inc[0][0]
        # Current bucket (and its incursions) exhausted: clear and scan on.
        if lst:
            del lst[:]
            self._pos = 0
        buckets = self._buckets
        cur = self._cur + 1
        mx = self._max
        while cur <= mx:
            b = buckets[cur]
            if b:
                b.sort()
                self._cur = cur
                self._cur_list = b
                return b[0][0]
            cur += 1
        overflow = self._overflow
        if not overflow:
            return None
        # Rebase the window to start at the earliest overflow time; its
        # entry lands in bucket 0 by construction.
        self._stat_rebases += 1
        self._base = overflow[0][0]
        self._cur = 0
        b = buckets[0]
        self._cur_list = b
        self._max = 0
        self._refill()
        b.sort()
        return b[0][0]

    def _pop_tuple(self) -> Any:
        """Pop the earliest tuple entry (cursor vs incursion); cold path.

        Only :meth:`step` uses this — the run loops inline the same
        selection.  At equal times the cursor entry wins: incursions
        always carry larger serials than same-time cursor entries.
        """
        lst = self._cur_list
        pos = self._pos
        inc = self._inc
        if pos < len(lst):
            entry = lst[pos]
            if inc and inc[0][0] < entry[0]:
                return heapq.heappop(inc)[2]
            self._pos = pos + 1
            return entry[2]
        return heapq.heappop(inc)[2]

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Schedule ``event`` for processing ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past: {delay}")
        self._push(self._now + delay, event)

    def next_serial(self, category: str = "") -> int:
        """A per-environment monotonic serial for ``category`` (1, 2, 3, ...).

        Identifiers minted from process-global counters embed the process\'s
        prior run history, so two runs of the same seeded experiment produce
        different ID strings depending on what ran before them.  Simulation
        components mint IDs from here instead: serials are scoped to one
        environment, keeping every run\'s output identical whether it executes
        first or fiftieth, serially or in a worker process.
        """
        value = self._serials.get(category, 0) + 1
        self._serials[category] = value
        return value

    def dispatch_stats(self) -> dict:
        """Cumulative dispatch counters (engine-structural, always on).

        ``dispatched`` counts processed queue entries, ``batches`` counts
        fused same-timestamp dispatch iterations (``dispatched / batches``
        is the mean fusion factor), ``serials`` counts ``(time, serial,
        item)`` tuple entries ever scheduled (``dispatched - serials`` over
        a run approximates the same-time FIFO-lane share), ``overflow``
        counts entries scheduled beyond the calendar window and later
        migrated into it, and ``rebases`` counts window migrations onto
        the overflow heap.  The :mod:`repro.profiling` subsystem snapshots
        these around a run.
        """
        # itertools.count exposes its next value only through __reduce__;
        # this is a cold introspection path.
        serials = self._counter.__reduce__()[1][0]
        return {
            "dispatched": self._stat_disp,
            "batches": self._stat_batches,
            "serials": serials,
            "overflow": self._stat_overflow,
            "rebases": self._stat_rebases,
        }

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the next scheduled event."""
        t = self._advance_time()
        fifo = self._fifo
        if t is not None and t == self._now:
            # Tuple entries at the current time precede the FIFO lane:
            # they were scheduled earlier, with smaller serials.
            event = self._pop_tuple()
        elif fifo:
            event = fifo.popleft()
        elif t is not None:
            self._now = t
            event = self._pop_tuple()
        else:
            raise SimulationError("no more events to process")
        self._stat_disp += 1
        cbs = event._callbacks
        event._callbacks = _PROCESSED
        if cbs is not None:
            if type(cbs) is list:
                for callback in cbs:
                    callback(event)
            else:
                cbs(event)
        exc = event._exception
        if exc is not None and not event.defused:
            raise exc

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain.

        A pure read: unlike :meth:`_advance_time` it never sorts, clears,
        or re-bases anything, so it is safe to call from *inside* event
        callbacks while a run loop is mid-batch — the loop's cached cursor
        state stays valid.  (:meth:`step`/:meth:`run` themselves are not
        reentrant from callbacks.)
        """
        if self._fifo:
            return self._now
        lst = self._cur_list
        pos = self._pos
        inc = self._inc
        if pos < len(lst):
            t = lst[pos][0]
            if inc and inc[0][0] < t:
                return inc[0][0]
            return t
        if inc:
            return inc[0][0]
        buckets = self._buckets
        for cur in range(self._cur + 1, self._max + 1):
            b = buckets[cur]
            if b:
                # min() over (time, serial, item) tuples: time decides.
                return min(b)[0]
        overflow = self._overflow
        if overflow:
            return overflow[0][0]
        return float("inf")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a time (run
        until the clock reaches it), or an :class:`Event` (run until it has
        been processed, returning its value).

        Raises the exception of any failed event processed along the way
        whose failure nobody handled (see ``Event.defused``).
        """
        if isinstance(until, Event):
            return self._run_until_event(until)
        limit = float("inf") if until is None else float(until)
        if limit < self._now:
            raise SimulationError(
                f"cannot run until {limit}: simulation time is already {self._now}")
        # Hot loop: one fused batch per distinct timestamp — the clock and
        # the bound are touched once per batch, not once per event — with
        # _advance_time\'s fast path (cursor/incursion heads) inlined, so
        # its call only happens on bucket changes.  The cursor position
        # lives in a local and is committed in the ``finally``.
        fifo = self._fifo
        popleft = fifo.popleft
        pop = heapq.heappop
        inc = self._inc
        advance = self._advance_time
        unbounded = limit == float("inf")
        lst = self._cur_list
        pos = self._pos
        n_disp = n_batches = 0
        try:
            while True:
                if fifo:
                    # Entries at the current time (only possible on entry to
                    # run(): the batch body always drains the FIFO).
                    t = self._now
                elif pos < len(lst):
                    t = lst[pos][0]
                    if inc:
                        ti = inc[0][0]
                        if ti < t:
                            t = ti
                    if not unbounded and t > limit:
                        break
                    self._now = t
                elif inc:
                    t = inc[0][0]
                    if not unbounded and t > limit:
                        break
                    self._now = t
                else:
                    self._pos = pos
                    t = advance()
                    lst = self._cur_list
                    pos = self._pos
                    if t is None:
                        break
                    if not unbounded and t > limit:
                        break
                    self._now = t
                n_batches += 1
                # Cursor entries at t: a contiguous sorted slice — one list
                # read per entry.  All their serials precede same-time
                # incursions, which precede same-time FIFO entries.  The
                # slice is stable during the batch (same-time schedules go
                # to the FIFO, later ones to other structures), so its
                # length is hoisted.
                n_lst = len(lst)
                while pos < n_lst:
                    entry = lst[pos]
                    if entry[0] != t:
                        break
                    pos += 1
                    # Committed before the callback runs: peek() (legal
                    # from inside callbacks) reads the slot, not our local.
                    self._pos = pos
                    event = entry[2]
                    n_disp += 1
                    cbs = event._callbacks
                    event._callbacks = _PROCESSED
                    if cbs is not None:
                        if type(cbs) is list:
                            for callback in cbs:
                                callback(event)
                        else:
                            cbs(event)
                    exc = event._exception
                    if exc is not None and not event.defused:
                        raise exc
                while inc and inc[0][0] == t:
                    event = pop(inc)[2]
                    n_disp += 1
                    cbs = event._callbacks
                    event._callbacks = _PROCESSED
                    if cbs is not None:
                        if type(cbs) is list:
                            for callback in cbs:
                                callback(event)
                        else:
                            cbs(event)
                    exc = event._exception
                    if exc is not None and not event.defused:
                        raise exc
                while fifo:
                    event = popleft()
                    n_disp += 1
                    cbs = event._callbacks
                    event._callbacks = _PROCESSED
                    if cbs is not None:
                        if type(cbs) is list:
                            for callback in cbs:
                                callback(event)
                        else:
                            cbs(event)
                    exc = event._exception
                    if exc is not None and not event.defused:
                        raise exc
        finally:
            self._pos = pos
            self._stat_disp += n_disp
            self._stat_batches += n_batches
        if not unbounded:
            self._now = limit
        return None

    def run_until(self, time: float) -> int:
        """Epoch-bounded stepping: advance the clock to exactly ``time``.

        A resumable alternative to ``run(until=time)`` for callers that
        drive the simulation in fixed epochs (the shard runner steps every
        shard to the same barrier time with it).  Events scheduled at
        exactly ``time`` are dispatched *in this epoch* — the bound is
        inclusive and a same-timestamp batch is never split across a
        boundary — so repeated ``run_until`` calls partition the timeline
        exactly like one unbounded run.  Returns the number of events
        dispatched, the per-epoch progress signal the barrier frames carry.
        """
        before = self._stat_disp
        self.run(until=time)
        return self._stat_disp - before

    def _run_until_event(self, until: Event) -> Any:
        if until._callbacks is _PROCESSED:  # noqa: SLF001 - fast path
            return until.value
        # Mirrors run()\'s fused batch loop, with the awaited-event check
        # after every dispatch (events queued behind it stay queued).
        fifo = self._fifo
        popleft = fifo.popleft
        pop = heapq.heappop
        inc = self._inc
        advance = self._advance_time
        processed = _PROCESSED
        lst = self._cur_list
        pos = self._pos
        n_disp = n_batches = 0
        try:
            while True:
                if fifo:
                    t = self._now
                elif pos < len(lst):
                    t = lst[pos][0]
                    if inc:
                        ti = inc[0][0]
                        if ti < t:
                            t = ti
                    self._now = t
                elif inc:
                    t = inc[0][0]
                    self._now = t
                else:
                    self._pos = pos
                    t = advance()
                    lst = self._cur_list
                    pos = self._pos
                    if t is None:
                        raise SimulationError(
                            "event queue drained before the awaited "
                            "event triggered")
                    self._now = t
                n_batches += 1
                n_lst = len(lst)
                while pos < n_lst:
                    entry = lst[pos]
                    if entry[0] != t:
                        break
                    pos += 1
                    # Committed before the callback runs (see run()).
                    self._pos = pos
                    event = entry[2]
                    n_disp += 1
                    cbs = event._callbacks
                    event._callbacks = processed
                    if cbs is not None:
                        if type(cbs) is list:
                            for callback in cbs:
                                callback(event)
                        else:
                            cbs(event)
                    exc = event._exception
                    if exc is not None and not event.defused:
                        raise exc
                    if until._callbacks is processed:  # noqa: SLF001
                        return until.value
                while inc and inc[0][0] == t:
                    event = pop(inc)[2]
                    n_disp += 1
                    cbs = event._callbacks
                    event._callbacks = processed
                    if cbs is not None:
                        if type(cbs) is list:
                            for callback in cbs:
                                callback(event)
                        else:
                            cbs(event)
                    exc = event._exception
                    if exc is not None and not event.defused:
                        raise exc
                    if until._callbacks is processed:  # noqa: SLF001
                        return until.value
                while fifo:
                    event = popleft()
                    n_disp += 1
                    cbs = event._callbacks
                    event._callbacks = processed
                    if cbs is not None:
                        if type(cbs) is list:
                            for callback in cbs:
                                callback(event)
                        else:
                            cbs(event)
                    exc = event._exception
                    if exc is not None and not event.defused:
                        raise exc
                    if until._callbacks is processed:  # noqa: SLF001
                        return until.value
        finally:
            self._pos = pos
            self._stat_disp += n_disp
            self._stat_batches += n_batches

    def run_all(self, processes: Iterable[Process]) -> list[Any]:
        """Run until every process in ``processes`` has finished."""
        results = []
        for process in processes:
            results.append(self.run(until=process))
        return results
