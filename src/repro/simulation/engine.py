"""The discrete-event simulation engine.

:class:`Environment` owns the simulation clock and the pending-event heap.
:class:`Process` wraps a Python generator so that it can participate in the
simulation: each time the generator ``yield``\\ s an :class:`~repro.simulation.events.Event`
the process suspends until that event is processed.

The engine is single-threaded and fully deterministic: two runs with the same
seeds and the same process structure produce identical schedules.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Iterable, Optional

from repro.simulation.events import Event, Interrupt, Timeout


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class Process(Event):
    """A running simulation process.

    A process is itself an event: it triggers (with the generator's return
    value) when the generator finishes, so other processes can ``yield`` it to
    wait for completion.
    """

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any],
                 name: Optional[str] = None) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}")
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick the process off at the current simulation time.
        bootstrap = Event(env)
        bootstrap.succeed()
        bootstrap.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self.is_alive:
            return
        interrupt_event = Event(self.env)
        interrupt_event.succeed(Interrupt(cause))
        interrupt_event.defused = True  # type: ignore[attr-defined]
        interrupt_event.add_callback(self._resume_with_interrupt)

    def _resume_with_interrupt(self, event: Event) -> None:
        if not self.is_alive:
            return
        self._step(throw=event.value)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        if self._waiting_on is not None and event is not self._waiting_on:
            # A stale wake-up (e.g. the event we were interrupted away from).
            return
        self._waiting_on = None
        if event.ok:
            self._step(send=event.value)
        else:
            self._step(throw=event._exception)  # noqa: SLF001

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        self.env._active_process = self
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except Interrupt as interrupt:
            self._finish(exception=interrupt)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into waiters
            self._finish(exception=exc)
            return
        finally:
            self.env._active_process = None

        if not isinstance(target, Event):
            self._finish(exception=SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def _finish(self, value: Any = None, exception: Optional[BaseException] = None) -> None:
        self._waiting_on = None
        if self._triggered:
            return
        if exception is not None:
            self.fail(exception)
        else:
            self.succeed(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._triggered else "alive"
        return f"<Process {self.name} {state}>"


class Environment:
    """Owns simulation time and the scheduled-event heap."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = count()
        self._serials: dict[str, int] = {}
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulation time, in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # ------------------------------------------------------------------
    # Event and process creation helpers.
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event bound to this environment."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a timeout event that triggers after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: Optional[str] = None) -> Process:
        """Register ``generator`` as a new simulation process."""
        return Process(self, generator, name=name)

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Schedule ``event`` for processing ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past: {delay}")
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), event))

    def next_serial(self, category: str = "") -> int:
        """A per-environment monotonic serial for ``category`` (1, 2, 3, ...).

        Identifiers minted from process-global counters embed the process's
        prior run history, so two runs of the same seeded experiment produce
        different ID strings depending on what ran before them.  Simulation
        components mint IDs from here instead: serials are scoped to one
        environment, keeping every run's output identical whether it executes
        first or fiftieth, serially or in a worker process.
        """
        value = self._serials.get(category, 0) + 1
        self._serials[category] = value
        return value

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no more events to process")
        time, _, event = heapq.heappop(self._queue)
        self._now = time
        event._run_callbacks()  # noqa: SLF001 - engine drives event processing

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a time (run
        until the clock reaches it), or an :class:`Event` (run until it has
        been processed, returning its value).
        """
        if isinstance(until, Event):
            return self._run_until_event(until)
        limit = float("inf") if until is None else float(until)
        if limit < self._now:
            raise SimulationError(
                f"cannot run until {limit}: simulation time is already {self._now}")
        while self._queue and self._queue[0][0] <= limit:
            self.step()
        if limit != float("inf"):
            self._now = limit
        return None

    def _run_until_event(self, until: Event) -> Any:
        while not until.processed:
            if not self._queue:
                raise SimulationError(
                    "event queue drained before the awaited event triggered")
            self.step()
        return until.value

    def run_all(self, processes: Iterable[Process]) -> list[Any]:
        """Run until every process in ``processes`` has finished."""
        results = []
        for process in processes:
            results.append(self.run(until=process))
        return results
