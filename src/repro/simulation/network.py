"""A latency-modelled message-passing network.

Every NotebookOS component — Jupyter server, global scheduler, local
schedulers, kernel replicas, Raft nodes, the distributed data store — is
reachable at a :class:`NetworkAddress`.  Sending a :class:`Message` delivers
it into the destination's inbox (:class:`~repro.simulation.queues.Store`)
after a per-link latency drawn from the link's latency model.

Links can also be configured to *drop* messages with a given probability and
to be partitioned and healed at runtime, which is how the failure-injection
tests exercise Raft's and the executor election protocol's fault tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Dict, Optional, Tuple

from repro.simulation.engine import Environment
from repro.simulation.events import Event
from repro.simulation.queues import Store

NetworkAddress = str

_MESSAGE_IDS = count(1)


@dataclass
class Message:
    """A message in flight between two network endpoints."""

    source: NetworkAddress
    destination: NetworkAddress
    kind: str
    payload: Any = None
    size_bytes: int = 0
    sent_at: float = 0.0
    delivered_at: float = 0.0
    message_id: int = field(default_factory=lambda: next(_MESSAGE_IDS))

    @property
    def latency(self) -> float:
        """End-to-end delivery latency in seconds."""
        return self.delivered_at - self.sent_at


@dataclass
class Link:
    """Latency / loss characteristics for one directed pair of endpoints.

    ``duplicate_probability`` models at-least-once delivery (retransmitting
    middleboxes, retried RPCs): each sent message is delivered a second time
    with that probability, after an independently drawn delay.  Protocol
    tests use it to check that Raft treats duplicated requests idempotently.
    """

    latency_fn: Callable[[], float]
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    bandwidth_bytes_per_sec: Optional[float] = None
    partitioned: bool = False

    def delivery_delay(self, size_bytes: int) -> float:
        """Total propagation + transmission delay for a message of ``size_bytes``."""
        delay = max(0.0, self.latency_fn())
        if self.bandwidth_bytes_per_sec and size_bytes > 0:
            delay += size_bytes / self.bandwidth_bytes_per_sec
        return delay


class Network:
    """Routes messages between registered endpoints with configurable links."""

    def __init__(self, env: Environment,
                 default_latency: float = 0.0005,
                 rng: Optional[Any] = None) -> None:
        self.env = env
        self.default_latency = default_latency
        self._rng = rng
        self._inboxes: Dict[NetworkAddress, Store] = {}
        self._links: Dict[Tuple[NetworkAddress, NetworkAddress], Link] = {}
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Topology management.
    # ------------------------------------------------------------------
    def register(self, address: NetworkAddress) -> Store:
        """Register ``address`` and return its inbox."""
        if address in self._inboxes:
            return self._inboxes[address]
        inbox = Store(self.env, name=f"inbox:{address}")
        self._inboxes[address] = inbox
        return inbox

    def unregister(self, address: NetworkAddress) -> None:
        """Remove an endpoint (e.g. a terminated kernel replica container)."""
        self._inboxes.pop(address, None)

    def is_registered(self, address: NetworkAddress) -> bool:
        return address in self._inboxes

    def set_link(self, source: NetworkAddress, destination: NetworkAddress,
                 link: Link, bidirectional: bool = True) -> None:
        """Install an explicit link model between two endpoints."""
        self._links[(source, destination)] = link
        if bidirectional:
            self._links[(destination, source)] = link

    def link_for(self, source: NetworkAddress, destination: NetworkAddress) -> Link:
        link = self._links.get((source, destination))
        if link is None:
            link = Link(latency_fn=lambda: self.default_latency)
            self._links[(source, destination)] = link
        return link

    def partition(self, source: NetworkAddress, destination: NetworkAddress,
                  bidirectional: bool = True) -> None:
        """Stop delivering messages between two endpoints."""
        self.link_for(source, destination).partitioned = True
        if bidirectional:
            self.link_for(destination, source).partitioned = True

    def heal(self, source: NetworkAddress, destination: NetworkAddress,
             bidirectional: bool = True) -> None:
        """Resume delivery between two endpoints."""
        self.link_for(source, destination).partitioned = False
        if bidirectional:
            self.link_for(destination, source).partitioned = False

    def isolate(self, address: NetworkAddress) -> None:
        """Partition ``address`` from every other registered endpoint."""
        for other in list(self._inboxes):
            if other != address:
                self.partition(address, other)

    def rejoin(self, address: NetworkAddress) -> None:
        """Heal all partitions involving ``address``."""
        for other in list(self._inboxes):
            if other != address:
                self.heal(address, other)

    # ------------------------------------------------------------------
    # Message delivery.
    # ------------------------------------------------------------------
    def inbox(self, address: NetworkAddress) -> Store:
        """The inbox store for ``address`` (must be registered)."""
        try:
            return self._inboxes[address]
        except KeyError:
            raise KeyError(f"network endpoint {address!r} is not registered") from None

    def send(self, source: NetworkAddress, destination: NetworkAddress,
             kind: str, payload: Any = None, size_bytes: int = 0) -> Optional[Message]:
        """Send a message; returns it, or ``None`` if it was dropped."""
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        message = Message(source=source, destination=destination, kind=kind,
                          payload=payload, size_bytes=size_bytes,
                          sent_at=self.env.now)
        link = self.link_for(source, destination)
        if link.partitioned or self._should_drop(link):
            self.messages_dropped += 1
            return None
        delay = link.delivery_delay(size_bytes)
        # defer() skips the Timeout allocation: one deferred call per message
        # on what is the hottest path of Raft-heavy workloads.
        self.env.defer(delay, lambda _call: self._deliver(message))
        if link.duplicate_probability > 0 and self._rng is not None \
                and self._rng.random() < link.duplicate_probability:
            self.messages_duplicated += 1
            self.env.defer(link.delivery_delay(size_bytes),
                           lambda _call: self._deliver(message))
        return message

    def _deliver(self, message: Message) -> None:
        inbox = self._inboxes.get(message.destination)
        if inbox is None:
            # Destination disappeared while the message was in flight.
            self.messages_dropped += 1
            return
        message.delivered_at = self.env.now
        inbox.put(message)

    def _should_drop(self, link: Link) -> bool:
        if link.drop_probability <= 0:
            return False
        if self._rng is None:
            return False
        return self._rng.random() < link.drop_probability

    # ------------------------------------------------------------------
    # Convenience request/response helper.
    # ------------------------------------------------------------------
    def rpc(self, source: NetworkAddress, destination: NetworkAddress,
            kind: str, payload: Any = None, size_bytes: int = 0) -> Event:
        """Send a message and return an event the sender can wait on.

        The callee is expected to reply by triggering ``payload['reply_to']``.
        This is a lightweight convenience used by control-plane RPCs
        (e.g. ``StartKernelReplica``) where the request/response pairing is
        one-to-one.
        """
        reply = self.env.event()
        wrapped = {"request": payload, "reply_to": reply}
        self.send(source, destination, kind, wrapped, size_bytes=size_bytes)
        return reply
