"""The Jupyter-compatible messaging layer.

NotebookOS reuses the IPython/Jupyter messaging protocol so that any Jupyter
client works unmodified (§4).  This package models the pieces of that stack
the control plane interacts with:

* :mod:`repro.jupyter.messages` — the wire messages (``execute_request``,
  ``execute_reply``, ``yield_request``, kernel lifecycle messages);
* :mod:`repro.jupyter.session` — a persistent notebook session with its cells
  and execution history;
* :mod:`repro.jupyter.server` — the Jupyter Server front end that accepts
  client messages and forwards them to the Global Scheduler;
* :mod:`repro.jupyter.client` — a notebook client that submits cell
  executions (driven by the workload driver);
* :mod:`repro.jupyter.provisioner` — the Gateway (kernel) provisioner used to
  integrate with the Jupyter kernel-lifecycle API.
"""

from repro.jupyter.messages import (
    ExecuteReply,
    ExecuteRequest,
    JupyterMessage,
    MessageType,
    YieldRequest,
    new_message_id,
)
from repro.jupyter.session import CellExecution, NotebookCell, NotebookSession, SessionState
from repro.jupyter.server import JupyterServer
from repro.jupyter.client import NotebookClient
from repro.jupyter.provisioner import GatewayProvisioner

__all__ = [
    "CellExecution",
    "ExecuteReply",
    "ExecuteRequest",
    "GatewayProvisioner",
    "JupyterMessage",
    "JupyterServer",
    "MessageType",
    "NotebookCell",
    "NotebookClient",
    "NotebookSession",
    "SessionState",
    "YieldRequest",
    "new_message_id",
]
