"""Jupyter (IPython) protocol messages.

Only the subset of the protocol the NotebookOS control plane touches is
modelled: execute requests and replies, the NotebookOS-specific
``yield_request`` conversion (§3.2.2), kernel lifecycle messages, and status
updates.  Message identity and parent linkage follow the real protocol so the
routing code paths (Jupyter Server → Global Scheduler → Local Scheduler →
kernel replica) look like the production implementation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, Optional

_MESSAGE_COUNTER = count(1)


def new_message_id() -> str:
    """Generate a unique Jupyter message identifier."""
    return f"msg-{next(_MESSAGE_COUNTER)}"


class MessageType(enum.Enum):
    """The Jupyter message types used by the platform."""

    EXECUTE_REQUEST = "execute_request"
    EXECUTE_REPLY = "execute_reply"
    YIELD_REQUEST = "yield_request"
    KERNEL_INFO_REQUEST = "kernel_info_request"
    KERNEL_INFO_REPLY = "kernel_info_reply"
    STATUS = "status"
    SHUTDOWN_REQUEST = "shutdown_request"
    SHUTDOWN_REPLY = "shutdown_reply"


@dataclass
class JupyterMessage:
    """A generic Jupyter protocol message."""

    msg_type: MessageType
    kernel_id: str
    session_id: str
    content: Dict[str, Any] = field(default_factory=dict)
    metadata: Dict[str, Any] = field(default_factory=dict)
    msg_id: str = field(default_factory=new_message_id)
    parent_msg_id: Optional[str] = None
    created_at: float = 0.0

    def reply(self, msg_type: MessageType, content: Optional[Dict[str, Any]] = None,
              created_at: float = 0.0) -> "JupyterMessage":
        """Construct a reply message parented to this message."""
        return JupyterMessage(msg_type=msg_type, kernel_id=self.kernel_id,
                              session_id=self.session_id,
                              content=dict(content or {}),
                              parent_msg_id=self.msg_id, created_at=created_at)


@dataclass
class ExecuteRequest(JupyterMessage):
    """An ``execute_request`` carrying the code of one notebook cell."""

    def __init__(self, kernel_id: str, session_id: str, code: str,
                 gpus_required: int = 0, created_at: float = 0.0,
                 metadata: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(msg_type=MessageType.EXECUTE_REQUEST, kernel_id=kernel_id,
                         session_id=session_id,
                         content={"code": code, "gpus_required": gpus_required},
                         metadata=dict(metadata or {}), created_at=created_at)

    @property
    def code(self) -> str:
        return self.content["code"]

    @property
    def gpus_required(self) -> int:
        return self.content["gpus_required"]


@dataclass
class YieldRequest(JupyterMessage):
    """A converted request instructing a replica not to lead the election."""

    def __init__(self, original: JupyterMessage, designated_replica: Optional[str],
                 created_at: float = 0.0) -> None:
        super().__init__(msg_type=MessageType.YIELD_REQUEST,
                         kernel_id=original.kernel_id,
                         session_id=original.session_id,
                         content=dict(original.content),
                         parent_msg_id=original.msg_id, created_at=created_at)
        self.content["designated_replica"] = designated_replica

    @property
    def designated_replica(self) -> Optional[str]:
        return self.content.get("designated_replica")


@dataclass
class ExecuteReply(JupyterMessage):
    """An ``execute_reply`` carrying the execution outcome."""

    def __init__(self, request: JupyterMessage, status: str = "ok",
                 execution_time: float = 0.0, executor_replica: Optional[str] = None,
                 error: Optional[str] = None, created_at: float = 0.0) -> None:
        super().__init__(msg_type=MessageType.EXECUTE_REPLY,
                         kernel_id=request.kernel_id, session_id=request.session_id,
                         content={"status": status, "execution_time": execution_time,
                                  "executor_replica": executor_replica,
                                  "error": error},
                         parent_msg_id=request.msg_id, created_at=created_at)

    @property
    def status(self) -> str:
        return self.content["status"]

    @property
    def is_error(self) -> bool:
        return self.status != "ok"


def merge_replies(replies: list[JupyterMessage]) -> Optional[JupyterMessage]:
    """Merge per-replica ``execute_reply`` messages into one client reply.

    The Global Scheduler aggregates the replies from every replica before
    forwarding a single reply to the Jupyter Server (§3.2.2 step 9).  The
    executor replica's reply (the one recording a non-zero execution time or
    an explicit executor id) wins; error replies only surface if every reply
    errored.
    """
    if not replies:
        return None
    ok_replies = [r for r in replies if r.content.get("status") == "ok"]
    candidates = ok_replies or replies
    best = max(candidates, key=lambda r: (r.content.get("executor_replica") is not None,
                                          r.content.get("execution_time", 0.0)))
    return best
