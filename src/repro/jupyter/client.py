"""Notebook clients.

A :class:`NotebookClient` models one user's browser session: it submits cell
executions to the Jupyter Server and waits for the replies.  The workload
driver (:mod:`repro.workload.driver`) instantiates one client per trace
session.
"""

from __future__ import annotations

from typing import List, Optional

from repro.jupyter.messages import ExecuteReply, ExecuteRequest, JupyterMessage
from repro.jupyter.server import JupyterServer
from repro.jupyter.session import CellExecution, NotebookCell, NotebookSession
from repro.simulation.engine import Environment


class NotebookClient:
    """One user's notebook client, bound to a session."""

    def __init__(self, env: Environment, server: JupyterServer,
                 session: NotebookSession) -> None:
        self.env = env
        self.server = server
        self.session = session
        self.submitted: List[ExecuteRequest] = []
        self.replies: List[JupyterMessage] = []

    def submit_cell(self, cell: NotebookCell):
        """Simulation process: submit one cell and wait for the reply.

        Returns the :class:`CellExecution` record for the submission.
        """
        request = ExecuteRequest(kernel_id=self.session.kernel_id,
                                 session_id=self.session.session_id,
                                 code=cell.code, gpus_required=cell.gpus_required,
                                 created_at=self.env.now,
                                 metadata={"expected_duration": cell.expected_duration})
        execution = CellExecution(cell=cell, submitted_at=self.env.now)
        self.session.record_execution(execution)
        self.submitted.append(request)
        reply = yield self.env.process(self.server.forward_to_scheduler(request))
        self.replies.append(reply)
        if execution.completed_at is None:
            status = "ok"
            executor: Optional[str] = None
            if isinstance(reply, JupyterMessage):
                status = reply.content.get("status", "ok")
                executor = reply.content.get("executor_replica")
            execution.mark_completed(self.env.now, status=status,
                                     executor_replica=executor)
        return execution

    @property
    def error_count(self) -> int:
        return sum(1 for reply in self.replies
                   if isinstance(reply, (ExecuteReply, JupyterMessage))
                   and reply.content.get("status") not in (None, "ok"))
