"""Notebook sessions, cells, and execution history.

A *notebook session* is the persistent working instance of a notebook
environment whose variables and execution context are maintained by the
associated kernel (§2.1).  Sessions are long-lived; the cell executions they
submit are short-lived — the defining property of IDLT workloads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class SessionState(enum.Enum):
    """Lifecycle of a notebook session."""

    PENDING = "pending"
    ACTIVE = "active"
    IDLE_RECLAIMED = "idle_reclaimed"
    TERMINATED = "terminated"


@dataclass
class NotebookCell:
    """One cell of a notebook: code plus the resources it needs."""

    code: str
    gpus_required: int = 0
    expected_duration: float = 0.0
    cell_index: int = 0

    @property
    def is_gpu_cell(self) -> bool:
        return self.gpus_required > 0


@dataclass
class CellExecution:
    """A record of one cell task execution within a session."""

    cell: NotebookCell
    submitted_at: float
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    executor_replica: Optional[str] = None
    status: str = "pending"
    interactivity_delay: Optional[float] = None

    @property
    def task_completion_time(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def mark_started(self, now: float) -> None:
        self.started_at = now
        self.interactivity_delay = now - self.submitted_at
        self.status = "running"

    def mark_completed(self, now: float, status: str = "ok",
                       executor_replica: Optional[str] = None) -> None:
        self.completed_at = now
        self.status = status
        if executor_replica is not None:
            self.executor_replica = executor_replica


@dataclass
class NotebookSession:
    """A persistent notebook session bound to one logical kernel."""

    session_id: str
    user_id: str
    kernel_id: str
    gpus_required: int = 1
    created_at: float = 0.0
    state: SessionState = SessionState.PENDING
    started_at: Optional[float] = None
    terminated_at: Optional[float] = None
    executions: List[CellExecution] = field(default_factory=list)
    idle_reclamations: int = 0

    def activate(self, now: float) -> None:
        self.state = SessionState.ACTIVE
        self.started_at = now

    def terminate(self, now: float) -> None:
        self.state = SessionState.TERMINATED
        self.terminated_at = now

    def reclaim_idle(self, now: float) -> None:
        """Mark the session as idle-reclaimed (kernel culled by the provider)."""
        self.state = SessionState.IDLE_RECLAIMED
        self.idle_reclamations += 1

    def resume(self, now: float) -> None:
        """Resume a previously reclaimed session."""
        self.state = SessionState.ACTIVE

    @property
    def is_active(self) -> bool:
        return self.state == SessionState.ACTIVE

    def record_execution(self, execution: CellExecution) -> None:
        self.executions.append(execution)

    @property
    def completed_executions(self) -> List[CellExecution]:
        return [e for e in self.executions if e.completed_at is not None]

    def lifetime(self, now: float) -> float:
        if self.started_at is None:
            return 0.0
        end = self.terminated_at if self.terminated_at is not None else now
        return max(0.0, end - self.started_at)

    def gpu_active_time(self) -> float:
        """Total time this session's cells were actively executing on GPUs."""
        total = 0.0
        for execution in self.completed_executions:
            if execution.cell.is_gpu_cell and execution.started_at is not None:
                total += (execution.completed_at or execution.started_at) - execution.started_at
        return total

    def gpu_duty_cycle(self, now: float) -> float:
        """Fraction of the session lifetime spent actively using GPUs."""
        lifetime = self.lifetime(now)
        if lifetime <= 0:
            return 0.0
        return min(1.0, self.gpu_active_time() / lifetime)

    def last_activity_time(self, now: float) -> float:
        """Time of the most recent submission or completion (for idle culling)."""
        latest = self.started_at or 0.0
        for execution in self.executions:
            latest = max(latest, execution.submitted_at)
            if execution.completed_at is not None:
                latest = max(latest, execution.completed_at)
        return latest
