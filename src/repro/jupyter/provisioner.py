"""The Gateway (kernel) provisioner.

Jupyter's *kernel provisioner* API lets third parties manage the lifecycle of
a kernel's runtime environment.  NotebookOS implements a custom
``GatewayProvisioner`` that turns Jupyter's "start kernel" calls into
``StartKernel`` RPCs against the Global Scheduler (§3.2.1, Figure 4 step 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cluster.resources import ResourceRequest
from repro.simulation.engine import Environment
from repro.simulation.network import Network


@dataclass
class KernelConnectionInfo:
    """Connection details returned once a kernel's replicas are running."""

    kernel_id: str
    replica_addresses: Dict[str, str] = field(default_factory=dict)
    created_at: float = 0.0


class GatewayProvisioner:
    """Issues ``StartKernel`` RPCs to the Global Scheduler for new kernels."""

    ADDRESS = "gateway-provisioner"

    def __init__(self, env: Environment, network: Network,
                 global_scheduler_address: str = "global-scheduler") -> None:
        self.env = env
        self.network = network
        self.global_scheduler_address = global_scheduler_address
        self.kernels: Dict[str, KernelConnectionInfo] = {}
        self.start_requests = 0
        self.failed_starts = 0
        network.register(self.ADDRESS)

    def start_kernel(self, kernel_id: str, session_id: str,
                     resource_request: ResourceRequest):
        """Simulation process: ask the Global Scheduler to create a kernel.

        Returns the :class:`KernelConnectionInfo` once every replica has been
        provisioned and the kernel's Raft group is operational.
        """
        self.start_requests += 1
        reply_event = self.network.rpc(
            self.ADDRESS, self.global_scheduler_address, "rpc.start_kernel",
            payload={"kernel_id": kernel_id, "session_id": session_id,
                     "resource_request": resource_request})
        result = yield reply_event
        if isinstance(result, Exception):
            self.failed_starts += 1
            raise result
        info = KernelConnectionInfo(kernel_id=kernel_id,
                                    replica_addresses=dict(result or {}),
                                    created_at=self.env.now)
        self.kernels[kernel_id] = info
        return info

    def shutdown_kernel(self, kernel_id: str):
        """Simulation process: ask the Global Scheduler to tear a kernel down."""
        reply_event = self.network.rpc(self.ADDRESS, self.global_scheduler_address,
                                       "rpc.shutdown_kernel",
                                       payload={"kernel_id": kernel_id})
        yield reply_event
        self.kernels.pop(kernel_id, None)
        return True

    def connection_info(self, kernel_id: str) -> Optional[KernelConnectionInfo]:
        return self.kernels.get(kernel_id)
