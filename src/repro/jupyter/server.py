"""The Jupyter Server front end.

Clients talk HTTP/WebSockets to the Jupyter Server, which forwards kernel
messages to the Global Scheduler (Figure 3, steps 1–2).  In the simulation
the server is a thin routing component with a small per-message processing
cost; its value is in keeping the request path (client → server → global
scheduler → local scheduler → replica) structurally identical to the paper's
Figure 15 so the per-step latency breakdown can be reproduced.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.jupyter.messages import JupyterMessage
from repro.jupyter.session import NotebookSession
from repro.simulation.engine import Environment
from repro.simulation.network import Network


class JupyterServer:
    """Accepts client messages and forwards them to the Global Scheduler."""

    ADDRESS = "jupyter-server"

    def __init__(self, env: Environment, network: Network,
                 global_scheduler_address: str = "global-scheduler",
                 processing_delay: float = 0.002) -> None:
        self.env = env
        self.network = network
        self.global_scheduler_address = global_scheduler_address
        self.processing_delay = processing_delay
        self.sessions: Dict[str, NotebookSession] = {}
        self.messages_forwarded = 0
        self.replies_returned = 0
        network.register(self.ADDRESS)

    # ------------------------------------------------------------------
    # Session registry.
    # ------------------------------------------------------------------
    def register_session(self, session: NotebookSession) -> None:
        self.sessions[session.session_id] = session

    def remove_session(self, session_id: str) -> None:
        self.sessions.pop(session_id, None)

    def session_for_kernel(self, kernel_id: str) -> Optional[NotebookSession]:
        for session in self.sessions.values():
            if session.kernel_id == kernel_id:
                return session
        return None

    @property
    def active_session_count(self) -> int:
        return sum(1 for s in self.sessions.values() if s.is_active)

    # ------------------------------------------------------------------
    # Message forwarding.
    # ------------------------------------------------------------------
    def forward_to_scheduler(self, message: JupyterMessage):
        """Simulation process: forward a client message to the Global Scheduler.

        Returns an event that the Global Scheduler resolves with the final
        (aggregated) reply message.
        """
        yield self.processing_delay
        self.messages_forwarded += 1
        reply_event = self.network.rpc(self.ADDRESS, self.global_scheduler_address,
                                       f"jupyter.{message.msg_type.value}",
                                       payload=message)
        reply = yield reply_event
        self.replies_returned += 1
        return reply
