"""The metrics collector and experiment result container.

Every policy run populates one :class:`MetricsCollector`:

* per-task records with interactivity delay, task completion time, and the
  per-step latency breakdown;
* cluster timelines (provisioned GPUs, GPUs committed to training, active
  sessions, active trainings, cluster-wide subscription ratio) sampled on a
  configurable interval;
* discrete platform events (kernel creations, migrations, scale-outs,
  scale-ins, failed elections);
* data-store and Raft synchronization latencies (Figure 11).

:class:`ExperimentResult` wraps a finished collector together with the policy
name and exposes the derived metrics the benchmarks print.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.cdf import CDF
from repro.analysis.timeline import Timeline
from repro.metrics.latency_breakdown import LatencyBreakdown, StepLatencies
from repro.telemetry.sketch import QuantileSketch


class EventKind(enum.Enum):
    """Discrete platform events plotted in Figure 10."""

    KERNEL_CREATED = "kernel_created"
    KERNEL_TERMINATED = "kernel_terminated"
    KERNEL_MIGRATION = "kernel_migration"
    ELECTION_FAILED = "election_failed"
    SCALE_OUT = "scale_out"
    SCALE_IN = "scale_in"
    SESSION_STARTED = "session_started"
    SESSION_TERMINATED = "session_terminated"
    IDLE_RECLAMATION = "idle_reclamation"
    REPLICA_FAILURE = "replica_failure"


@dataclass
class PlatformEvent:
    """One discrete platform event."""

    time: float
    kind: EventKind
    detail: str = ""


@dataclass
class TaskMetrics:
    """Per-task measurements."""

    session_id: str
    kernel_id: str
    submitted_at: float
    gpus: int
    is_gpu_task: bool = True
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    status: str = "pending"
    executor_replica: Optional[str] = None
    required_migration: bool = False
    steps: StepLatencies = field(default_factory=StepLatencies)

    @property
    def interactivity_delay(self) -> Optional[float]:
        """Submission -> start of user-code execution (Figure 9(a))."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def task_completion_time(self) -> Optional[float]:
        """Submission -> completion (Figure 9(b))."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def execution_time(self) -> Optional[float]:
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    def to_dict(self) -> Dict[str, object]:
        return {
            "session_id": self.session_id,
            "kernel_id": self.kernel_id,
            "submitted_at": self.submitted_at,
            "gpus": self.gpus,
            "is_gpu_task": self.is_gpu_task,
            "started_at": self.started_at,
            "completed_at": self.completed_at,
            "status": self.status,
            "executor_replica": self.executor_replica,
            "required_migration": self.required_migration,
            "steps": self.steps.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TaskMetrics":
        return cls(
            session_id=data["session_id"],
            kernel_id=data["kernel_id"],
            submitted_at=data["submitted_at"],
            gpus=data["gpus"],
            is_gpu_task=data["is_gpu_task"],
            started_at=data["started_at"],
            completed_at=data["completed_at"],
            status=data["status"],
            executor_replica=data["executor_replica"],
            required_migration=data["required_migration"],
            steps=StepLatencies.from_dict(data["steps"]))


class MetricsCollector:
    """Accumulates every measurement from one experiment run.

    Two storage modes:

    * **exact** (default) — every :class:`TaskMetrics` record is retained in
      ``tasks`` and percentiles are computed from full CDFs.  This is what
      the golden digests pin.
    * **sketch** (``sketch_mode=True``, see
      ``PlatformConfig.metrics_sketch_mode``) — interactivity and TCT fold
      into fixed-memory :class:`~repro.telemetry.sketch.QuantileSketch`\\ s
      instead of the unbounded task list; ``tasks`` stays empty and
      per-task records are dropped once :meth:`absorb_completed_task` (the
      platform's ``TASK_COMPLETE`` subscriber) has consumed them.  Summary
      percentiles come from the sketches.  Caveats: per-task reports and
      CDF plots are unavailable, and tasks still in flight at run end are
      not counted.
    """

    def __init__(self, sample_interval: float = 60.0,
                 sketch_mode: bool = False,
                 sketch_compression: int = 300) -> None:
        self.sample_interval = sample_interval
        self.sketch_mode = bool(sketch_mode)
        self.sketch_compression = int(sketch_compression)
        self.tasks: List[TaskMetrics] = []
        self.events: List[PlatformEvent] = []
        self._events_by_kind: Dict[EventKind, List[PlatformEvent]] = {}
        self.sketch_task_count = 0
        self.sketch_completed_tasks = 0
        self.interactivity_sketch: Optional[QuantileSketch] = None
        self.tct_sketch: Optional[QuantileSketch] = None
        if self.sketch_mode:
            self.interactivity_sketch = QuantileSketch(sketch_compression)
            self.tct_sketch = QuantileSketch(sketch_compression)
        self.provisioned_gpus = Timeline("provisioned_gpus")
        self.committed_gpus = Timeline("committed_gpus")
        self.active_sessions = Timeline("active_sessions")
        self.active_trainings = Timeline("active_trainings")
        self.subscription_ratio = Timeline("subscription_ratio")
        self.provisioned_hosts = Timeline("provisioned_hosts")
        self.datastore_read_latencies: List[float] = []
        self.datastore_write_latencies: List[float] = []
        self.raft_sync_latencies: List[float] = []
        self.gpu_bind_count = 0
        self.immediate_gpu_commit_count = 0
        self.same_executor_count = 0
        self.executor_decisions = 0

    # ------------------------------------------------------------------
    # Recording.
    # ------------------------------------------------------------------
    def new_task(self, session_id: str, kernel_id: str, submitted_at: float,
                 gpus: int, is_gpu_task: bool = True) -> TaskMetrics:
        task = TaskMetrics(session_id=session_id, kernel_id=kernel_id,
                           submitted_at=submitted_at, gpus=gpus,
                           is_gpu_task=is_gpu_task)
        if self.sketch_mode:
            # Bounded memory: the record lives only for the task's lifetime
            # (the session process holds it); absorb_completed_task folds it
            # into the sketches when the platform publishes TASK_COMPLETE.
            self.sketch_task_count += 1
        else:
            self.tasks.append(task)
        return task

    def absorb_completed_task(self, time: float, session: object, task: object,
                              metrics: TaskMetrics) -> None:
        """Fold one finished task into the sketches (sketch mode only).

        Signature matches the ``TASK_COMPLETE`` hook payload; the platform
        subscribes this callback (first, like ``record_event``) when the
        collector runs in sketch mode.
        """
        self.sketch_completed_tasks += 1
        interactivity = metrics.interactivity_delay
        if interactivity is not None:
            self.interactivity_sketch.add(interactivity)
        tct = metrics.task_completion_time
        if tct is not None:
            self.tct_sketch.add(tct)

    def record_event(self, time: float, kind: EventKind, detail: str = "") -> None:
        event = PlatformEvent(time=time, kind=kind, detail=detail)
        self.events.append(event)
        self._events_by_kind.setdefault(kind, []).append(event)

    def sample_cluster(self, time: float, provisioned_gpus: int, committed_gpus: int,
                       active_sessions: int, active_trainings: int,
                       subscription_ratio: float, provisioned_hosts: int) -> None:
        """Record one sample of every cluster timeline."""
        self.provisioned_gpus.record(time, provisioned_gpus)
        self.committed_gpus.record(time, committed_gpus)
        self.active_sessions.record(time, active_sessions)
        self.active_trainings.record(time, active_trainings)
        self.subscription_ratio.record(time, subscription_ratio)
        self.provisioned_hosts.record(time, provisioned_hosts)

    def make_cluster_sampler(self):
        """An allocation-light recorder for the periodic cluster sample.

        Long runs record hundreds of thousands of samples, and the platform's
        sampler loop feeds this from the cluster's O(1) incremental
        aggregates — so the recording side must not dominate.  The returned
        ``record(...)`` (same signature as :meth:`sample_cluster`) appends
        directly to each timeline's point list, skipping six method frames
        and six time-order validations per sample; callers must supply
        samples in nondecreasing time order, which the simulation clock
        guarantees.  Recorded values are identical to :meth:`sample_cluster`.
        """
        appends = tuple(getattr(self, name).points.append
                        for name in self._TIMELINE_FIELDS)
        pg_add, cg_add, as_add, at_add, sr_add, ph_add = appends

        def record(time: float, provisioned_gpus: int, committed_gpus: int,
                   active_sessions: int, active_trainings: int,
                   subscription_ratio: float, provisioned_hosts: int) -> None:
            pg_add((time, provisioned_gpus))
            cg_add((time, committed_gpus))
            as_add((time, active_sessions))
            at_add((time, active_trainings))
            sr_add((time, subscription_ratio))
            ph_add((time, provisioned_hosts))

        return record

    def record_executor_decision(self, immediate_commit: bool, same_executor: bool) -> None:
        """Track the §5.3.2 statistics (89.6 % immediate commits, 89.45 % reuse)."""
        self.executor_decisions += 1
        if immediate_commit:
            self.immediate_gpu_commit_count += 1
        if same_executor:
            self.same_executor_count += 1

    # ------------------------------------------------------------------
    # Derived metrics.
    # ------------------------------------------------------------------
    def completed_tasks(self) -> List[TaskMetrics]:
        return [t for t in self.tasks if t.completed_at is not None]

    def interactivity_cdf(self) -> CDF:
        return CDF.from_values(t.interactivity_delay for t in self.tasks
                               if t.interactivity_delay is not None)

    def tct_cdf(self) -> CDF:
        return CDF.from_values(t.task_completion_time for t in self.completed_tasks())

    def events_of_kind(self, kind: EventKind) -> List[PlatformEvent]:
        # Served from the per-kind index (kept by record_event) rather than
        # a linear scan of every event — hot in report assembly on
        # mega_scale-sized runs.
        return list(self._events_by_kind.get(kind, ()))

    def completed_task_count(self) -> int:
        if self.sketch_mode:
            return self.sketch_completed_tasks
        return len(self.completed_tasks())

    def interactivity_percentile(self, q: float) -> Optional[float]:
        """Interactivity percentile from whichever store this mode keeps."""
        if self.sketch_mode:
            return self.interactivity_sketch.quantile(q)
        cdf = self.interactivity_cdf()
        return None if cdf.is_empty else cdf.percentile(q)

    def tct_percentile(self, q: float) -> Optional[float]:
        """TCT percentile from whichever store this mode keeps."""
        if self.sketch_mode:
            return self.tct_sketch.quantile(q)
        cdf = self.tct_cdf()
        return None if cdf.is_empty else cdf.percentile(q)

    def provisioned_gpu_hours(self) -> float:
        return self.provisioned_gpus.integral() / 3600.0

    def committed_gpu_hours(self) -> float:
        return self.committed_gpus.integral() / 3600.0

    def immediate_commit_fraction(self) -> float:
        if self.executor_decisions == 0:
            return 0.0
        return self.immediate_gpu_commit_count / self.executor_decisions

    def same_executor_fraction(self) -> float:
        if self.executor_decisions == 0:
            return 0.0
        return self.same_executor_count / self.executor_decisions

    # ------------------------------------------------------------------
    # JSON round-trip (used by the experiment result store).
    # ------------------------------------------------------------------
    _TIMELINE_FIELDS = ("provisioned_gpus", "committed_gpus", "active_sessions",
                       "active_trainings", "subscription_ratio",
                       "provisioned_hosts")

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "sample_interval": self.sample_interval,
            "tasks": [task.to_dict() for task in self.tasks],
            "events": [[e.time, e.kind.value, e.detail] for e in self.events],
            "timelines": {name: getattr(self, name).to_dict()
                          for name in self._TIMELINE_FIELDS},
            "datastore_read_latencies": list(self.datastore_read_latencies),
            "datastore_write_latencies": list(self.datastore_write_latencies),
            "raft_sync_latencies": list(self.raft_sync_latencies),
            "gpu_bind_count": self.gpu_bind_count,
            "immediate_gpu_commit_count": self.immediate_gpu_commit_count,
            "same_executor_count": self.same_executor_count,
            "executor_decisions": self.executor_decisions,
        }
        # Sketch-mode keys appear ONLY when the mode is on, so exact-mode
        # serializations (what the golden digests pin) stay byte-identical.
        if self.sketch_mode:
            data["sketch_mode"] = True
            data["sketches"] = {
                "compression": self.sketch_compression,
                "task_count": self.sketch_task_count,
                "completed_tasks": self.sketch_completed_tasks,
                "interactivity": self.interactivity_sketch.to_dict(),
                "tct": self.tct_sketch.to_dict(),
            }
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MetricsCollector":
        sketches = data.get("sketches")
        collector = cls(
            sample_interval=data["sample_interval"],
            sketch_mode=bool(data.get("sketch_mode", False)),
            sketch_compression=sketches["compression"] if sketches else 300)
        collector.tasks = [TaskMetrics.from_dict(t) for t in data["tasks"]]
        for time, kind, detail in data["events"]:
            collector.record_event(time, EventKind(kind), detail)
        if sketches:
            collector.sketch_task_count = sketches["task_count"]
            collector.sketch_completed_tasks = sketches["completed_tasks"]
            collector.interactivity_sketch = QuantileSketch.from_dict(
                sketches["interactivity"])
            collector.tct_sketch = QuantileSketch.from_dict(sketches["tct"])
        for name in cls._TIMELINE_FIELDS:
            setattr(collector, name, Timeline.from_dict(data["timelines"][name]))
        collector.datastore_read_latencies = list(data["datastore_read_latencies"])
        collector.datastore_write_latencies = list(data["datastore_write_latencies"])
        collector.raft_sync_latencies = list(data["raft_sync_latencies"])
        collector.gpu_bind_count = data["gpu_bind_count"]
        collector.immediate_gpu_commit_count = data["immediate_gpu_commit_count"]
        collector.same_executor_count = data["same_executor_count"]
        collector.executor_decisions = data["executor_decisions"]
        return collector


@dataclass
class ExperimentResult:
    """The outcome of running one trace under one scheduling policy."""

    policy: str
    trace_name: str
    collector: MetricsCollector
    wall_clock_runtime: float = 0.0
    breakdown: Optional[LatencyBreakdown] = None

    # -- convenience accessors ------------------------------------------------
    @property
    def interactivity_cdf(self) -> CDF:
        return self.collector.interactivity_cdf()

    @property
    def tct_cdf(self) -> CDF:
        return self.collector.tct_cdf()

    @property
    def provisioned_gpu_hours(self) -> float:
        return self.collector.provisioned_gpu_hours()

    def gpu_hours_saved_vs(self, other: "ExperimentResult") -> float:
        """GPU-hours saved relative to another policy (Figure 8 green area)."""
        return other.provisioned_gpu_hours - self.provisioned_gpu_hours

    def migration_count(self) -> int:
        return len(self.collector.events_of_kind(EventKind.KERNEL_MIGRATION))

    def scale_out_count(self) -> int:
        return len(self.collector.events_of_kind(EventKind.SCALE_OUT))

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "trace_name": self.trace_name,
            "collector": self.collector.to_dict(),
            "wall_clock_runtime": self.wall_clock_runtime,
            "breakdown": self.breakdown.to_dict() if self.breakdown else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        breakdown = data.get("breakdown")
        return cls(
            policy=data["policy"],
            trace_name=data["trace_name"],
            collector=MetricsCollector.from_dict(data["collector"]),
            wall_clock_runtime=data.get("wall_clock_runtime", 0.0),
            breakdown=LatencyBreakdown.from_dict(breakdown) if breakdown else None)

    def summary(self) -> Dict[str, object]:
        """The headline row the benchmarks print for this policy."""
        collector = self.collector
        return {
            "policy": self.policy,
            "trace": self.trace_name,
            "tasks_completed": collector.completed_task_count(),
            "interactivity_p50_s": collector.interactivity_percentile(0.5),
            "interactivity_p95_s": collector.interactivity_percentile(0.95),
            "tct_p50_s": collector.tct_percentile(0.5),
            "tct_p95_s": collector.tct_percentile(0.95),
            "provisioned_gpu_hours": round(self.provisioned_gpu_hours, 2),
            "max_provisioned_gpus": self.collector.provisioned_gpus.maximum(),
            "migrations": self.migration_count(),
            "scale_outs": self.scale_out_count(),
            "immediate_gpu_commit_fraction": round(
                self.collector.immediate_commit_fraction(), 4),
            "same_executor_fraction": round(
                self.collector.same_executor_fraction(), 4),
        }
