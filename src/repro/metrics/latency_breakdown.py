"""Per-step latency breakdown of execute requests (Figures 15–19).

The paper decomposes the critical path of a cell execution request into the
steps of Figure 15.  Each policy implementation records the per-step
latencies it actually incurs; steps a policy does not have (e.g. the executor
election under Reservation) are simply absent / zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.cdf import CDF

# Step identifiers following Figure 15.  The abbreviations in parentheses
# match the x-axis labels of Figures 16-19.
REQUEST_STEPS: List[str] = [
    "gs_process_request",     # (1)  Global Scheduler pre-processing / queueing
    "gs_to_ls_hop",           # (2)  network hop Global -> Local Scheduler
    "ls_process_request",     # (3)  Local Scheduler processing
    "ls_to_kernel_hop",       # (4)  network hop Local Scheduler -> replica
    "kernel_preprocess",      # (5)  replica pre-processing (metadata extraction)
    "primary_replica_protocol",  # (6) executor election (NotebookOS only)
    "intermediary_interval",  # (7)  selection -> start of execution (GPU bind)
    "execute_code",           # (8)  user code execution
    "kernel_postprocess",     # (9)  post-processing (sync is async in NotebookOS)
    "kernel_to_ls_hop",       # (10) reply hop kernel -> Local Scheduler
]


@dataclass
class StepLatencies:
    """The per-step latencies of one execute request."""

    steps: Dict[str, float] = field(default_factory=dict)

    def record(self, step: str, latency: float) -> None:
        if step not in REQUEST_STEPS:
            raise KeyError(f"unknown request step {step!r}")
        if latency < 0:
            raise ValueError(f"negative latency for step {step!r}: {latency}")
        self.steps[step] = self.steps.get(step, 0.0) + latency

    def get(self, step: str) -> float:
        return self.steps.get(step, 0.0)

    @property
    def end_to_end(self) -> float:
        return sum(self.steps.values())

    def to_dict(self) -> Dict[str, float]:
        return dict(self.steps)

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "StepLatencies":
        return cls(steps={str(step): float(latency)
                          for step, latency in data.items()})


@dataclass
class LatencyBreakdown:
    """Aggregated per-step latency distributions for one policy."""

    policy: str
    samples: List[StepLatencies] = field(default_factory=list)

    def add(self, sample: StepLatencies) -> None:
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def cdf_for(self, step: str) -> CDF:
        """CDF of a step's latency across the requests that include that step."""
        return CDF.from_values(s.steps[step] for s in self.samples if step in s.steps)

    def end_to_end_cdf(self) -> CDF:
        return CDF.from_values(s.end_to_end for s in self.samples)

    def table(self) -> Dict[str, Dict[str, float]]:
        """Per-step percentile summary (the data behind Figs. 16-19)."""
        rows: Dict[str, Dict[str, float]] = {
            "end_to_end": self.end_to_end_cdf().summary()}
        for step in REQUEST_STEPS:
            cdf = self.cdf_for(step)
            rows[step] = cdf.summary() if not cdf.is_empty else {"count": 0}
        return rows

    def to_dict(self) -> dict:
        return {"policy": self.policy,
                "samples": [sample.to_dict() for sample in self.samples]}

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyBreakdown":
        return cls(policy=data["policy"],
                   samples=[StepLatencies.from_dict(sample)
                            for sample in data["samples"]])
