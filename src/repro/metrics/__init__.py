"""Metrics: everything the paper's evaluation section measures.

* :mod:`repro.metrics.collector` — per-task records (interactivity delay,
  task completion time, per-step latency breakdown), cluster timelines
  (provisioned / committed GPUs, subscription ratio, active sessions and
  trainings), and platform events (kernel creations, migrations, scale-outs);
* :mod:`repro.metrics.cost` — the billing model of §5.5.1 (provider cost,
  revenue, profit margin) and the GPU-hours-saved accounting of Figures 8
  and 13;
* :mod:`repro.metrics.latency_breakdown` — the per-step latency breakdown of
  Figures 15–19.
"""

from repro.metrics.collector import (
    EventKind,
    ExperimentResult,
    MetricsCollector,
    PlatformEvent,
    TaskMetrics,
)
from repro.metrics.cost import BillingModel, CostReport, GpuHoursSavedReport
from repro.metrics.latency_breakdown import (
    REQUEST_STEPS,
    LatencyBreakdown,
    StepLatencies,
)

__all__ = [
    "BillingModel",
    "CostReport",
    "EventKind",
    "ExperimentResult",
    "GpuHoursSavedReport",
    "LatencyBreakdown",
    "MetricsCollector",
    "PlatformEvent",
    "REQUEST_STEPS",
    "StepLatencies",
    "TaskMetrics",
]
