"""The billing / cost model of §5.5.1 and the GPU-hours-saved accounting.

The paper's billing model:

* the provider pays the AWS EC2 VM cost for every provisioned GPU server;
* users pay **1.15×** the provider's rate, proportional to resource usage
  (e.g. a training task using 4 of a server's 8 GPUs is billed at
  ``rate × 1.15 × 0.5``);
* standby Distributed Kernel replicas are billed **12.5 %** of the base rate;
* the Reservation baseline bills reserved GPUs at the same 1.15× multiplier
  for the entire session lifetime.

Figure 12 (provider cost, revenue, profit margin) and Figure 13 (GPU-hours
saved by avoiding re-execution after idle reclamations) are derived from this
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.timeline import Timeline
from repro.workload.trace import Trace


@dataclass
class CostReport:
    """Provider cost, revenue, and profit margin for one policy run."""

    policy: str
    provider_cost_usd: float
    revenue_usd: float

    @property
    def profit_usd(self) -> float:
        return self.revenue_usd - self.provider_cost_usd

    @property
    def profit_margin(self) -> float:
        """Profit as a fraction of revenue (Figure 12(b))."""
        if self.revenue_usd <= 0:
            return 0.0
        return self.profit_usd / self.revenue_usd

    def cost_reduction_vs(self, other: "CostReport") -> float:
        """Provider-side cost reduction relative to ``other`` (paper: up to 69.87 %)."""
        if other.provider_cost_usd <= 0:
            return 0.0
        return 1.0 - (self.provider_cost_usd / other.provider_cost_usd)


@dataclass
class BillingModel:
    """Implements the §5.5.1 billing rules."""

    host_hourly_rate_usd: float = 24.48
    gpus_per_host: int = 8
    user_multiplier: float = 1.15
    standby_replica_fraction: float = 0.125
    replication_factor: int = 3

    # ------------------------------------------------------------------
    # Provider cost.
    # ------------------------------------------------------------------
    def provider_cost(self, provisioned_gpus: Timeline) -> float:
        """Provider cost of the provisioned-GPU timeline, in USD."""
        gpu_hours = provisioned_gpus.integral() / 3600.0
        host_hours = gpu_hours / self.gpus_per_host
        return host_hours * self.host_hourly_rate_usd

    # ------------------------------------------------------------------
    # Revenue.
    # ------------------------------------------------------------------
    def _hourly_rate_per_gpu(self) -> float:
        return self.host_hourly_rate_usd / self.gpus_per_host

    def reservation_revenue(self, trace: Trace) -> float:
        """Revenue under Reservation: reserved GPUs billed for the whole session."""
        revenue = 0.0
        for session in trace:
            gpu_hours = session.gpus_requested * session.lifetime / 3600.0
            revenue += gpu_hours * self._hourly_rate_per_gpu() * self.user_multiplier
        return revenue

    def notebookos_revenue(self, trace: Trace) -> float:
        """Revenue under NotebookOS: standby replicas + per-training GPU usage."""
        standby_rate_per_hour = (self.host_hourly_rate_usd * self.user_multiplier
                                 * self.standby_replica_fraction)
        revenue = 0.0
        for session in trace:
            session_hours = session.lifetime / 3600.0
            # The paper bills each standby replica 12.5% of the base host rate.
            standby_replicas = max(0, self.replication_factor - 1)
            revenue += standby_replicas * standby_rate_per_hour * session_hours
            for task in session.tasks:
                if not task.is_gpu_task:
                    continue
                usage_fraction = min(1.0, task.gpus / self.gpus_per_host)
                task_hours = task.duration / 3600.0
                revenue += (self.host_hourly_rate_usd * self.user_multiplier
                            * usage_fraction * task_hours)
        return revenue

    # ------------------------------------------------------------------
    # Full reports.
    # ------------------------------------------------------------------
    def report(self, policy: str, trace: Trace, provisioned_gpus: Timeline) -> CostReport:
        cost = self.provider_cost(provisioned_gpus)
        if policy.lower().startswith("reservation"):
            revenue = self.reservation_revenue(trace)
        else:
            revenue = self.notebookos_revenue(trace)
        return CostReport(policy=policy, provider_cost_usd=cost, revenue_usd=revenue)


@dataclass
class GpuHoursSavedReport:
    """Figure 13: GPU-hours saved by avoiding re-execution after reclamation.

    Without NotebookOS's state replication, reclaiming an idle session loses
    its in-memory state; when the user returns, previously executed cells
    must be re-run, consuming extra GPU-hours.  For a given idle-reclamation
    interval, every gap between consecutive submissions longer than the
    interval triggers one reclamation whose cost is the re-execution of the
    session's prior GPU work.
    """

    reclamation_interval_s: float
    gpu_hours_saved: float
    reclamations: int


def gpu_hours_saved_by_state_persistence(
        trace: Trace, reclamation_intervals_minutes: Sequence[float] = (15, 30, 60, 90, 120),
        reexecution_fraction: float = 1.0) -> List[GpuHoursSavedReport]:
    """Compute Figure 13 for each idle-reclamation interval.

    ``reexecution_fraction`` controls how much of the prior GPU work must be
    re-run after a reclamation (1.0 = full re-execution of all prior cells).
    """
    reports: List[GpuHoursSavedReport] = []
    for minutes in reclamation_intervals_minutes:
        interval = minutes * 60.0
        total_saved_gpu_seconds = 0.0
        reclamations = 0
        for session in trace:
            tasks = sorted(session.tasks, key=lambda t: t.submit_time)
            prior_gpu_seconds = 0.0
            previous_end = session.start_time
            for task in tasks:
                idle_gap = task.submit_time - previous_end
                if idle_gap > interval and prior_gpu_seconds > 0:
                    reclamations += 1
                    total_saved_gpu_seconds += prior_gpu_seconds * reexecution_fraction
                prior_gpu_seconds += task.gpu_seconds
                previous_end = max(previous_end, task.end_time)
        reports.append(GpuHoursSavedReport(
            reclamation_interval_s=interval,
            gpu_hours_saved=total_saved_gpu_seconds / 3600.0,
            reclamations=reclamations))
    return reports


def cost_timeline(billing: BillingModel, trace: Trace, provisioned_gpus: Timeline,
                  policy: str, num_points: int = 30) -> Dict[str, List[float]]:
    """Cumulative provider cost / revenue series over time (Figure 12(a))."""
    horizon = trace.duration
    if horizon <= 0:
        return {"time_days": [], "provider_cost": [], "revenue": []}
    times = [horizon * i / num_points for i in range(1, num_points + 1)]
    cost_series: List[float] = []
    revenue_series: List[float] = []
    for time in times:
        clipped_timeline = Timeline("clipped")
        for t, v in provisioned_gpus.points:
            if t <= time:
                clipped_timeline.record(t, v)
        clipped_timeline.record(time, clipped_timeline.value_at(time))
        clipped_trace = trace.truncated(time)
        report = billing.report(policy, clipped_trace, clipped_timeline)
        cost_series.append(report.provider_cost_usd)
        revenue_series.append(report.revenue_usd)
    return {"time_days": [t / 86400.0 for t in times],
            "provider_cost": cost_series,
            "revenue": revenue_series}
