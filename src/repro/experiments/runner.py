"""The sweep runner: store-backed, parallel across processes, deterministic.

Each :class:`ScenarioSpec` is an independent, fully seeded unit of work — the
spec embeds the generator seed and the platform seed, and every random stream
inside the simulator derives from them — so running N specs across a
``ProcessPoolExecutor`` is embarrassingly parallel and *bit-identical* to
running them serially.  To make that guarantee hold end to end, both paths
materialize results through the same JSON round-trip
(``ExperimentResult.to_dict`` in the worker, ``from_dict`` in the parent),
which is also exactly what a store hit deserializes.

Workers are handed plain spec dicts (cheap to pickle); traces are regenerated
inside the worker from the spec's seed rather than shipped across the
process boundary.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.scenarios import ScenarioSpec
from repro.experiments.store import ResultStore
from repro.metrics.collector import ExperimentResult

ProgressCallback = Callable[[str], None]


@dataclass
class RunOutcome:
    """One finished (or cache-served) experiment."""

    spec: ScenarioSpec
    result: ExperimentResult
    cached: bool
    runtime_s: float


def _execute_spec(spec_dict: Dict[str, object]) -> Dict[str, object]:
    """Worker entry point: run one spec and return the serialized result.

    Module-level so it pickles under every multiprocessing start method.
    Determinism needs no extra per-worker seeding: the spec carries the seed,
    and the simulator's randomness all flows from ``SeededRandom(seed)``.
    Execution goes through the :class:`repro.api.Simulation` façade — the
    one code path every entry point shares.
    """
    from repro.api.simulation import Simulation

    return Simulation.from_spec(spec_dict).run().to_dict()


def run_specs(specs: Sequence[ScenarioSpec], workers: int = 1,
              store: Optional[ResultStore] = None,
              progress: Optional[ProgressCallback] = None) -> List[RunOutcome]:
    """Run every spec, in order, returning one :class:`RunOutcome` each.

    ``workers <= 1`` is the serial fallback; it produces bit-identical
    metrics to any parallel run.  When ``store`` is given, specs already
    present are served from disk and fresh results are persisted.  Duplicate
    specs (same content hash) are executed once.
    """
    specs = list(specs)
    total = len(specs)
    outcomes: List[Optional[RunOutcome]] = [None] * total
    done = 0

    def report(index: int, outcome: RunOutcome) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            source = "cache hit" if outcome.cached \
                else f"ran in {outcome.runtime_s:.1f}s"
            progress(f"[{done}/{total}] {outcome.spec.label}: {source}")

    # Serve store hits first; collect the distinct specs that must run.
    to_run: Dict[str, List[int]] = {}
    for index, spec in enumerate(specs):
        cached = store.load(spec) if store is not None else None
        if cached is not None:
            outcomes[index] = RunOutcome(spec=spec, result=cached, cached=True,
                                         runtime_s=0.0)
            report(index, outcomes[index])
        else:
            to_run.setdefault(spec.spec_hash(), []).append(index)

    def finish(spec_hash: str, result_dict: Dict[str, object],
               runtime_s: float) -> None:
        indices = to_run[spec_hash]
        if store is not None:
            store.save(specs[indices[0]], result_dict)
        for index in indices:
            outcomes[index] = RunOutcome(
                spec=specs[index],
                result=ExperimentResult.from_dict(result_dict),
                cached=False, runtime_s=runtime_s)
            report(index, outcomes[index])

    if workers > 1 and len(to_run) > 1:
        pending = {}
        with ProcessPoolExecutor(max_workers=min(workers, len(to_run))) as pool:
            for spec_hash, indices in to_run.items():
                future = pool.submit(_execute_spec, specs[indices[0]].to_dict())
                pending[future] = (spec_hash, time.monotonic())
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    spec_hash, submitted = pending.pop(future)
                    finish(spec_hash, future.result(),
                           time.monotonic() - submitted)
    else:
        for spec_hash, indices in to_run.items():
            started = time.monotonic()
            result_dict = _execute_spec(specs[indices[0]].to_dict())
            finish(spec_hash, result_dict, time.monotonic() - started)

    return [outcome for outcome in outcomes if outcome is not None]


def run_spec(spec: ScenarioSpec,
             store: Optional[ResultStore] = None) -> RunOutcome:
    """Run (or load) a single spec."""
    return run_specs([spec], workers=1, store=store)[0]
