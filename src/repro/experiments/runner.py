"""The sweep runner: store-backed, parallel, deterministic, fault-tolerant.

Each :class:`ScenarioSpec` is an independent, fully seeded unit of work — the
spec embeds the generator seed and the platform seed, and every random stream
inside the simulator derives from them — so running N specs across processes
is embarrassingly parallel and *bit-identical* to running them serially.  To
make that guarantee hold end to end, both paths materialize results through
the same JSON round-trip (``ExperimentResult.to_dict`` in the worker,
``from_dict`` in the parent), which is also exactly what a store hit
deserializes.

Parallel execution is **supervised** (one forked process per spec, polled
pipes) rather than pooled: a worker that a SIGKILL / OOM-killer takes out
kills *its spec's attempt*, not the pool — the old ``ProcessPoolExecutor``
turned one dead worker into a ``BrokenProcessPool`` that poisoned every
in-flight sibling.  Failed specs are retried on a deterministic (jitterless)
exponential backoff schedule (:func:`repro.resilience.backoff_delay`),
persistently failing specs are quarantined with their captured tracebacks,
and every completed sibling's result is salvaged and stored.  Unlike shard
supervision — where a deterministic in-simulation error would replay
identically — a sweep retry is cheap and a crash (OOM kill, transient
environment failure) is indistinguishable from a deterministic bug without
rerunning, so *every* failure mode gets the same bounded retry budget and
the quarantine record says what finally happened.

Workers are handed plain spec dicts (cheap to pickle); traces are regenerated
inside the worker from the spec's seed rather than shipped across the
process boundary.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback as _traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.scenarios import ScenarioSpec
from repro.experiments.store import ResultStore
from repro.metrics.collector import ExperimentResult

ProgressCallback = Callable[[str], None]

#: Pipe poll slice for the supervised parallel scheduler.
_POLL_INTERVAL_S = 0.05


@dataclass
class RunOutcome:
    """One finished, cache-served, or quarantined experiment.

    A quarantined spec (every retry exhausted) has ``result is None`` and
    carries the final failure's ``error`` repr and captured ``traceback``;
    ``attempts`` counts every try including the first.
    """

    spec: ScenarioSpec
    result: Optional[ExperimentResult]
    cached: bool
    runtime_s: float
    attempts: int = 1
    error: Optional[str] = None
    traceback: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.result is None


class SweepExecutionError(RuntimeError):
    """Raised (``strict=True``) after a sweep finishes with quarantined
    specs.  Raised *at the end* — every healthy spec has already completed
    and been stored — with the failed outcomes attached."""

    def __init__(self, failures: Sequence[RunOutcome]) -> None:
        self.failures = list(failures)
        labels = ", ".join(outcome.spec.label for outcome in self.failures)
        super().__init__(
            f"{len(self.failures)} spec(s) quarantined after retries: "
            f"{labels}")


def _execute_spec(spec_dict: Dict[str, object]) -> Dict[str, object]:
    """Run one spec in-process and return the serialized result.

    Module-level so it pickles under every multiprocessing start method.
    Determinism needs no extra per-worker seeding: the spec carries the seed,
    and the simulator's randomness all flows from ``SeededRandom(seed)``.
    Execution goes through the :class:`repro.api.Simulation` façade — the
    one code path every entry point shares.
    """
    from repro.api.simulation import Simulation

    return Simulation.from_spec(spec_dict).run().to_dict()


def _sweep_worker(connection, spec_dict: Dict[str, object]) -> None:
    """Forked per-spec worker: one ``("ok", result)`` or
    ``("error", repr, traceback)`` message, then exit."""
    try:
        result_dict = _execute_spec(spec_dict)
    except BaseException as error:  # noqa: BLE001 — the pipe carries it home
        try:
            connection.send(("error", repr(error), _traceback.format_exc()))
        finally:
            connection.close()
        return
    connection.send(("ok", result_dict))
    connection.close()


@dataclass
class _SweepJob:
    """Scheduler state for one distinct spec in a supervised sweep."""

    spec_hash: str
    spec: ScenarioSpec
    attempts: int = 0
    eligible_at: float = 0.0
    total_runtime_s: float = 0.0
    done: bool = False
    process: Optional[object] = None
    connection: Optional[object] = None
    started: float = 0.0
    deadline: Optional[float] = None
    last_error: Optional[str] = None
    last_traceback: Optional[str] = None


def run_specs(specs: Sequence[ScenarioSpec], workers: int = 1,
              store: Optional[ResultStore] = None,
              progress: Optional[ProgressCallback] = None, *,
              retries: int = 0, backoff_base_s: float = 0.0,
              spec_timeout_s: Optional[float] = None,
              strict: bool = True,
              hooks=None) -> List[RunOutcome]:
    """Run every spec, in order, returning one :class:`RunOutcome` each.

    ``workers <= 1`` is the serial fallback; it produces bit-identical
    metrics to any parallel run.  When ``store`` is given, specs already
    present are served from disk and fresh results are persisted — which is
    also what makes a re-run after a partial failure a *resume*: nothing
    already stored runs again.  Duplicate specs (same content hash) are
    executed once.

    Failure handling: each distinct spec gets ``1 + retries`` attempts, with
    deterministic exponential backoff (``backoff_base_s * 2**(n-1)``,
    jitterless) between them; in the supervised parallel path an attempt
    also fails if its process dies or exceeds ``spec_timeout_s``.  Each
    failed attempt publishes a ``SPEC_RETRY`` hook topic on ``hooks``.  A
    spec that exhausts its budget is *quarantined*: its outcome carries
    ``result=None`` plus the final error and traceback, while every other
    spec still completes (partial-result salvage).  ``strict=True`` raises
    :class:`SweepExecutionError` at the very end if anything was
    quarantined; ``strict=False`` leaves the failed outcomes in the returned
    list for the caller to report.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    from repro.resilience.retry import backoff_delay

    specs = list(specs)
    total = len(specs)
    outcomes: List[Optional[RunOutcome]] = [None] * total
    done = 0

    def report(index: int, outcome: RunOutcome) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            if outcome.failed:
                source = (f"FAILED after {outcome.attempts} attempt(s): "
                          f"{outcome.error}")
            elif outcome.cached:
                source = "cache hit"
            else:
                source = f"ran in {outcome.runtime_s:.1f}s"
                if outcome.attempts > 1:
                    source += f" (attempt {outcome.attempts})"
            progress(f"[{done}/{total}] {outcome.spec.label}: {source}")

    # Serve store hits first; collect the distinct specs that must run.
    to_run: Dict[str, List[int]] = {}
    for index, spec in enumerate(specs):
        cached = store.load(spec) if store is not None else None
        if cached is not None:
            outcomes[index] = RunOutcome(spec=spec, result=cached, cached=True,
                                         runtime_s=0.0)
            report(index, outcomes[index])
        else:
            to_run.setdefault(spec.spec_hash(), []).append(index)

    def finish(spec_hash: str, result_dict: Dict[str, object],
               runtime_s: float, attempts: int = 1) -> None:
        indices = to_run[spec_hash]
        if store is not None:
            store.save(specs[indices[0]], result_dict)
        for index in indices:
            outcomes[index] = RunOutcome(
                spec=specs[index],
                result=ExperimentResult.from_dict(result_dict),
                cached=False, runtime_s=runtime_s, attempts=attempts)
            report(index, outcomes[index])

    def quarantine(spec_hash: str, attempts: int, runtime_s: float,
                   error: str, trace: Optional[str]) -> None:
        for index in to_run[spec_hash]:
            outcomes[index] = RunOutcome(
                spec=specs[index], result=None, cached=False,
                runtime_s=runtime_s, attempts=attempts, error=error,
                traceback=trace)
            report(index, outcomes[index])

    def note_retry(spec_hash: str, attempt: int, error: str,
                   delay_s: float) -> None:
        if hooks is not None:
            from repro.api.hooks import SPEC_RETRY

            spec = specs[to_run[spec_hash][0]]
            hooks.publish(SPEC_RETRY, attempt, spec.label,
                          {"spec_hash": spec_hash, "error": error,
                           "next_delay_s": delay_s})

    if workers > 1 and len(to_run) > 1:
        _run_supervised(specs, to_run, workers, retries, backoff_base_s,
                        spec_timeout_s, backoff_delay, finish, quarantine,
                        note_retry)
    else:
        for spec_hash, indices in to_run.items():
            attempts = 0
            while True:
                attempts += 1
                started = time.monotonic()
                try:
                    result_dict = _execute_spec(specs[indices[0]].to_dict())
                except Exception as error:  # crash-level faults kill us too;
                    # in-process we can only retry exceptions.
                    if attempts <= retries:
                        delay = backoff_delay(attempts, backoff_base_s)
                        note_retry(spec_hash, attempts, repr(error), delay)
                        if delay > 0.0:
                            time.sleep(delay)
                        continue
                    quarantine(spec_hash, attempts,
                               time.monotonic() - started, repr(error),
                               _traceback.format_exc())
                    break
                finish(spec_hash, result_dict, time.monotonic() - started,
                       attempts)
                break

    results = [outcome for outcome in outcomes if outcome is not None]
    failures = [outcome for outcome in results if outcome.failed]
    if failures and strict:
        raise SweepExecutionError(failures)
    return results


def _run_supervised(specs, to_run, workers, retries, backoff_base_s,
                    spec_timeout_s, backoff_delay, finish, quarantine,
                    note_retry) -> None:
    """The supervised parallel scheduler: one forked process per attempt,
    polled pipes, per-spec retry with backoff, kill-on-timeout."""
    from repro.resilience.supervisor import drain_and_close

    context = multiprocessing.get_context("fork")
    jobs = [_SweepJob(spec_hash, specs[indices[0]])
            for spec_hash, indices in to_run.items()]
    running: Dict[object, _SweepJob] = {}
    max_workers = min(workers, len(jobs))

    def reap_job(job: _SweepJob) -> None:
        if job.connection is not None:
            running.pop(job.connection, None)
            drain_and_close(job.connection)
            job.connection = None
        process = job.process
        job.process = None
        if process is None:
            return
        if process.is_alive():
            process.terminate()
        process.join(timeout=10)
        if process.is_alive():
            process.kill()
            process.join(timeout=10)

    def launch(job: _SweepJob) -> None:
        job.attempts += 1
        parent_end, child_end = context.Pipe()
        process = context.Process(
            target=_sweep_worker, args=(child_end, job.spec.to_dict()),
            name=f"sweep-{job.spec_hash[:8]}", daemon=True)
        process.start()
        child_end.close()
        job.process = process
        job.connection = parent_end
        job.started = time.monotonic()
        job.deadline = (job.started + spec_timeout_s
                        if spec_timeout_s is not None else None)
        running[parent_end] = job

    def fail_attempt(job: _SweepJob, error: str,
                     trace: Optional[str] = None) -> None:
        job.total_runtime_s += time.monotonic() - job.started
        job.last_error = error
        job.last_traceback = trace
        reap_job(job)
        if job.attempts <= retries:
            delay = backoff_delay(job.attempts, backoff_base_s)
            note_retry(job.spec_hash, job.attempts, error, delay)
            job.eligible_at = time.monotonic() + delay
        else:
            job.done = True
            quarantine(job.spec_hash, job.attempts, job.total_runtime_s,
                       error, trace)

    def succeed(job: _SweepJob, result_dict: Dict[str, object]) -> None:
        elapsed = time.monotonic() - job.started
        job.total_runtime_s += elapsed
        job.done = True
        reap_job(job)
        finish(job.spec_hash, result_dict, elapsed, job.attempts)

    try:
        while not all(job.done for job in jobs):
            now = time.monotonic()
            for job in jobs:
                if (job.done or job.process is not None
                        or job.eligible_at > now):
                    continue
                if len(running) >= max_workers:
                    break
                launch(job)
            if not running:
                # Everything live is waiting out a backoff window.
                next_at = min(job.eligible_at for job in jobs
                              if not job.done)
                time.sleep(max(0.0, next_at - time.monotonic()))
                continue
            ready = _connection_wait(list(running),
                                     timeout=_POLL_INTERVAL_S)
            for connection in ready:
                job = running[connection]
                try:
                    message = connection.recv()
                except (EOFError, OSError) as error:
                    fail_attempt(job, f"worker died mid-result "
                                      f"({type(error).__name__})")
                    continue
                except Exception as error:
                    fail_attempt(job, f"corrupt result on the pipe "
                                      f"({type(error).__name__}: {error})")
                    continue
                if message[0] == "ok":
                    succeed(job, message[1])
                else:
                    fail_attempt(job, message[1], message[2])
            now = time.monotonic()
            for connection, job in list(running.items()):
                if connection in ready:
                    continue
                try:
                    if connection.poll(0):
                        continue  # result in flight; recv next slice
                except (EOFError, OSError):
                    pass
                if not job.process.is_alive():
                    fail_attempt(job, f"worker died (exit code "
                                      f"{job.process.exitcode})")
                elif job.deadline is not None and now > job.deadline:
                    job.process.kill()
                    fail_attempt(job, f"no result within {spec_timeout_s}s "
                                      f"(timed out)")
    except BaseException:
        for job in jobs:
            try:
                reap_job(job)
            except Exception:
                pass
        raise


def run_spec(spec: ScenarioSpec,
             store: Optional[ResultStore] = None) -> RunOutcome:
    """Run (or load) a single spec."""
    return run_specs([spec], workers=1, store=store)[0]
