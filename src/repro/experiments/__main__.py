"""Command-line interface for the experiment subsystem.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run <scenario> [--policy P] [--seed N]
    python -m repro.experiments sweep --policies reservation,batch,notebookos,lcp \
        --seeds 7,8,9 --workers 4
    python -m repro.experiments profile <scenario> [--policy P] [--json OUT]
    python -m repro.experiments telemetry <scenario> [--stream interactivity]
    python -m repro.experiments trace <scenario> --out run.trace.json

``run`` and ``sweep`` persist results to the on-disk store (default
``.repro_results/``, override with ``--store-dir`` or the
``REPRO_RESULTS_DIR`` environment variable), so repeating a command is a
cache hit.  See EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.api import (
    ResultStore,
    RunOutcome,
    SweepGrid,
    default_policy_registry,
    default_registry,
    run_specs,
)

SUMMARY_COLUMNS = ["scenario", "policy", "seed", "tasks", "interact_p50_s",
                   "interact_p95_s", "tct_p50_s", "gpu_hours", "migrations",
                   "source", "runtime_s"]


def _csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _csv_ints(text: str) -> List[int]:
    return [int(item) for item in _csv(text)]


def _make_store(args) -> Optional[ResultStore]:
    if getattr(args, "no_store", False):
        return None
    return ResultStore(args.store_dir)


def _print_outcomes(outcomes: Sequence[RunOutcome]) -> None:
    outcomes = [outcome for outcome in outcomes if not outcome.failed]
    if not outcomes:
        return
    rows = []
    for outcome in outcomes:
        summary = outcome.result.summary()
        rows.append({
            "scenario": outcome.spec.scenario,
            "policy": outcome.spec.policy,
            "seed": outcome.spec.seed,
            "tasks": summary["tasks_completed"],
            "interact_p50_s": _round(summary["interactivity_p50_s"]),
            "interact_p95_s": _round(summary["interactivity_p95_s"]),
            "tct_p50_s": _round(summary["tct_p50_s"]),
            "gpu_hours": summary["provisioned_gpu_hours"],
            "migrations": summary["migrations"],
            "source": "store" if outcome.cached else "run",
            "runtime_s": round(outcome.runtime_s, 1),
        })
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows))
              for c in SUMMARY_COLUMNS}
    header = "  ".join(c.ljust(widths[c]) for c in SUMMARY_COLUMNS)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row[c]).ljust(widths[c]) for c in SUMMARY_COLUMNS))


def _round(value, digits: int = 2):
    return round(value, digits) if value is not None else "-"


def _print_failures(failures: Sequence[RunOutcome]) -> None:
    """Per-spec failure summary: label, attempt count, failure headline."""
    print(f"\n{len(failures)} spec(s) quarantined:", file=sys.stderr)
    for outcome in failures:
        headline = outcome.error or "unknown failure"
        if outcome.traceback:
            lines = [line for line in outcome.traceback.strip().splitlines()
                     if line.strip()]
            if lines:
                headline = lines[-1].strip()
        print(f"  {outcome.spec.label}: failed after {outcome.attempts} "
              f"attempt(s): {headline}", file=sys.stderr)


def _report_store(store: Optional[ResultStore], total: int) -> None:
    if store is None:
        return
    print(f"\nstore: {store.hits}/{total} cache hits "
          f"({store.root.resolve()})")


def cmd_list(args) -> int:
    registry = default_registry()
    for scenario in registry:
        kwargs = ", ".join(f"{k}={v}" for k, v in
                           sorted(scenario.generator_kwargs.items()))
        print(f"{scenario.name:<10} generator={scenario.generator} "
              f"preset={scenario.config_preset} seed={scenario.default_seed}")
        print(f"           {scenario.description}")
        print(f"           knobs: {kwargs}")
    print("\npolicies:")
    for entry in default_policy_registry():
        aliases = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
        print(f"{entry.name:<12} {entry.description}{aliases}")
    store = ResultStore(args.store_dir)
    entries = list(store.entries())
    print(f"\nresult store: {store.root.resolve()} ({len(entries)} cached "
          f"result{'s' if len(entries) != 1 else ''})")
    return 0


def _qos_block(args) -> Optional[dict]:
    """Parse the ``--qos`` shorthand targets into a spec ``qos`` block."""
    if not getattr(args, "qos", None):
        return None
    from repro.qos import QosConfig

    config = QosConfig.from_specs(args.qos, window_s=args.qos_window)
    config.validate()
    return config.to_dict()


def _run_with_qos(spec) -> int:
    """Run one QoS-enabled spec, printing the live control-loop timeline."""
    from repro.api import (
        QOS_ACTION,
        QOS_BREACH,
        QOS_RECOVER,
        RUN_END,
        Simulation,
    )

    qos_stats: dict = {}
    sim = (Simulation.from_spec(spec)
           .on(QOS_BREACH, lambda t, name, detail: print(
               f"[{t:10.1f}s] breach  {name}: "
               f"{detail['stat']}={detail['value']:.2f} "
               f"(threshold {detail['threshold']:g})"))
           .on(QOS_ACTION, lambda t, name, action, detail: print(
               f"[{t:10.1f}s] action  {name} -> {action}"))
           .on(QOS_RECOVER, lambda t, name, detail: print(
               f"[{t:10.1f}s] recover {name}: "
               f"{detail['stat']}={detail['value']:.2f}"))
           .on(RUN_END, lambda p, r, stats: qos_stats.update(
               stats.get("qos", {}))))
    result = sim.run()
    summary = result.summary()
    print(f"\ntasks={summary['tasks_completed']}  "
          f"interact_p50={_round(summary['interactivity_p50_s'])}s  "
          f"tct_p50={_round(summary['tct_p50_s'])}s  "
          f"migrations={summary['migrations']}")
    for name, entry in sorted(qos_stats.get("targets", {}).items()):
        print(f"qos {name}: breaches={entry['breaches']} "
              f"recoveries={entry['recoveries']} "
              f"actions={entry['actions_fired']} ({entry['action']}) "
              f"final={entry['final_state']}")
    return 0


def _run_sharded_cli(spec, args) -> int:
    """Run one spec space-sharded under the supervised driver."""
    from repro.resilience import SupervisorConfig
    from repro.shard import run_sharded

    config = SupervisorConfig(
        worker_timeout_s=args.worker_timeout,
        max_worker_restarts=(3 if args.retries is None else args.retries))
    sharded = run_sharded(spec, args.shards, supervision=config)
    _print_outcomes([RunOutcome(spec=spec, result=sharded.result,
                                cached=False, runtime_s=0.0)])
    summary = (f"\nmode={sharded.mode}  shards={sharded.num_shards}  "
               f"barrier_stall={sharded.barrier_stall_s:.2f}s")
    resilience = sharded.resilience
    if resilience.get("workers_lost"):
        summary += (f"  workers_lost={resilience['workers_lost']}  "
                    f"workers_recovered={resilience['workers_recovered']}")
        if resilience.get("degraded"):
            summary += "  (degraded to serial driver)"
    print(summary)
    return 0


def cmd_run(args) -> int:
    scenario = default_registry().get(args.scenario)
    spec = scenario.instantiate(policy=args.policy, seed=args.seed,
                                num_sessions=args.sessions,
                                duration_hours=args.hours,
                                qos=_qos_block(args))
    if spec.qos:
        # A QoS run is about the live breach/action/recovery timeline, which
        # only exists while hooks fire — run it directly, bypassing the store.
        return _run_with_qos(spec)
    if args.shards > 1:
        # Sharded runs bypass the store (like profile/telemetry --shards):
        # the merged result is bit-identical to serial, but the resilience /
        # barrier accounting only exists on the live run.
        return _run_sharded_cli(spec, args)
    store = _make_store(args)
    outcomes = run_specs([spec], workers=1, store=store, progress=print,
                         retries=args.retries or 0, strict=False)
    failures = [outcome for outcome in outcomes if outcome.failed]
    if failures:
        _print_failures(failures)
        return 2
    _print_outcomes(outcomes)
    _report_store(store, 1)
    return 0


def cmd_profile(args) -> int:
    """Run one scenario with a :class:`repro.profiling.Profiler` attached."""
    import json as _json
    from pathlib import Path

    from repro.api import Simulation
    from repro.profiling import Profiler

    scenario = default_registry().get(args.scenario)
    spec = scenario.instantiate(policy=args.policy, seed=args.seed,
                                num_sessions=args.sessions,
                                duration_hours=args.hours)
    if args.shards > 1:
        # Sharded run: one profiler per shard; each shard's report carries
        # its own phase timings plus the barrier/dispatch shard counters.
        from repro.shard import run_sharded

        sharded = run_sharded(spec, args.shards, profile=True)
        for payload in sharded.shard_payloads:
            index = payload["shard"]["index"]
            print(f"--- shard {index}/{args.shards} ---")
            print(payload["profile_text"])
        result = sharded.result
        summary = result.summary()
        print(f"\nmode={sharded.mode}  shards={sharded.num_shards}  "
              f"barrier_stall={sharded.barrier_stall_s:.2f}s  "
              f"tasks={summary['tasks_completed']}  "
              f"interact_p50={_round(summary['interactivity_p50_s'])}s  "
              f"tct_p50={_round(summary['tct_p50_s'])}s  "
              f"migrations={summary['migrations']}")
        if args.json:
            document = {"shards": [payload["profile"]
                                   for payload in sharded.shard_payloads]}
            Path(args.json).write_text(
                _json.dumps(document, indent=2, sort_keys=True) + "\n")
            print(f"wrote {args.json}")
        return 0
    profiler = Profiler()
    result = Simulation.from_spec(spec).with_profiler(profiler).run()
    report = profiler.last
    print(report.format())
    summary = result.summary()
    print(f"\ntasks={summary['tasks_completed']}  "
          f"interact_p50={_round(summary['interactivity_p50_s'])}s  "
          f"tct_p50={_round(summary['tct_p50_s'])}s  "
          f"migrations={summary['migrations']}")
    if args.json:
        Path(args.json).write_text(report.to_json() + "\n")
        print(f"wrote {args.json}")
    return 0


def cmd_telemetry(args) -> int:
    """Run one scenario with streaming telemetry attached."""
    from pathlib import Path

    from repro.api import Simulation
    from repro.telemetry import Telemetry

    scenario = default_registry().get(args.scenario)
    spec = scenario.instantiate(policy=args.policy, seed=args.seed,
                                num_sessions=args.sessions,
                                duration_hours=args.hours,
                                qos=_qos_block(args))
    if args.shards > 1:
        # Sharded run: one telemetry attachment per shard; print each
        # shard's report (the windows cover the same global horizon).
        import json as _json

        from repro.shard import run_sharded
        from repro.telemetry import TelemetryReport

        sharded = run_sharded(
            spec, args.shards, sketch=args.sketch,
            telemetry_kwargs={"window_s": args.window, "spans": args.spans})
        for payload in sharded.shard_payloads:
            report = TelemetryReport.from_dict(payload["telemetry"])
            if args.stream is not None and args.stream not in report.streams:
                raise KeyError(
                    f"unknown stream {args.stream!r} "
                    f"(known: {', '.join(sorted(report.streams))})")
            index = payload["shard"]["index"]
            print(f"--- shard {index}/{args.shards} ---")
            print(report.format(stream=args.stream))
        print(f"mode={sharded.mode}  shards={sharded.num_shards}  "
              f"barrier_stall={sharded.barrier_stall_s:.2f}s")
        if args.json:
            document = {"shards": [payload["telemetry"]
                                   for payload in sharded.shard_payloads]}
            Path(args.json).write_text(
                _json.dumps(document, indent=2, sort_keys=True) + "\n")
            print(f"wrote {args.json}")
        if args.store_artifact:
            store = ResultStore(args.store_dir)
            path = store.save_artifact(
                spec, "telemetry",
                {"shards": [payload["telemetry"]
                            for payload in sharded.shard_payloads]})
            print(f"stored telemetry artifact at {path}")
        return 0
    telemetry = Telemetry(window_s=args.window, spans=args.spans)
    sim = Simulation.from_spec(spec).with_telemetry(telemetry)
    if args.sketch:
        sim.with_sketch_metrics()
    qos_stats: dict = {}
    if spec.qos:
        from repro.api import RUN_END
        sim.on(RUN_END,
               lambda p, r, stats: qos_stats.update(stats.get("qos", {})))
    sim.run()
    report = telemetry.last
    if args.stream is not None and args.stream not in report.streams:
        raise KeyError(f"unknown stream {args.stream!r} "
                       f"(known: {', '.join(sorted(report.streams))})")
    print(report.format(stream=args.stream))
    for name, entry in sorted(qos_stats.get("targets", {}).items()):
        print(f"qos {name}: breaches={entry['breaches']} "
              f"recoveries={entry['recoveries']} "
              f"actions={entry['actions_fired']} ({entry['action']}) "
              f"final={entry['final_state']}")
    if args.json:
        Path(args.json).write_text(report.to_json() + "\n")
        print(f"wrote {args.json}")
    if args.store_artifact:
        store = ResultStore(args.store_dir)
        path = store.save_artifact(spec, "telemetry", report.to_dict())
        print(f"stored telemetry artifact at {path}")
    return 0


def cmd_trace(args) -> int:
    """Run one scenario recording trace spans and export them as JSON."""
    import json
    from pathlib import Path

    from repro.api import Simulation
    from repro.telemetry import Telemetry

    scenario = default_registry().get(args.scenario)
    spec = scenario.instantiate(policy=args.policy, seed=args.seed,
                                num_sessions=args.sessions,
                                duration_hours=args.hours)
    telemetry = Telemetry(window_s=args.window, spans=True)
    Simulation.from_spec(spec).with_telemetry(telemetry).run()
    report = telemetry.last
    out = Path(args.out if args.out else f"{args.scenario}.trace.json")
    document = report.timeline() if args.timeline else report.chrome_trace()
    out.write_text(json.dumps(document) + "\n")
    counts = ", ".join(f"{category}={count}" for category, count
                       in sorted(report.span_counts.items()))
    print(f"trace: {report.trace_name} / {report.policy} — "
          f"{len(report.spans)} spans ({counts})")
    hint = "" if args.timeline else \
        "  (load in https://ui.perfetto.dev or chrome://tracing)"
    print(f"wrote {out}{hint}")
    return 0


def cmd_sweep(args) -> int:
    generator_grid = {}
    if args.sessions:
        generator_grid["num_sessions"] = _csv_ints(args.sessions)
    grid = SweepGrid(scenario=args.scenario, policies=_csv(args.policies),
                     seeds=_csv_ints(args.seeds) or [None],
                     generator_grid=generator_grid)
    specs = grid.expand()
    if not specs:
        raise ValueError("empty sweep: --policies expanded to no runs")
    print(f"sweep: {len(specs)} runs "
          f"({len(grid.policies)} policies x {len(grid.seeds)} seeds"
          + (f" x {generator_grid}" if generator_grid else "")
          + f"), workers={args.workers}")
    store = _make_store(args)
    if args.resume and store is None:
        raise ValueError("--resume needs the result store "
                         "(drop --no-store)")
    outcomes = run_specs(specs, workers=args.workers, store=store,
                         progress=print, retries=args.retries or 0,
                         spec_timeout_s=args.worker_timeout,
                         strict=False)
    print()
    _print_outcomes(outcomes)
    _report_store(store, len(specs))
    if args.resume:
        resumed = sum(1 for outcome in outcomes if outcome.cached)
        print(f"resume: {resumed} spec(s) served from the store, "
              f"{len(outcomes) - resumed} executed")
    failures = [outcome for outcome in outcomes if outcome.failed]
    if failures:
        _print_failures(failures)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run and sweep NotebookOS reproduction experiments.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store_args(p):
        p.add_argument("--store-dir", default=None,
                       help="result store directory (default .repro_results "
                            "or $REPRO_RESULTS_DIR)")

    p_list = sub.add_parser("list", help="list registered scenarios")
    add_store_args(p_list)
    p_list.set_defaults(func=cmd_list)

    p_run = sub.add_parser("run", help="run one scenario once")
    p_run.add_argument("scenario")
    p_run.add_argument("--policy", default=None)
    p_run.add_argument("--seed", type=int, default=None)
    p_run.add_argument("--sessions", type=int, default=None,
                       help="override the scenario's session count")
    p_run.add_argument("--hours", type=float, default=None,
                       help="override the scenario's duration (hours)")
    p_run.add_argument("--no-store", action="store_true",
                       help="do not read or write the result store")
    p_run.add_argument("--qos", action="append", default=None,
                       metavar="TARGET",
                       help="enable the QoS control plane with this target "
                            "(shorthand 'metric:stat<op>threshold:action"
                            "[,key=value...]', e.g. "
                            "'interactivity:p99>60:autoscaler_override'; "
                            "repeatable)")
    p_run.add_argument("--qos-window", type=float, default=300.0,
                       help="QoS evaluation window in simulated seconds "
                            "(default 300)")
    p_run.add_argument("--shards", type=int, default=1,
                       help="run space-sharded over K supervised processes "
                            "(see repro.shard; default 1 = serial)")
    p_run.add_argument("--retries", type=int, default=None,
                       help="retry budget: per-spec retries for a plain run, "
                            "per-shard consecutive restarts for --shards "
                            "(default 0 / 3)")
    p_run.add_argument("--worker-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="kill a shard worker that misses a barrier "
                            "deadline by this many wall seconds "
                            "(--shards only; default: no deadline)")
    add_store_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_profile = sub.add_parser(
        "profile",
        help="run one scenario with the profiler attached and print "
             "per-phase wall time + event-class counters")
    p_profile.add_argument("scenario")
    p_profile.add_argument("--policy", default=None)
    p_profile.add_argument("--seed", type=int, default=None)
    p_profile.add_argument("--sessions", type=int, default=None,
                           help="override the scenario's session count")
    p_profile.add_argument("--hours", type=float, default=None,
                           help="override the scenario's duration (hours)")
    p_profile.add_argument("--json", default=None,
                           help="also write the report as JSON to this path")
    p_profile.add_argument("--shards", type=int, default=1,
                           help="run space-sharded over K processes "
                                "(see repro.shard; default 1 = serial)")
    p_profile.set_defaults(func=cmd_profile)

    p_tele = sub.add_parser(
        "telemetry",
        help="run one scenario with streaming windowed metrics attached "
             "and print per-stream rates and percentile sketches")
    p_tele.add_argument("scenario")
    p_tele.add_argument("--policy", default=None)
    p_tele.add_argument("--seed", type=int, default=None)
    p_tele.add_argument("--sessions", type=int, default=None,
                        help="override the scenario's session count")
    p_tele.add_argument("--hours", type=float, default=None,
                        help="override the scenario's duration (hours)")
    p_tele.add_argument("--window", type=float, default=300.0,
                        help="tumbling window length in simulated seconds")
    p_tele.add_argument("--stream", default=None,
                        help="also print the per-window table of this stream "
                             "(e.g. interactivity)")
    p_tele.add_argument("--spans", action="store_true",
                        help="record lifecycle trace spans too")
    p_tele.add_argument("--sketch", action="store_true",
                        help="run the metrics collector in fixed-memory "
                             "sketch mode")
    p_tele.add_argument("--json", default=None,
                        help="also write the telemetry report as JSON")
    p_tele.add_argument("--store-artifact", action="store_true",
                        help="persist the report as a result-store artifact")
    p_tele.add_argument("--shards", type=int, default=1,
                        help="run space-sharded over K processes "
                             "(see repro.shard; default 1 = serial)")
    p_tele.add_argument("--qos", action="append", default=None,
                        metavar="TARGET",
                        help="enable the QoS control plane with this target "
                             "(shorthand form, repeatable; see 'run --qos')")
    p_tele.add_argument("--qos-window", type=float, default=300.0,
                        help="QoS evaluation window in simulated seconds "
                             "(default 300)")
    add_store_args(p_tele)
    p_tele.set_defaults(func=cmd_telemetry)

    p_trace = sub.add_parser(
        "trace",
        help="run one scenario recording lifecycle spans and write a "
             "Chrome trace_event file (Perfetto-loadable)")
    p_trace.add_argument("scenario")
    p_trace.add_argument("--policy", default=None)
    p_trace.add_argument("--seed", type=int, default=None)
    p_trace.add_argument("--sessions", type=int, default=None,
                         help="override the scenario's session count")
    p_trace.add_argument("--hours", type=float, default=None,
                         help="override the scenario's duration (hours)")
    p_trace.add_argument("--window", type=float, default=300.0,
                         help="tumbling window length in simulated seconds")
    p_trace.add_argument("--out", default=None,
                         help="output path (default <scenario>.trace.json)")
    p_trace.add_argument("--timeline", action="store_true",
                         help="write the plain JSON span timeline instead "
                              "of Chrome trace_event format")
    p_trace.set_defaults(func=cmd_trace)

    p_sweep = sub.add_parser("sweep", help="run a policies x seeds grid")
    p_sweep.add_argument("--scenario", default="excerpt")
    p_sweep.add_argument("--policies", default="reservation,batch,notebookos,lcp")
    p_sweep.add_argument("--seeds", default="7")
    p_sweep.add_argument("--sessions", default=None,
                         help="comma-separated session counts (extra grid axis)")
    p_sweep.add_argument("--workers", type=int, default=1)
    p_sweep.add_argument("--no-store", action="store_true",
                         help="do not read or write the result store")
    p_sweep.add_argument("--retries", type=int, default=None,
                         help="retry each failing spec this many times "
                              "before quarantining it (default 0)")
    p_sweep.add_argument("--worker-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="kill a sweep worker that takes longer than "
                              "this many wall seconds per attempt "
                              "(parallel sweeps; default: no deadline)")
    p_sweep.add_argument("--resume", action="store_true",
                         help="explicitly resume a partial sweep: serve "
                              "everything already in the store and report "
                              "how much was skipped (store hits always "
                              "short-circuit; this makes the count visible)")
    add_store_args(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError) as error:
        # Unknown scenario/policy/preset or a malformed --seeds/--sessions
        # list: the message already names the valid choices.
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
