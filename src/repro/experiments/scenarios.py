"""Scenario specs, config presets, and the named scenario registry.

A :class:`Scenario` is a named, parameterized experiment template: a trace
generator (referenced by its :mod:`repro.workload` registry name), default
policy and seed, and a config preset describing how platform/cluster
configurations are derived.  :meth:`Scenario.instantiate` binds the free
parameters (policy, seed, generator overrides) and yields a
:class:`ScenarioSpec` — plain, JSON-serializable data whose content hash is
the cache key used by the result store.

The paper's experiments are registered out of the box:

* ``excerpt`` — the 17.5-hour AdobeTrace excerpt replayed by the prototype
  evaluation (Figures 7-11 and 15-19);
* ``summer``  — the 90-day summer simulation study (Figures 12-14 and 20),
  scaled down in session count (see EXPERIMENTS.md);
* ``smoke``   — a seconds-scale scenario for CI and quick sanity checks.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.cluster.prewarmer import PrewarmPolicy
from repro.core.config import ClusterConfig, PlatformConfig
from repro.workload.generator import make_generator
from repro.workload.trace import Trace


def stable_hash(payload: object, length: int = 16) -> str:
    """A deterministic content hash of a JSON-serializable payload.

    Keys are sorted so logically identical dicts hash identically regardless
    of insertion order; the hash is stable across processes and sessions
    (unlike ``hash()``, which is salted per process).
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:length]


@dataclass
class ScenarioSpec:
    """One fully bound experiment: generator + policy + seed + configs.

    The spec is pure data — it contains everything needed to deterministically
    regenerate the trace and rerun the experiment, and nothing else.  Its
    :meth:`spec_hash` is the content-addressed key under which results are
    cached by :class:`repro.experiments.store.ResultStore`.
    """

    scenario: str
    generator: str
    policy: str
    seed: int
    generator_kwargs: Dict[str, object] = field(default_factory=dict)
    config_preset: str = "default"
    #: Constructor keyword arguments for the policy (registry knobs, e.g.
    #: ``gpu_wait_poll_s`` for NotebookOS) — tuned policy variants stay
    #: plain data: sweepable, storable, and part of the content hash.
    policy_kwargs: Dict[str, object] = field(default_factory=dict)
    #: The declarative QoS block (``QosConfig.to_dict()`` form; see
    #: :mod:`repro.qos`) — empty means no controller.  Like
    #: ``policy_kwargs`` it stays plain data: sweepable, storable, and
    #: part of the content hash when (and only when) set.
    qos: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        data = {
            "scenario": self.scenario,
            "generator": self.generator,
            "policy": self.policy,
            "seed": self.seed,
            "generator_kwargs": dict(self.generator_kwargs),
            "config_preset": self.config_preset,
        }
        if self.policy_kwargs:
            # Only present when set: specs without tuned knobs keep the
            # content hash (= result-store key) they had before the field
            # existed.
            data["policy_kwargs"] = dict(self.policy_kwargs)
        if self.qos:
            # Same contract: qos-less specs keep their pre-QoS hash.
            data["qos"] = dict(self.qos)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        return cls(scenario=data["scenario"], generator=data["generator"],
                   policy=data["policy"], seed=data["seed"],
                   generator_kwargs=dict(data["generator_kwargs"]),
                   config_preset=data.get("config_preset", "default"),
                   policy_kwargs=dict(data.get("policy_kwargs", {})),
                   qos=dict(data.get("qos", {})))

    def spec_hash(self) -> str:
        return stable_hash(self.to_dict())

    @property
    def label(self) -> str:
        base = f"{self.scenario}/{self.policy}/seed{self.seed}"
        if self.policy_kwargs:
            # Tuned variants must be tellable apart in sweep progress
            # output — the hash differs, but humans read labels.
            knobs = ",".join(f"{key}={value}" for key, value
                             in sorted(self.policy_kwargs.items()))
            base = f"{base}[{knobs}]"
        if self.qos:
            targets = self.qos.get("targets", [])
            names = ",".join(t.get("name", "?") for t in targets)
            base = f"{base}{{qos:{names}}}"
        return base


def build_trace(spec: ScenarioSpec) -> Trace:
    """Deterministically generate the workload trace described by ``spec``."""
    generator = make_generator(spec.generator, seed=spec.seed,
                               **spec.generator_kwargs)
    return generator.generate()


# ----------------------------------------------------------------------
# Config presets.
#
# Specs reference platform/cluster configuration by preset *name* so they
# stay hashable data; the preset resolves to concrete config objects at run
# time (deterministically — presets may inspect the trace, e.g. to size a
# statically provisioned cluster to peak demand).
# ----------------------------------------------------------------------
ConfigResolver = Callable[[ScenarioSpec, Trace],
                          Tuple[Optional[PlatformConfig], Optional[ClusterConfig]]]

_CONFIG_PRESETS: Dict[str, ConfigResolver] = {}


def register_config_preset(name: str, resolver: ConfigResolver,
                           replace: bool = False) -> None:
    if not replace and name in _CONFIG_PRESETS:
        raise ValueError(f"config preset {name!r} is already registered")
    _CONFIG_PRESETS[name] = resolver


def resolve_configs(spec: ScenarioSpec, trace: Trace
                    ) -> Tuple[Optional[PlatformConfig], Optional[ClusterConfig]]:
    """Resolve a spec's config preset to (platform_config, cluster_config)."""
    try:
        resolver = _CONFIG_PRESETS[spec.config_preset]
    except KeyError:
        known = ", ".join(sorted(_CONFIG_PRESETS))
        raise KeyError(f"unknown config preset {spec.config_preset!r} "
                       f"(known: {known})") from None
    return resolver(spec, trace)


def _default_configs(spec: ScenarioSpec, trace: Trace):
    # None lets run_experiment pick its per-policy defaults.
    return None, None


def long_run_platform_config() -> PlatformConfig:
    """Platform configuration tuned for multi-week simulated horizons."""
    return PlatformConfig(
        metrics_sample_interval_s=1800.0,
        autoscaler_interval_s=600.0,
        prewarm_policy=PrewarmPolicy(initial_per_host=1, min_per_host=1,
                                     replenish_interval=1800.0))


def long_run_cluster_config(policy: str, trace: Trace) -> ClusterConfig:
    """Cluster sizing for the 90-day runs (mirrors run_experiment defaults)."""
    peak = max((sum(s.gpus_requested for s in trace
                    if s.start_time <= t < s.end_time)
                for t in [trace.duration * f for f in (0.25, 0.5, 0.75, 0.999)]),
               default=8)
    if policy in ("notebookos", "lcp"):
        initial = max(2, peak // 32)
    else:
        initial = max(2, peak // 8 + 2)
    return ClusterConfig(initial_hosts=initial, max_hosts=max(80, initial * 4))


def _long_run_configs(spec: ScenarioSpec, trace: Trace):
    return long_run_platform_config(), long_run_cluster_config(spec.policy, trace)


def cluster_scale_platform_config() -> PlatformConfig:
    """Platform configuration for the hundreds-of-hosts stress scenario.

    Control-loop intervals are relaxed so wall-clock time goes into the
    workload itself rather than into sampling an almost-unchanged cluster
    every simulated minute.
    """
    return PlatformConfig(
        metrics_sample_interval_s=300.0,
        autoscaler_interval_s=300.0,
        prewarm_policy=PrewarmPolicy(initial_per_host=1, min_per_host=1,
                                     replenish_interval=3600.0))


def cluster_scale_cluster_config(policy: str, trace: Trace) -> ClusterConfig:
    """Size a cluster of hundreds of hosts to the trace's peak GPU demand."""
    events = []
    for session in trace:
        events.append((session.start_time, session.gpus_requested))
        events.append((session.end_time, -session.gpus_requested))
    peak = current = 0
    for _, delta in sorted(events):
        current += delta
        peak = max(peak, current)
    gpus_per_host = 8
    if policy in ("notebookos", "lcp"):
        initial = max(100, peak // (gpus_per_host * 4))
    else:
        initial = max(100, peak // gpus_per_host + 8)
    return ClusterConfig(initial_hosts=initial,
                         max_hosts=max(initial * 2, peak // gpus_per_host + 32))


def _cluster_scale_configs(spec: ScenarioSpec, trace: Trace):
    return (cluster_scale_platform_config(),
            cluster_scale_cluster_config(spec.policy, trace))


def mega_scale_platform_config() -> PlatformConfig:
    """Platform configuration for the ~1000-host stress scenario.

    Control loops are relaxed further than ``cluster_scale``: at this size
    the workload itself dominates, and a 10-minute sampling/autoscaling
    cadence keeps the per-interval bookkeeping negligible without changing
    what the scenario exercises (placement-decision throughput).
    """
    return PlatformConfig(
        metrics_sample_interval_s=600.0,
        autoscaler_interval_s=600.0,
        prewarm_policy=PrewarmPolicy(initial_per_host=1, min_per_host=1,
                                     replenish_interval=7200.0))


def mega_scale_cluster_config(policy: str, trace: Trace) -> ClusterConfig:
    """Size a ~1000-host cluster to the trace's peak GPU demand.

    Oversubscribing policies start at peak/1.5 (``peak // 12`` 8-GPU hosts —
    about 930 hosts for the default 5000-session trace) and may scale out to
    fully provisioned peak plus headroom; Reservation/Batch cannot
    oversubscribe and get the fully provisioned sizing up front.
    """
    events = []
    for session in trace:
        events.append((session.start_time, session.gpus_requested))
        events.append((session.end_time, -session.gpus_requested))
    peak = current = 0
    for _, delta in sorted(events):
        current += delta
        peak = max(peak, current)
    gpus_per_host = 8
    if policy in ("notebookos", "lcp"):
        initial = max(400, peak // 12)
    else:
        initial = max(400, peak // gpus_per_host + 8)
    return ClusterConfig(initial_hosts=initial,
                         max_hosts=max(initial + 64, peak // gpus_per_host + 64))


def _mega_scale_configs(spec: ScenarioSpec, trace: Trace):
    return (mega_scale_platform_config(),
            mega_scale_cluster_config(spec.policy, trace))


def giga_scale_platform_config() -> PlatformConfig:
    """Platform configuration for the ~10000-host scenario.

    Same relaxed control loops as ``mega_scale`` — at 50k sessions the
    workload dominates entirely; the scenario exists to exercise the
    sharded runner (:mod:`repro.shard`), and an order-of-magnitude larger
    fleet with tighter loops would just multiply bookkeeping noise.
    """
    return PlatformConfig(
        metrics_sample_interval_s=600.0,
        autoscaler_interval_s=600.0,
        prewarm_policy=PrewarmPolicy(initial_per_host=1, min_per_host=1,
                                     replenish_interval=7200.0))


def giga_scale_cluster_config(policy: str, trace: Trace) -> ClusterConfig:
    """Size a ~10000-host cluster to the trace's peak GPU demand.

    Same shape as ``mega_scale``: oversubscribing policies start at
    peak/1.5 (the full 50k-session trace peaks high enough for several
    thousand initial 8-GPU hosts) with scale-out headroom toward fully
    provisioned peak.  The floor deliberately stays at 400 rather than
    scaling with the scenario: under the sharded runner each shard
    resolves this preset against its *sub-trace*, and a scenario-sized
    floor would give every shard the full fleet instead of ~1/K of it.
    """
    events = []
    for session in trace:
        events.append((session.start_time, session.gpus_requested))
        events.append((session.end_time, -session.gpus_requested))
    peak = current = 0
    for _, delta in sorted(events):
        current += delta
        peak = max(peak, current)
    gpus_per_host = 8
    if policy in ("notebookos", "lcp"):
        initial = max(400, peak // 12)
    else:
        initial = max(400, peak // gpus_per_host + 8)
    return ClusterConfig(initial_hosts=initial,
                         max_hosts=max(initial + 64, peak // gpus_per_host + 64))


def _giga_scale_configs(spec: ScenarioSpec, trace: Trace):
    return (giga_scale_platform_config(),
            giga_scale_cluster_config(spec.policy, trace))


def failure_storm_platform_config() -> PlatformConfig:
    """Platform configuration for the host-failure chaos scenario.

    One host failure every 10 simulated minutes (see
    :mod:`repro.core.chaos`), with a tight autoscaler cadence so backfill
    competes with the storm — the condition that makes QoS targets breach
    and recover within a few telemetry windows.
    """
    return PlatformConfig(
        host_failure_interval_s=600.0,
        min_surviving_hosts=2,
        autoscaler_interval_s=120.0,
        metrics_sample_interval_s=120.0)


def failure_storm_cluster_config(policy: str, trace: Trace) -> ClusterConfig:
    """A deliberately tight cluster: the storm must actually hurt.

    Sized just above half the trace's peak GPU demand so every lost host
    is felt, with scale-out headroom for recovery.
    """
    events = []
    for session in trace:
        events.append((session.start_time, session.gpus_requested))
        events.append((session.end_time, -session.gpus_requested))
    peak = current = 0
    for _, delta in sorted(events):
        current += delta
        peak = max(peak, current)
    gpus_per_host = 8
    initial = max(4, peak // (gpus_per_host * 2))
    return ClusterConfig(initial_hosts=initial,
                         max_hosts=max(initial * 3,
                                       peak // gpus_per_host + 8))


def _failure_storm_configs(spec: ScenarioSpec, trace: Trace):
    return (failure_storm_platform_config(),
            failure_storm_cluster_config(spec.policy, trace))


register_config_preset("default", _default_configs)
register_config_preset("long_run", _long_run_configs)
register_config_preset("cluster_scale", _cluster_scale_configs)
register_config_preset("mega_scale", _mega_scale_configs)
register_config_preset("giga_scale", _giga_scale_configs)
register_config_preset("failure_storm", _failure_storm_configs)


# ----------------------------------------------------------------------
# Scenarios and the registry.
# ----------------------------------------------------------------------
@dataclass
class Scenario:
    """A named, parameterized experiment template."""

    name: str
    description: str
    generator: str = "adobe"
    default_policy: str = "notebookos"
    default_seed: int = 0
    generator_kwargs: Dict[str, object] = field(default_factory=dict)
    config_preset: str = "default"

    def instantiate(self, policy: Optional[str] = None,
                    seed: Optional[int] = None,
                    policy_kwargs: Optional[Dict[str, object]] = None,
                    qos: Optional[Dict[str, object]] = None,
                    **generator_overrides) -> ScenarioSpec:
        """Bind the free parameters and return a runnable spec.

        ``generator_overrides`` update the scenario's generator kwargs
        (e.g. ``num_sessions=30``); ``None`` values are ignored so CLI
        plumbing can pass optional flags straight through.
        ``policy_kwargs`` are constructor knobs for the policy (tuned
        variants; part of the spec hash).  ``qos`` is a declarative QoS
        block in ``QosConfig.to_dict()`` form (see :mod:`repro.qos`;
        also part of the spec hash when set).
        """
        kwargs = dict(self.generator_kwargs)
        kwargs.update({key: value for key, value in generator_overrides.items()
                       if value is not None})
        return ScenarioSpec(
            scenario=self.name, generator=self.generator,
            policy=policy or self.default_policy,
            seed=self.default_seed if seed is None else seed,
            generator_kwargs=kwargs, config_preset=self.config_preset,
            policy_kwargs=dict(policy_kwargs or {}),
            qos=dict(qos or {}))


class ScenarioRegistry:
    """Name -> :class:`Scenario` lookup."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    def register(self, scenario: Scenario, replace: bool = False) -> Scenario:
        if not replace and scenario.name in self._scenarios:
            raise ValueError(f"scenario {scenario.name!r} is already registered")
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            known = ", ".join(sorted(self._scenarios)) or "<none>"
            raise KeyError(f"unknown scenario {name!r} (known: {known})") from None

    def names(self) -> List[str]:
        return sorted(self._scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self._scenarios[name] for name in self.names())

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios


# Scale knobs shared with the benchmark harnesses (see EXPERIMENTS.md).
EXCERPT_SESSIONS = 90          # Fig. 7: up to 90 concurrent sessions
EXCERPT_HOURS = 17.5           # the 17.5-hour AdobeTrace excerpt
SIMULATION_SESSIONS = 60       # scaled-down stand-in for the 433-session trace
SIMULATION_DAYS = 90
CLUSTER_SCALE_SESSIONS = 2000  # thousands of sessions on hundreds of hosts
CLUSTER_SCALE_HOURS = 6.0
FAILURE_STORM_SESSIONS = 40    # chaos scenario: host failures under load
FAILURE_STORM_HOURS = 4.0
MEGA_SCALE_SESSIONS = 5000     # placement stress: ~1000 hosts (bench_placement.py)
MEGA_SCALE_HOURS = 8.0
GIGA_SCALE_SESSIONS = 50000    # sharded-runner stress: ~10000 hosts (bench_giga.py)
GIGA_SCALE_HOURS = 8.0

_DEFAULT_REGISTRY: Optional[ScenarioRegistry] = None


def default_registry() -> ScenarioRegistry:
    """The process-wide registry with the paper's scenarios pre-registered."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        registry = ScenarioRegistry()
        registry.register(Scenario(
            name="excerpt",
            description="17.5-hour AdobeTrace excerpt, 90 sessions "
                        "(prototype evaluation, Figs. 7-11 and 15-19)",
            generator="adobe", default_seed=7,
            generator_kwargs={"num_sessions": EXCERPT_SESSIONS,
                              "duration_hours": EXCERPT_HOURS}))
        registry.register(Scenario(
            name="summer",
            description="90-day summer trace, scaled to 60 sessions "
                        "(simulation study, Figs. 12-14 and 20)",
            generator="adobe", default_seed=21,
            generator_kwargs={"num_sessions": SIMULATION_SESSIONS,
                              "duration_hours": SIMULATION_DAYS * 24.0,
                              "work_bout_hours": 2.0,
                              "bouts_per_day": 1.5},
            config_preset="long_run"))
        registry.register(Scenario(
            name="smoke",
            description="12 sessions over 2 hours — seconds-scale sanity "
                        "check used by CI",
            generator="adobe", default_seed=7,
            generator_kwargs={"num_sessions": 12, "duration_hours": 2.0}))
        registry.register(Scenario(
            name="cluster_scale",
            description=f"{CLUSTER_SCALE_SESSIONS} sessions over "
                        f"{CLUSTER_SCALE_HOURS:g} hours on hundreds of hosts "
                        "— engine stress test (see bench_engine.py)",
            generator="adobe", default_seed=3,
            generator_kwargs={"num_sessions": CLUSTER_SCALE_SESSIONS,
                              "duration_hours": CLUSTER_SCALE_HOURS,
                              "work_bout_hours": 1.5,
                              "bouts_per_day": 3.0},
            config_preset="cluster_scale"))
        registry.register(Scenario(
            name="mega_scale",
            description=f"{MEGA_SCALE_SESSIONS} sessions over "
                        f"{MEGA_SCALE_HOURS:g} hours on ~1000 hosts — "
                        "placement stress test (see bench_placement.py)",
            generator="adobe", default_seed=5,
            generator_kwargs={"num_sessions": MEGA_SCALE_SESSIONS,
                              "duration_hours": MEGA_SCALE_HOURS,
                              "work_bout_hours": 1.5,
                              "bouts_per_day": 3.0},
            config_preset="mega_scale"))
        registry.register(Scenario(
            name="giga_scale",
            description=f"{GIGA_SCALE_SESSIONS} sessions over "
                        f"{GIGA_SCALE_HOURS:g} hours on ~10000 hosts — "
                        "space-sharded runner stress test (see "
                        "bench_giga.py; run in sketch mode)",
            generator="adobe", default_seed=11,
            generator_kwargs={"num_sessions": GIGA_SCALE_SESSIONS,
                              "duration_hours": GIGA_SCALE_HOURS,
                              "work_bout_hours": 1.5,
                              "bouts_per_day": 3.0},
            config_preset="giga_scale"))
        registry.register(Scenario(
            name="failure_storm",
            description=f"{FAILURE_STORM_SESSIONS} sessions over "
                        f"{FAILURE_STORM_HOURS:g} hours on a tight cluster "
                        "with one host failure every 10 minutes — the "
                        "chaos stressor for QoS triggers (repro.core.chaos)",
            generator="adobe", default_seed=13,
            generator_kwargs={"num_sessions": FAILURE_STORM_SESSIONS,
                              "duration_hours": FAILURE_STORM_HOURS,
                              "work_bout_hours": 1.0,
                              "bouts_per_day": 6.0},
            config_preset="failure_storm"))
        _DEFAULT_REGISTRY = registry
    return _DEFAULT_REGISTRY
