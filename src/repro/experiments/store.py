"""The persistent, content-addressed experiment result store.

Results are stored as JSON, one file per :class:`ScenarioSpec`, keyed by the
spec's content hash.  Because the key is derived from *everything* that
determines the run (generator name and kwargs, policy, seed, config preset),
a cache hit is guaranteed to be the result the run would have produced —
across processes and across sessions — for a given version of the simulator.
Entries record the package version and are invalidated on mismatch; edits to
simulator code *between* version bumps are not detectable, so delete the
store (or bump ``repro.version``) when verifying behavioral changes.
Filenames keep a human-readable
``<policy>-seed<seed>-<hash>`` prefix under a per-scenario directory so the
store can be browsed and selectively deleted by hand.

Writes are atomic (temp file + ``os.replace``) so concurrent workers and
concurrent benchmark processes can share one store directory safely.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.experiments.scenarios import ScenarioSpec
from repro.metrics.collector import ExperimentResult
from repro.version import __version__

# Bump when the serialized result layout changes; mismatched entries are
# treated as misses (and rerun) rather than failing to deserialize.
SCHEMA_VERSION = 1

DEFAULT_STORE_ENV = "REPRO_RESULTS_DIR"
DEFAULT_STORE_DIR = ".repro_results"


def default_store_root() -> Path:
    return Path(os.environ.get(DEFAULT_STORE_ENV, DEFAULT_STORE_DIR))


class ResultStore:
    """On-disk JSON store for :class:`ExperimentResult`, keyed by spec hash."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Layout.
    # ------------------------------------------------------------------
    def path_for(self, spec: ScenarioSpec) -> Path:
        filename = f"{spec.policy}-seed{spec.seed}-{spec.spec_hash()}.json"
        return self.root / spec.scenario / filename

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------
    def contains(self, spec: ScenarioSpec) -> bool:
        return self._read_payload(spec) is not None

    def load(self, spec: ScenarioSpec) -> Optional[ExperimentResult]:
        """The cached result for ``spec``, or ``None`` (counted as a miss)."""
        payload = self._read_payload(spec)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return ExperimentResult.from_dict(payload["result"])

    def save(self, spec: ScenarioSpec,
             result: Union[ExperimentResult, Dict[str, object]]) -> Path:
        """Atomically persist ``result`` under the spec's content hash."""
        result_dict = result.to_dict() if isinstance(result, ExperimentResult) \
            else result
        payload = {
            "schema_version": SCHEMA_VERSION,
            "repro_version": __version__,
            "spec_hash": spec.spec_hash(),
            "spec": spec.to_dict(),
            "result": result_dict,
        }
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name,
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def entries(self) -> Iterator[Tuple[ScenarioSpec, Path]]:
        """Iterate (spec, path) over every valid entry in the store."""
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("*/*.json")):
            payload = self._load_json(path)
            if payload is not None:
                yield ScenarioSpec.from_dict(payload["spec"]), path

    # ------------------------------------------------------------------
    # Artifacts (sidecar documents keyed by the same spec hash).
    # ------------------------------------------------------------------
    def artifact_path(self, spec: ScenarioSpec, kind: str) -> Path:
        """Where ``kind`` (e.g. ``"telemetry"``) lives for ``spec``.

        Artifacts sit next to the result entry as
        ``<policy>-seed<seed>-<hash>.<kind>.json``; their envelope has no
        ``result`` key, so :meth:`entries` and result loads skip them.
        """
        result_path = self.path_for(spec)
        return result_path.with_name(f"{result_path.stem}.{kind}.json")

    def save_artifact(self, spec: ScenarioSpec, kind: str,
                      artifact: Dict[str, object]) -> Path:
        """Atomically persist an auxiliary document (telemetry report,
        trace export, ...) alongside the spec's result entry."""
        payload = {
            "schema_version": SCHEMA_VERSION,
            "repro_version": __version__,
            "spec_hash": spec.spec_hash(),
            "spec": spec.to_dict(),
            "kind": kind,
            "artifact": artifact,
        }
        path = self.artifact_path(spec, kind)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name,
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def load_artifact(self, spec: ScenarioSpec,
                      kind: str) -> Optional[Dict[str, object]]:
        """The stored artifact document for ``(spec, kind)``, or ``None``."""
        path = self.artifact_path(spec, kind)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema_version") != SCHEMA_VERSION:
            return None
        if payload.get("repro_version") != __version__:
            return None
        if payload.get("spec_hash") != spec.spec_hash():
            return None
        if payload.get("kind") != kind or "artifact" not in payload:
            return None
        return payload["artifact"]

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _read_payload(self, spec: ScenarioSpec) -> Optional[Dict[str, object]]:
        payload = self._load_json(self.path_for(spec))
        if payload is None or payload.get("spec_hash") != spec.spec_hash():
            return None
        return payload

    @staticmethod
    def _load_json(path: Path) -> Optional[Dict[str, object]]:
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema_version") != SCHEMA_VERSION:
            return None
        # Entries written by an older package version are treated as misses:
        # the spec hash covers experiment *parameters*, not simulator code, so
        # this is the only automatic staleness guard.  Mid-version simulator
        # edits still require deleting the store (see EXPERIMENTS.md).
        if payload.get("repro_version") != __version__:
            return None
        if "spec" not in payload or "result" not in payload:
            return None
        return payload
