"""Parameter-grid expansion: one scenario x policies x seeds x knobs.

A :class:`SweepGrid` describes the experiment matrix the paper's evaluation
runs (policies x seeds, optionally x generator knobs such as session count,
optionally x policy-constructor knobs such as poll intervals) and expands it
into concrete :class:`ScenarioSpec` instances in a stable, deterministic
order: policies vary slowest, then seeds, then generator-knob combinations,
then policy-knob combinations, then the QoS axis, each in sorted key order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.scenarios import (
    ScenarioRegistry,
    ScenarioSpec,
    default_registry,
)


@dataclass
class SweepGrid:
    """A parameter grid over one named scenario."""

    scenario: str
    policies: Sequence[str] = ("notebookos",)
    seeds: Sequence[int] = (None,)  # None = the scenario's default seed
    generator_grid: Dict[str, Sequence[object]] = field(default_factory=dict)
    #: Constructor knobs applied to every policy in the grid (a *tuned*
    #: variant swept across seeds/knobs), and an optional extra grid axis:
    #: each key maps to a sequence of candidate values, expanded like
    #: ``generator_grid`` (sorted key order, fastest-varying last).
    policy_kwargs: Dict[str, object] = field(default_factory=dict)
    policy_grid: Dict[str, Sequence[object]] = field(default_factory=dict)
    #: QoS axis: candidate ``qos`` blocks (``QosConfig.to_dict()`` form;
    #: ``{}`` = QoS disabled), varied fastest.  Lets one grid compare a
    #: controller against its absence, or several target/threshold
    #: variants, with every cell separately content-hashed and cached.
    qos_axis: Sequence[Dict[str, object]] = field(default_factory=lambda: ({},))

    def size(self) -> int:
        total = len(self.policies) * len(self.seeds) * len(self.qos_axis)
        for values in self.generator_grid.values():
            total *= len(values)
        for values in self.policy_grid.values():
            total *= len(values)
        return total

    def expand(self, registry: Optional[ScenarioRegistry] = None
               ) -> List[ScenarioSpec]:
        """Expand the grid into scenario specs (deterministic order)."""
        scenario = (registry or default_registry()).get(self.scenario)
        axes = sorted(self.generator_grid.items())
        keys = [key for key, _ in axes]
        combos = list(itertools.product(*(values for _, values in axes)))
        policy_axes = sorted(self.policy_grid.items())
        policy_keys = [key for key, _ in policy_axes]
        policy_combos = list(itertools.product(
            *(values for _, values in policy_axes)))
        specs: List[ScenarioSpec] = []
        for policy in self.policies:
            for seed in self.seeds:
                for combo in combos:
                    for policy_combo in policy_combos:
                        for qos in self.qos_axis:
                            policy_kwargs = dict(self.policy_kwargs)
                            policy_kwargs.update(
                                zip(policy_keys, policy_combo))
                            specs.append(scenario.instantiate(
                                policy=policy, seed=seed,
                                policy_kwargs=policy_kwargs,
                                qos=dict(qos),
                                **dict(zip(keys, combo))))
        return specs
