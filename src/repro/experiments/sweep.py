"""Parameter-grid expansion: one scenario x policies x seeds x knobs.

A :class:`SweepGrid` describes the experiment matrix the paper's evaluation
runs (policies x seeds, optionally x generator knobs such as session count)
and expands it into concrete :class:`ScenarioSpec` instances in a stable,
deterministic order: policies vary slowest, then seeds, then generator-knob
combinations in sorted key order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.scenarios import (
    ScenarioRegistry,
    ScenarioSpec,
    default_registry,
)


@dataclass
class SweepGrid:
    """A parameter grid over one named scenario."""

    scenario: str
    policies: Sequence[str] = ("notebookos",)
    seeds: Sequence[int] = (None,)  # None = the scenario's default seed
    generator_grid: Dict[str, Sequence[object]] = field(default_factory=dict)

    def size(self) -> int:
        total = len(self.policies) * len(self.seeds)
        for values in self.generator_grid.values():
            total *= len(values)
        return total

    def expand(self, registry: Optional[ScenarioRegistry] = None
               ) -> List[ScenarioSpec]:
        """Expand the grid into scenario specs (deterministic order)."""
        scenario = (registry or default_registry()).get(self.scenario)
        axes = sorted(self.generator_grid.items())
        keys = [key for key, _ in axes]
        combos = list(itertools.product(*(values for _, values in axes)))
        specs: List[ScenarioSpec] = []
        for policy in self.policies:
            for seed in self.seeds:
                for combo in combos:
                    specs.append(scenario.instantiate(
                        policy=policy, seed=seed, **dict(zip(keys, combo))))
        return specs
