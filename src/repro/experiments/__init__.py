"""Parallel sweep orchestration with a persistent result store.

The ``repro.experiments`` subsystem is the layer between the one-shot
:func:`repro.run_experiment` entry point and the paper-scale evaluation
matrix (policies x seeds x scenarios):

* :mod:`repro.experiments.scenarios` — named, parameterized scenario specs
  with a content hash, the scenario registry (``excerpt``, ``summer``,
  ``smoke`` out of the box), and config presets;
* :mod:`repro.experiments.sweep` — parameter-grid expansion;
* :mod:`repro.experiments.runner` — a process-pool runner whose serial
  fallback is bit-identical to any parallel run;
* :mod:`repro.experiments.store` — a content-addressed on-disk JSON store so
  reruns are cache hits across processes and sessions;
* ``python -m repro.experiments`` — the ``list`` / ``run`` / ``sweep`` CLI.

Quickstart::

    from repro.experiments import SweepGrid, ResultStore, run_specs

    grid = SweepGrid(scenario="excerpt",
                     policies=("reservation", "batch", "notebookos", "lcp"),
                     seeds=(7, 8, 9))
    outcomes = run_specs(grid.expand(), workers=4, store=ResultStore())
    for outcome in outcomes:
        print(outcome.spec.label, outcome.result.summary())

See EXPERIMENTS.md for the full tour.
"""

from repro.experiments.runner import (
    RunOutcome,
    SweepExecutionError,
    run_spec,
    run_specs,
)
from repro.experiments.scenarios import (
    CLUSTER_SCALE_HOURS,
    CLUSTER_SCALE_SESSIONS,
    EXCERPT_HOURS,
    EXCERPT_SESSIONS,
    SIMULATION_DAYS,
    SIMULATION_SESSIONS,
    Scenario,
    ScenarioRegistry,
    ScenarioSpec,
    build_trace,
    default_registry,
    long_run_cluster_config,
    long_run_platform_config,
    register_config_preset,
    resolve_configs,
    stable_hash,
)
from repro.experiments.store import ResultStore, default_store_root
from repro.experiments.sweep import SweepGrid

__all__ = [
    "CLUSTER_SCALE_HOURS",
    "CLUSTER_SCALE_SESSIONS",
    "EXCERPT_HOURS",
    "EXCERPT_SESSIONS",
    "SIMULATION_DAYS",
    "SIMULATION_SESSIONS",
    "RunOutcome",
    "SweepExecutionError",
    "Scenario",
    "ScenarioRegistry",
    "ScenarioSpec",
    "SweepGrid",
    "ResultStore",
    "build_trace",
    "default_registry",
    "default_store_root",
    "long_run_cluster_config",
    "long_run_platform_config",
    "register_config_preset",
    "resolve_configs",
    "run_spec",
    "run_specs",
    "stable_hash",
]
