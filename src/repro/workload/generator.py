"""Synthetic trace generators calibrated to the paper's published statistics.

The AdobeTrace, PhillyTrace, and AlibabaTrace datasets are not public, so the
generators here produce synthetic traces whose distributions match the
percentile statistics reported in §2.3 of the paper:

=====================  ==========  ===========  =============
statistic              AdobeTrace  PhillyTrace  AlibabaTrace
=====================  ==========  ===========  =============
task duration p50      120 s       621 s        957 s
task duration p75      300 s       —            —
task duration p90      1 020 s     —            —
task duration p99      10 920 s    —            —
per-session IAT p50    300 s       44 s         38 s
per-session IAT p75    480 s       —            —
shortest IAT           240 s       —            —
=====================  ==========  ===========  =============

AdobeTrace sessions are long-lived (Fig. 7 / Fig. 20 show the number of
active sessions monotonically accumulating) and activity within a session is
bursty: users work in bouts separated by long absences, which is why the
trace contains roughly 545 k training events across three months rather than
the millions a constant 5-minute cadence would produce.  The generator models
that with per-session activity bursts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.simulation.distributions import PiecewiseCDFSampler, SeededRandom
from repro.workload.models import assign_workload
from repro.workload.trace import SessionTrace, TaskRecord, Trace

# Percentile knots reconstructed from §2.3 of the paper.
ADOBE_DURATION_KNOTS: Sequence[Tuple[float, float]] = (
    (0.0, 15.0), (0.5, 120.0), (0.75, 300.0), (0.9, 1020.0),
    (0.95, 2160.0), (0.99, 10920.0), (1.0, 36000.0))
ADOBE_IAT_KNOTS: Sequence[Tuple[float, float]] = (
    (0.0, 240.0), (0.5, 300.0), (0.75, 480.0), (0.9, 1200.0),
    (0.99, 5400.0), (1.0, 14400.0))

PHILLY_DURATION_KNOTS: Sequence[Tuple[float, float]] = (
    (0.0, 30.0), (0.5, 621.0), (0.75, 3600.0), (0.9, 21600.0),
    (0.99, 259200.0), (1.0, 1000000.0))
PHILLY_IAT_KNOTS: Sequence[Tuple[float, float]] = (
    (0.0, 1.0), (0.5, 44.0), (0.75, 240.0), (0.9, 1800.0),
    (0.99, 43200.0), (1.0, 259200.0))

ALIBABA_DURATION_KNOTS: Sequence[Tuple[float, float]] = (
    (0.0, 20.0), (0.5, 957.0), (0.75, 5400.0), (0.9, 28800.0),
    (0.99, 345600.0), (1.0, 1200000.0))
ALIBABA_IAT_KNOTS: Sequence[Tuple[float, float]] = (
    (0.0, 1.0), (0.5, 38.0), (0.75, 200.0), (0.9, 1500.0),
    (0.99, 36000.0), (1.0, 200000.0))

# Notebook cell templates; GPU cells exercise the AST-based state replication
# exactly the way real training cells do.
_GPU_CELL_TEMPLATES = (
    "model = build_model()\nhistory = []\n"
    "for epoch in range({epochs}):\n"
    "    loss = train_epoch(model, train_loader, optimizer)\n"
    "    history.append(loss)\n",
    "optimizer.zero_grad()\n"
    "loss = criterion(model(batch), labels)\n"
    "loss.backward()\noptimizer.step()\nlosses.append(loss.item())\n",
    "model.load_state_dict(best_checkpoint)\n"
    "metrics = evaluate(model, val_loader)\nresults['val'] = metrics\n",
    "model = model.cuda()\n"
    "trainer.fit(model, train_loader, epochs={epochs})\n",
)
_CPU_CELL_TEMPLATES = (
    "learning_rate = {lr}\nbatch_size = {batch}\n",
    "df = preprocess(raw_df)\nfeatures = df.describe()\n",
    "import matplotlib.pyplot as plt\nplt.plot(history)\n",
    "print(len(train_loader), len(val_loader))\n",
)


def _merge_bursts(bursts: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Sort activity bursts and merge any that overlap."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(bursts):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


@dataclass
class _SessionShape:
    """Internal knobs describing one generated session's behaviour."""

    start_time: float
    end_time: float
    gpus: int
    is_mostly_idle: bool
    bursts: List[Tuple[float, float]] = field(default_factory=list)


class _BaseTraceGenerator:
    """Shared machinery for the three trace generators."""

    trace_name = "trace"
    duration_knots: Sequence[Tuple[float, float]] = ADOBE_DURATION_KNOTS
    iat_knots: Sequence[Tuple[float, float]] = ADOBE_IAT_KNOTS
    # IDLT users never submit concurrent tasks (§2.3.2); batch schedulers do.
    serialize_tasks = True

    def __init__(self, seed: int = 0, num_sessions: int = 90,
                 duration_hours: float = 17.5,
                 gpu_choices: Sequence[int] = (1, 2, 4, 8),
                 gpu_weights: Sequence[float] = (0.45, 0.30, 0.20, 0.05),
                 idle_session_fraction: float = 0.0,
                 sample_interval: float = 15.0) -> None:
        if num_sessions <= 0:
            raise ValueError("num_sessions must be positive")
        if duration_hours <= 0:
            raise ValueError("duration_hours must be positive")
        if not 0.0 <= idle_session_fraction < 1.0:
            raise ValueError("idle_session_fraction must be in [0, 1)")
        if len(gpu_choices) != len(gpu_weights):
            raise ValueError("gpu_choices and gpu_weights must have equal length")
        self.seed = seed
        self.num_sessions = num_sessions
        self.duration_seconds = duration_hours * 3600.0
        self.gpu_choices = list(gpu_choices)
        self.gpu_weights = list(gpu_weights)
        self.idle_session_fraction = idle_session_fraction
        self.sample_interval = sample_interval
        self._rng = SeededRandom(seed)
        self._duration_sampler = PiecewiseCDFSampler(
            list(self.duration_knots), self._rng.substream("durations"))
        self._iat_sampler = PiecewiseCDFSampler(
            list(self.iat_knots), self._rng.substream("iats"))

    # ------------------------------------------------------------------
    # Hooks subclasses override.
    # ------------------------------------------------------------------
    def _session_shape(self, index: int, rng: SeededRandom) -> _SessionShape:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Generation.
    # ------------------------------------------------------------------
    def generate(self) -> Trace:
        """Generate the full synthetic trace."""
        sessions: List[SessionTrace] = []
        for index in range(self.num_sessions):
            rng = self._rng.substream(f"session-{index}")
            shape = self._session_shape(index, rng)
            assignment = assign_workload(rng)
            session = SessionTrace(
                session_id=f"{self.trace_name}-session-{index}",
                user_id=f"user-{index}",
                start_time=shape.start_time,
                end_time=shape.end_time,
                gpus_requested=shape.gpus,
                assignment=assignment)
            if not shape.is_mostly_idle:
                session.tasks = self._generate_tasks(session, shape, rng)
            sessions.append(session)
        return Trace(name=self.trace_name, sessions=sessions,
                     sample_interval=self.sample_interval)

    def _generate_tasks(self, session: SessionTrace, shape: _SessionShape,
                        rng: SeededRandom) -> List[TaskRecord]:
        tasks: List[TaskRecord] = []
        index = 0
        # The cursor tracks the earliest permissible next submission so that
        # tasks within one session never overlap even across work bouts.
        cursor = session.start_time
        for burst_start, burst_end in _merge_bursts(shape.bursts):
            submit = max(burst_start + rng.uniform(0.0, 60.0), cursor)
            while submit < burst_end:
                duration = self._duration_sampler.sample()
                is_gpu = rng.random() < 0.9
                code = self._make_code(rng, is_gpu)
                tasks.append(TaskRecord(
                    session_id=session.session_id, submit_time=submit,
                    duration=duration, gpus=shape.gpus if is_gpu else 0,
                    is_gpu_task=is_gpu,
                    gpu_utilization=rng.uniform(0.4, 0.98),
                    code=code, task_index=index))
                index += 1
                gap = self._iat_sampler.sample()
                if self.serialize_tasks:
                    # Users do not submit concurrent tasks (§2.3.2): the next
                    # submission follows both the IAT and the task's completion.
                    submit = submit + max(gap, duration + 30.0)
                else:
                    # Batch schedulers accept overlapping job submissions.
                    submit = submit + gap
                cursor = max(cursor, tasks[-1].end_time if self.serialize_tasks
                             else submit)
        return tasks

    def _make_code(self, rng: SeededRandom, is_gpu: bool) -> str:
        if is_gpu:
            template = rng.choice(_GPU_CELL_TEMPLATES)
            return template.format(epochs=rng.randint(1, 10))
        template = rng.choice(_CPU_CELL_TEMPLATES)
        return template.format(lr=round(rng.uniform(1e-4, 1e-1), 5),
                               batch=rng.choice([16, 32, 64, 128]))

    def _pick_gpus(self, rng: SeededRandom) -> int:
        return rng.choices(self.gpu_choices, weights=self.gpu_weights, k=1)[0]


class AdobeTraceGenerator(_BaseTraceGenerator):
    """Synthetic AdobeTrace-style IDLT workload.

    Sessions arrive throughout the trace and remain active until the end
    (matching the accumulating session counts of Figures 7 and 20).  A
    configurable fraction of sessions is *mostly idle* — reserving GPUs but
    never running a GPU task — which reproduces the headline utilization
    findings of §2.3.3.
    """

    trace_name = "adobe"
    duration_knots = ADOBE_DURATION_KNOTS
    iat_knots = ADOBE_IAT_KNOTS

    def __init__(self, seed: int = 0, num_sessions: int = 90,
                 duration_hours: float = 17.5,
                 idle_session_fraction: float = 0.0,
                 work_bout_hours: float = 2.5,
                 bouts_per_day: float = 2.0,
                 **kwargs) -> None:
        super().__init__(seed=seed, num_sessions=num_sessions,
                         duration_hours=duration_hours,
                         idle_session_fraction=idle_session_fraction, **kwargs)
        self.work_bout_seconds = work_bout_hours * 3600.0
        self.bouts_per_day = bouts_per_day

    @classmethod
    def characterization_preset(cls, seed: int = 0, num_sessions: int = 200,
                                duration_hours: float = 24.0 * 14) -> "AdobeTraceGenerator":
        """A preset matching the §2.3.3 utilization study (many idle sessions)."""
        return cls(seed=seed, num_sessions=num_sessions,
                   duration_hours=duration_hours, idle_session_fraction=0.65)

    def _session_shape(self, index: int, rng: SeededRandom) -> _SessionShape:
        # Sessions arrive over the first 95% of the trace and persist to the
        # end, so the number of active sessions accumulates as in Fig. 7.
        start = rng.uniform(0.0, 0.95 * self.duration_seconds)
        end = self.duration_seconds
        gpus = self._pick_gpus(rng)
        is_idle = rng.random() < self.idle_session_fraction
        bursts: List[Tuple[float, float]] = []
        if not is_idle:
            day_seconds = 24.0 * 3600.0
            horizon = end - start
            if horizon <= day_seconds:
                # Short traces: one or two bouts spanning most of the session.
                bout_count = max(1, int(self.bouts_per_day))
                for _ in range(bout_count):
                    bout_start = start + rng.uniform(0.0, 0.3 * horizon)
                    bursts.append((bout_start,
                                   min(end, bout_start + self.work_bout_seconds * 4)))
            else:
                # Long traces: a few work bouts per active day.
                num_days = int(horizon // day_seconds) + 1
                for day in range(num_days):
                    if rng.random() > 0.55:   # not every day is a work day
                        continue
                    day_start = start + day * day_seconds
                    for _ in range(max(1, int(round(self.bouts_per_day)))):
                        bout_start = day_start + rng.uniform(0.3, 0.7) * day_seconds
                        bout_end = min(end, bout_start + self.work_bout_seconds)
                        if bout_start < end:
                            bursts.append((bout_start, bout_end))
        return _SessionShape(start_time=start, end_time=end, gpus=gpus,
                             is_mostly_idle=is_idle, bursts=bursts)


class _BatchTraceGenerator(_BaseTraceGenerator):
    """Shared shape for the BDLT-style (Philly / Alibaba) comparison traces.

    BDLT jobs are scheduled by a batch scheduler: "sessions" here are job
    streams from one user, tasks are long-running jobs submitted closely
    together (and may overlap), and sessions do not persist idle the way
    notebook sessions do.
    """

    serialize_tasks = False

    def _session_shape(self, index: int, rng: SeededRandom) -> _SessionShape:
        start = rng.uniform(0.0, 0.8 * self.duration_seconds)
        lifetime = rng.uniform(0.1, 0.5) * self.duration_seconds
        end = min(self.duration_seconds, start + lifetime)
        gpus = self._pick_gpus(rng)
        return _SessionShape(start_time=start, end_time=end, gpus=gpus,
                             is_mostly_idle=False, bursts=[(start, end)])


class PhillyTraceGenerator(_BatchTraceGenerator):
    """Synthetic PhillyTrace-style BDLT workload (Microsoft Philly clusters)."""

    trace_name = "philly"
    duration_knots = PHILLY_DURATION_KNOTS
    iat_knots = PHILLY_IAT_KNOTS


class AlibabaTraceGenerator(_BatchTraceGenerator):
    """Synthetic AlibabaTrace-style workload (Alibaba GPU Cluster 2020)."""

    trace_name = "alibaba"
    duration_knots = ALIBABA_DURATION_KNOTS
    iat_knots = ALIBABA_IAT_KNOTS


# ----------------------------------------------------------------------
# Generator registry.
#
# The experiment subsystem (``repro.experiments``) references generators by
# name so scenario specs stay plain JSON-serializable data.  Third-party
# generators can hook in with :func:`register_generator`.
# ----------------------------------------------------------------------
_GENERATOR_REGISTRY: Dict[str, Type[_BaseTraceGenerator]] = {}


def register_generator(name: str, generator_cls: Type[_BaseTraceGenerator],
                       replace: bool = False) -> None:
    """Register a trace generator class under ``name``."""
    if not replace and name in _GENERATOR_REGISTRY:
        raise ValueError(f"generator {name!r} is already registered")
    _GENERATOR_REGISTRY[name] = generator_cls


def make_generator(name: str, **kwargs) -> _BaseTraceGenerator:
    """Instantiate the registered generator ``name`` with ``kwargs``."""
    try:
        generator_cls = _GENERATOR_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_GENERATOR_REGISTRY)) or "<none>"
        raise KeyError(f"unknown trace generator {name!r} (known: {known})") from None
    return generator_cls(**kwargs)


def generator_names() -> List[str]:
    return sorted(_GENERATOR_REGISTRY)


register_generator("adobe", AdobeTraceGenerator)
register_generator("philly", PhillyTraceGenerator)
register_generator("alibaba", AlibabaTraceGenerator)
