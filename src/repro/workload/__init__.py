"""Workload models, traces, and synthetic generators.

The paper evaluates NotebookOS on a production IDLT trace (AdobeTrace) and
compares its characteristics against two public BDLT traces (PhillyTrace and
AlibabaTrace).  Those traces are not public, so this package generates
synthetic equivalents whose task-duration, inter-arrival-time, and GPU-usage
distributions are fit to the percentile statistics the paper publishes
(§2.3, Figures 2, 7, and 20).

* :mod:`repro.workload.models` — the model/dataset registry of Table 1 with
  realistic parameter sizes and VRAM footprints;
* :mod:`repro.workload.trace` — trace records (sessions and cell tasks);
* :mod:`repro.workload.generator` — the Adobe/Philly/Alibaba-style generators;
* :mod:`repro.workload.characterization` — the statistics behind Figure 2;
* :mod:`repro.workload.driver` — the workload driver that replays a trace
  against a platform under a given scheduling policy.
"""

from repro.workload.models import (
    DATASETS,
    MODELS,
    ApplicationDomain,
    DatasetProfile,
    ModelProfile,
    WorkloadAssignment,
    assign_workload,
)
from repro.workload.trace import SessionTrace, TaskRecord, Trace
from repro.workload.generator import (
    AdobeTraceGenerator,
    AlibabaTraceGenerator,
    PhillyTraceGenerator,
    generator_names,
    make_generator,
    register_generator,
)
from repro.workload.characterization import (
    TraceCharacterization,
    characterize_trace,
)

__all__ = [
    "AdobeTraceGenerator",
    "AlibabaTraceGenerator",
    "ApplicationDomain",
    "DATASETS",
    "DatasetProfile",
    "MODELS",
    "ModelProfile",
    "PhillyTraceGenerator",
    "SessionTrace",
    "TaskRecord",
    "Trace",
    "TraceCharacterization",
    "WorkloadAssignment",
    "assign_workload",
    "characterize_trace",
    "generator_names",
    "make_generator",
    "register_generator",
]
