"""Trace records: sessions and the cell tasks they submit.

A :class:`Trace` is the unit handed to the workload driver and the benchmark
harnesses: a set of user sessions, each with its arrival time, lifetime,
resource request, assigned model/dataset, and an ordered list of cell task
submissions (:class:`TaskRecord`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.workload.models import WorkloadAssignment


@dataclass
class TaskRecord:
    """One user-submitted cell task in the trace."""

    session_id: str
    submit_time: float
    duration: float
    gpus: int
    is_gpu_task: bool = True
    gpu_utilization: float = 0.75
    code: Optional[str] = None
    task_index: int = 0

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"task duration must be non-negative: {self.duration}")
        if self.submit_time < 0:
            raise ValueError(f"submit time must be non-negative: {self.submit_time}")

    @property
    def end_time(self) -> float:
        """Submission time plus execution duration (ignores queueing)."""
        return self.submit_time + self.duration

    @property
    def gpu_seconds(self) -> float:
        return self.duration * self.gpus if self.is_gpu_task else 0.0


@dataclass
class SessionTrace:
    """One user session: arrival, lifetime, and its sequence of tasks."""

    session_id: str
    user_id: str
    start_time: float
    end_time: float
    gpus_requested: int
    assignment: Optional[WorkloadAssignment] = None
    tasks: List[TaskRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise ValueError(
                f"session {self.session_id} ends before it starts "
                f"({self.end_time} < {self.start_time})")

    @property
    def lifetime(self) -> float:
        return self.end_time - self.start_time

    @property
    def gpu_task_count(self) -> int:
        return sum(1 for task in self.tasks if task.is_gpu_task)

    def inter_arrival_times(self) -> List[float]:
        """Per-session task IATs, as the paper measures them (§2.3.2)."""
        submit_times = sorted(task.submit_time for task in self.tasks)
        return [b - a for a, b in zip(submit_times, submit_times[1:])]

    def gpu_busy_seconds(self) -> float:
        return sum(task.duration for task in self.tasks if task.is_gpu_task)

    def gpu_duty_cycle(self) -> float:
        """Fraction of the session lifetime spent running GPU tasks."""
        if self.lifetime <= 0:
            return 0.0
        return min(1.0, self.gpu_busy_seconds() / self.lifetime)


@dataclass
class Trace:
    """A full workload trace: many sessions over a time horizon."""

    name: str
    sessions: List[SessionTrace] = field(default_factory=list)
    sample_interval: float = 15.0   # AdobeTrace granularity (§2.3)

    def __len__(self) -> int:
        return len(self.sessions)

    def __iter__(self) -> Iterator[SessionTrace]:
        return iter(self.sessions)

    @property
    def duration(self) -> float:
        """The time horizon spanned by the trace."""
        if not self.sessions:
            return 0.0
        return max(s.end_time for s in self.sessions)

    @property
    def all_tasks(self) -> List[TaskRecord]:
        tasks: List[TaskRecord] = []
        for session in self.sessions:
            tasks.extend(session.tasks)
        return sorted(tasks, key=lambda t: t.submit_time)

    @property
    def total_task_count(self) -> int:
        return sum(len(s.tasks) for s in self.sessions)

    def active_sessions_at(self, time: float) -> int:
        return sum(1 for s in self.sessions if s.start_time <= time < s.end_time)

    def active_trainings_at(self, time: float) -> int:
        return sum(1 for task in self.all_tasks
                   if task.is_gpu_task and task.submit_time <= time < task.end_time)

    def required_gpus_at(self, time: float) -> int:
        """The oracle GPU demand: GPUs needed by tasks running at ``time``."""
        return sum(task.gpus for task in self.all_tasks
                   if task.is_gpu_task and task.submit_time <= time < task.end_time)

    def truncated(self, horizon: float, name: Optional[str] = None) -> "Trace":
        """A copy limited to sessions starting before ``horizon``.

        Sessions are clipped to the horizon and tasks beyond it are dropped —
        used to carve the 17.5-hour excerpt out of a longer trace.
        """
        clipped: List[SessionTrace] = []
        for session in self.sessions:
            if session.start_time >= horizon:
                continue
            tasks = [t for t in session.tasks if t.submit_time < horizon]
            clipped.append(SessionTrace(
                session_id=session.session_id, user_id=session.user_id,
                start_time=session.start_time,
                end_time=min(session.end_time, horizon),
                gpus_requested=session.gpus_requested,
                assignment=session.assignment, tasks=tasks))
        return Trace(name=name or f"{self.name}-truncated",
                     sessions=clipped, sample_interval=self.sample_interval)
