"""Workload characterization: the statistics behind Figure 2.

Given a :class:`~repro.workload.trace.Trace`, :func:`characterize_trace`
computes the distributions the paper reports in §2.3:

* the task-duration CDF (Fig. 2(a)),
* the per-session inter-arrival-time CDF (Fig. 2(b)),
* the GPU utilization CDF and per-session GPU duty-cycle CDF (Fig. 2(c)), and
* the reserved-vs-utilized GPU/CPU timelines (Fig. 2(d)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.workload.trace import Trace


@dataclass
class TimelinePoint:
    """One sample of the reserved-vs-utilized resource timeline."""

    time: float
    reserved_gpus: int
    utilized_gpus: float
    reserved_cpus: float
    utilized_cpus: float


@dataclass
class TraceCharacterization:
    """The Figure 2 statistics for one trace."""

    trace_name: str
    task_durations: List[float] = field(default_factory=list)
    inter_arrival_times: List[float] = field(default_factory=list)
    gpu_utilization_samples: List[float] = field(default_factory=list)
    session_duty_cycles: List[float] = field(default_factory=list)
    timeline: List[TimelinePoint] = field(default_factory=list)

    def duration_percentile(self, q: float) -> float:
        return _percentile(self.task_durations, q)

    def iat_percentile(self, q: float) -> float:
        return _percentile(self.inter_arrival_times, q)

    def fraction_reserved_gpu_time_idle(self) -> float:
        """Fraction of reserved GPU-time that was idle (paper: > 81 %)."""
        if not self.timeline:
            return 0.0
        reserved = sum(point.reserved_gpus for point in self.timeline)
        utilized = sum(point.utilized_gpus for point in self.timeline)
        if reserved == 0:
            return 0.0
        return 1.0 - (utilized / reserved)

    def fraction_sessions_with_low_usage(self, threshold: float = 0.05) -> float:
        """Fraction of sessions whose GPU duty cycle is at most ``threshold``."""
        if not self.session_duty_cycles:
            return 0.0
        low = sum(1 for duty in self.session_duty_cycles if duty <= threshold)
        return low / len(self.session_duty_cycles)

    def summary(self) -> Dict[str, float]:
        """The headline numbers quoted in §2.3, for direct comparison."""
        return {
            "duration_p50": self.duration_percentile(0.50),
            "duration_p75": self.duration_percentile(0.75),
            "duration_p90": self.duration_percentile(0.90),
            "duration_p99": self.duration_percentile(0.99),
            "iat_p50": self.iat_percentile(0.50),
            "iat_p75": self.iat_percentile(0.75),
            "reserved_gpu_idle_fraction": self.fraction_reserved_gpu_time_idle(),
            "sessions_leq_5pct_usage": self.fraction_sessions_with_low_usage(0.05),
        }


def characterize_trace(trace: Trace, timeline_samples: int = 200,
                       cpus_per_session: float = 8.0) -> TraceCharacterization:
    """Compute the Figure 2 statistics for ``trace``."""
    result = TraceCharacterization(trace_name=trace.name)

    for session in trace:
        result.session_duty_cycles.append(session.gpu_duty_cycle())
        result.inter_arrival_times.extend(session.inter_arrival_times())
        for task in session.tasks:
            result.task_durations.append(task.duration)

    horizon = trace.duration
    if horizon > 0 and timeline_samples > 0:
        step = horizon / timeline_samples
        for i in range(timeline_samples + 1):
            time = i * step
            reserved_gpus = sum(s.gpus_requested for s in trace
                                if s.start_time <= time < s.end_time)
            utilized_gpus = 0.0
            for task in trace.all_tasks:
                if task.is_gpu_task and task.submit_time <= time < task.end_time:
                    utilized_gpus += task.gpus * task.gpu_utilization
            active_sessions = trace.active_sessions_at(time)
            reserved_cpus = active_sessions * cpus_per_session
            utilized_cpus = trace.active_trainings_at(time) * cpus_per_session * 0.5
            result.timeline.append(TimelinePoint(
                time=time, reserved_gpus=reserved_gpus, utilized_gpus=utilized_gpus,
                reserved_cpus=reserved_cpus, utilized_cpus=utilized_cpus))
            if reserved_gpus > 0:
                result.gpu_utilization_samples.append(
                    min(1.0, utilized_gpus / reserved_gpus))
    return result


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[index]
