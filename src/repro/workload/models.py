"""The model and dataset registry used in the evaluation (Table 1).

The paper integrates six DL models and six datasets across three application
domains — computer vision, natural language processing, and speech
recognition — and the workload driver randomly assigns each client a domain,
then a model and dataset within it.  The registry records the sizes that
matter to the platform: parameter bytes (what gets checkpointed and copied
between host memory and GPU VRAM) and dataset bytes (what gets staged from
remote storage).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.simulation.distributions import SeededRandom


class ApplicationDomain(enum.Enum):
    """Application domains from Table 1."""

    COMPUTER_VISION = "computer_vision"
    NLP = "natural_language_processing"
    SPEECH_RECOGNITION = "speech_recognition"


@dataclass(frozen=True)
class ModelProfile:
    """A deep-learning model with the sizes relevant to the platform."""

    name: str
    domain: ApplicationDomain
    parameters_millions: float
    vram_footprint_gb: float
    typical_gpus: int

    @property
    def parameter_bytes(self) -> int:
        """Size of the parameter tensor in bytes (fp32)."""
        return int(self.parameters_millions * 1e6 * 4)


@dataclass(frozen=True)
class DatasetProfile:
    """A training dataset with its on-disk size."""

    name: str
    domain: ApplicationDomain
    size_gb: float
    num_samples: int

    @property
    def size_bytes(self) -> int:
        return int(self.size_gb * 1024 ** 3)


MODELS: Dict[str, ModelProfile] = {
    "vgg-16": ModelProfile("VGG-16", ApplicationDomain.COMPUTER_VISION,
                           parameters_millions=138.0, vram_footprint_gb=8.0,
                           typical_gpus=1),
    "resnet-18": ModelProfile("ResNet-18", ApplicationDomain.COMPUTER_VISION,
                              parameters_millions=11.7, vram_footprint_gb=4.0,
                              typical_gpus=1),
    "inception-v3": ModelProfile("Inception v3", ApplicationDomain.COMPUTER_VISION,
                                 parameters_millions=23.8, vram_footprint_gb=6.0,
                                 typical_gpus=1),
    "bert": ModelProfile("BERT", ApplicationDomain.NLP,
                         parameters_millions=110.0, vram_footprint_gb=12.0,
                         typical_gpus=2),
    "gpt-2": ModelProfile("GPT-2", ApplicationDomain.NLP,
                          parameters_millions=124.0, vram_footprint_gb=14.0,
                          typical_gpus=2),
    "deep-speech-2": ModelProfile("Deep Speech 2", ApplicationDomain.SPEECH_RECOGNITION,
                                  parameters_millions=87.0, vram_footprint_gb=10.0,
                                  typical_gpus=2),
}

DATASETS: Dict[str, DatasetProfile] = {
    "cifar-10": DatasetProfile("CIFAR-10", ApplicationDomain.COMPUTER_VISION,
                               size_gb=0.17, num_samples=60_000),
    "cifar-100": DatasetProfile("CIFAR-100", ApplicationDomain.COMPUTER_VISION,
                                size_gb=0.17, num_samples=60_000),
    "tiny-imagenet": DatasetProfile("Tiny ImageNet", ApplicationDomain.COMPUTER_VISION,
                                    size_gb=0.24, num_samples=110_000),
    "imdb": DatasetProfile("IMDb Large Movie Reviews", ApplicationDomain.NLP,
                           size_gb=0.08, num_samples=50_000),
    "cola": DatasetProfile("CoLA", ApplicationDomain.NLP,
                           size_gb=0.01, num_samples=10_657),
    "librispeech": DatasetProfile("LibriSpeech", ApplicationDomain.SPEECH_RECOGNITION,
                                  size_gb=60.0, num_samples=281_241),
}


@dataclass(frozen=True)
class WorkloadAssignment:
    """The (domain, model, dataset) tuple assigned to one client session."""

    domain: ApplicationDomain
    model: ModelProfile
    dataset: DatasetProfile


def models_for_domain(domain: ApplicationDomain) -> List[ModelProfile]:
    return [m for m in MODELS.values() if m.domain == domain]


def datasets_for_domain(domain: ApplicationDomain) -> List[DatasetProfile]:
    return [d for d in DATASETS.values() if d.domain == domain]


def assign_workload(rng: SeededRandom,
                    domain: Optional[ApplicationDomain] = None) -> WorkloadAssignment:
    """Randomly assign a domain, model, and dataset, as the workload driver does.

    The paper's driver first assigns each client an application domain, then a
    random model and dataset from that domain (§5.1.2).
    """
    if domain is None:
        domain = rng.choice(list(ApplicationDomain))
    model = rng.choice(models_for_domain(domain))
    dataset = rng.choice(datasets_for_domain(domain))
    return WorkloadAssignment(domain=domain, model=model, dataset=dataset)
