"""The oracle GPU-provisioning curve (Figure 8).

The "oracle" in the paper's Figure 8 is an optimal policy that provisions
exactly the number of GPUs required to serve the training requests that are
active at each instant.  It needs no simulation: the curve is a pure function
of the trace.
"""

from __future__ import annotations

from repro.analysis.timeline import Timeline
from repro.workload.trace import Trace


def oracle_gpu_timeline(trace: Trace, sample_interval: float = 60.0) -> Timeline:
    """The exact GPUs required to serve active trainings at each instant."""
    if sample_interval <= 0:
        raise ValueError("sample_interval must be positive")
    timeline = Timeline("oracle_gpus")
    horizon = trace.duration
    # Event-based sweep: GPU demand only changes at task start/end times, so
    # sampling those instants (plus a regular grid for plotting) is exact.
    change_points = {0.0, horizon}
    for task in trace.all_tasks:
        if task.is_gpu_task:
            change_points.add(task.submit_time)
            change_points.add(min(task.end_time, horizon))
    time = 0.0
    while time < horizon:
        change_points.add(time)
        time += sample_interval
    for time in sorted(change_points):
        timeline.record(time, trace.required_gpus_at(time))
    return timeline
