"""The default NotebookOS scheduling policy.

This is the paper's system: each session gets a distributed kernel of three
replicas placed by the Global Scheduler; GPUs are bound only for the duration
of a cell execution; the executor replica is chosen by the election protocol;
when every replica yields, one replica is migrated; post-execution state
replication happens off the critical path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.api.registry import register_policy
from repro.cluster.resources import ResourceRequest
from repro.core.distributed_kernel import DistributedKernel, ReplicaState
from repro.metrics.collector import TaskMetrics
from repro.policies.base import SchedulingPolicy
from repro.workload.trace import SessionTrace, TaskRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.platform import NotebookOSPlatform


@register_policy("notebookos",
                 description="replicated kernels, executor elections, dynamic "
                             "GPU binding, oversubscription, migration")
class NotebookOSPolicy(SchedulingPolicy):
    """Replicated kernels + dynamic GPU binding + oversubscription."""

    name = "notebookos"
    uses_autoscaler = True
    replication_factor = 3

    def __init__(self, gpu_wait_poll_s: float = 2.0,
                 gpu_wait_timeout_s: float = 120.0) -> None:
        self.gpu_wait_poll_s = gpu_wait_poll_s
        self.gpu_wait_timeout_s = gpu_wait_timeout_s
        self._kernels: Dict[str, DistributedKernel] = {}

    # ------------------------------------------------------------------
    # Session lifecycle.
    # ------------------------------------------------------------------
    def on_session_start(self, platform: "NotebookOSPlatform", session: SessionTrace):
        request = ResourceRequest(millicpus=4000, memory_mb=16384,
                                  gpus=session.gpus_requested,
                                  vram_gb=8.0 * session.gpus_requested)
        kernel = yield platform.env.process(platform.global_scheduler.start_kernel(
            session.session_id, request, assignment=session.assignment,
            replication_factor=self.replication_factor))
        self._kernels[session.session_id] = kernel
        return kernel

    def on_session_end(self, platform: "NotebookOSPlatform", session: SessionTrace):
        kernel = self._kernels.pop(session.session_id, None)
        if kernel is not None and not kernel.is_terminated:
            yield platform.env.process(
                platform.global_scheduler.shutdown_kernel(kernel))

    def kernel_for(self, session_id: str) -> Optional[DistributedKernel]:
        return self._kernels.get(session_id)

    # ------------------------------------------------------------------
    # Batched decisions.
    # ------------------------------------------------------------------
    def decide_batch(self, platform: "NotebookOSPlatform", batch) -> int:
        """Warm the namespace snapshot of every kernel admitting a task.

        The namespace memo is the decision that genuinely repeats — every
        post-execution replication re-derives it, and it never invalidates
        — so warming it here makes the whole batch's replication chains
        O(1) lookups.  Election inputs (proposals, preferred executor) are
        deliberately *not* pre-warmed: they are queried exactly once per
        task after the ingress sleep, so admission-time warming would run
        the same computation one extra time per task for no repeat use;
        they are cached at use time instead, where quiet stretches between
        cluster deltas turn repeat queries into hits.  Pure: the election
        itself — which always consumes RNG — still runs per task in
        ``execute_task``.
        """
        runstate = getattr(platform, "runstate", None)
        if runstate is None or not runstate.enabled:
            return 0
        decisions = runstate.decisions
        warmed = 0
        seen = set()
        table = batch.table
        for index in batch.indices:
            kernel = self._kernels.get(table.session_ids[index])
            if kernel is None:       # session not started yet: per-task path
                continue
            if kernel.kernel_id in seen:
                continue
            seen.add(kernel.kernel_id)
            decisions.namespace_objects(kernel)
            warmed += 1
        return warmed

    # ------------------------------------------------------------------
    # Cell execution.
    # ------------------------------------------------------------------
    def execute_task(self, platform: "NotebookOSPlatform", session: SessionTrace,
                     task: TaskRecord, metrics: TaskMetrics):
        env = platform.env
        kernel = self._kernels.get(session.session_id)
        if kernel is None:
            kernel = yield from self.on_session_start(platform, session)
        steps = metrics.steps
        metrics.kernel_id = kernel.kernel_id

        yield from self.request_ingress(platform, steps)

        # Executor replica election (§3.2.2).  The previous executor id is
        # captured before the election to derive the reuse statistic.
        previous_executor = kernel.election.last_executor_id
        gpus_needed = task.gpus if task.is_gpu_task else 0
        # Proposals and the preferred executor are computed directly: each is
        # queried exactly once per election, so a version-guarded memo would
        # pay guard-construction costs comparable to the computation itself
        # without ever serving a repeat.  (DecisionCache.proposals /
        # .preferred_executor stay available for callers with repeat-query
        # patterns; the differential harness pins their equivalence.)
        proposals = kernel.make_proposals(gpus_needed)
        if not proposals:
            # Every replica is gone or busy migrating (failure injection can
            # wipe a kernel's whole replica set): recover via the migration
            # path rather than holding an empty election.
            metrics.required_migration = True
            executor = yield env.process(platform.global_scheduler.migrate_replica(
                kernel, gpus_needed))
            if executor is None:
                metrics.status = "error"
                metrics.completed_at = env.now
                return metrics
            proposals = kernel.make_proposals(gpus_needed)
            if not proposals:
                metrics.status = "error"
                metrics.completed_at = env.now
                return metrics
        preferred = platform.global_scheduler.preferred_executor(kernel, gpus_needed)
        outcome = kernel.election.decide(proposals, preferred_replica=preferred)
        steps.record("primary_replica_protocol", outcome.latency_s)
        yield outcome.latency_s
        platform.metrics.record_executor_decision(
            immediate_commit=not outcome.failed,
            same_executor=(outcome.winner is not None
                           and outcome.winner.replica_id == previous_executor))

        if outcome.failed:
            # All replicas yielded: migrate one replica to a host with GPUs.
            metrics.required_migration = True
            migration_start = env.now
            executor = yield env.process(platform.global_scheduler.migrate_replica(
                kernel, gpus_needed))
            steps.record("intermediary_interval", env.now - migration_start)
            if executor is None:
                metrics.status = "error"
                metrics.completed_at = env.now
                yield from self.reply_egress(platform, steps)
                return metrics
        else:
            executor = kernel.replica_by_id(outcome.winner.replica_id)
            if executor is None:   # replica vanished (failure) - re-elect via migration
                executor = yield env.process(platform.global_scheduler.migrate_replica(
                    kernel, gpus_needed))
                if executor is None:
                    metrics.status = "error"
                    metrics.completed_at = env.now
                    return metrics

        if executor.host_id not in platform.cluster.local_schedulers:
            # The executor's whole host vanished (failure injection) between
            # election and dispatch: re-place via the migration path.
            metrics.required_migration = True
            executor = yield env.process(platform.global_scheduler.migrate_replica(
                kernel, gpus_needed))
            if executor is None:
                metrics.status = "error"
                metrics.completed_at = env.now
                return metrics

        local_scheduler = platform.cluster.scheduler_for(executor.host_id)

        # Dynamic GPU binding (§3.3): bind right before execution.  A
        # migration may already have bound the GPUs exclusively on the new
        # host, in which case there is nothing left to do here.
        bind_start = env.now
        gpus_to_bind = min(gpus_needed, executor.host.spec.num_gpus)
        if gpus_to_bind > 0 and not self._kernel_owns_gpus(executor, kernel):
            waited = 0.0
            while not executor.host.can_bind_gpus(gpus_to_bind):
                yield self.gpu_wait_poll_s
                waited += self.gpu_wait_poll_s
                if waited >= self.gpu_wait_timeout_s:
                    break
            if executor.host.can_bind_gpus(gpus_to_bind):
                local_scheduler.bind_gpus(executor, gpus_to_bind)
            else:
                # Last resort: migrate to a host that can serve the task.
                metrics.required_migration = True
                migrated = yield env.process(platform.global_scheduler.migrate_replica(
                    kernel, gpus_to_bind))
                if migrated is None:
                    metrics.status = "error"
                    metrics.completed_at = env.now
                    return metrics
                executor = migrated
                local_scheduler = platform.cluster.scheduler_for(executor.host_id)
                if not self._kernel_owns_gpus(executor, kernel):
                    local_scheduler.bind_gpus(executor, gpus_to_bind)

        # Load model parameters from host memory onto the allocated GPUs.
        model = session.assignment.model if session.assignment else None
        load_time = platform.gpu_binding.load_time(model, platform.rng) if gpus_to_bind \
            else 0.0
        steps.record("intermediary_interval", (env.now - bind_start) + load_time)
        if load_time:
            yield load_time

        # Execute the user's code.
        executor.state = ReplicaState.EXECUTING
        metrics.started_at = env.now
        metrics.executor_replica = executor.replica_id
        steps.record("execute_code", task.duration)
        yield task.duration

        # Copy GPU state back to host memory before replying (§3.3), then
        # release the GPUs for co-located kernels.
        unload_time = platform.gpu_binding.unload_time(model, platform.rng) \
            if gpus_to_bind else 0.0
        steps.record("kernel_postprocess", unload_time)
        if unload_time:
            yield unload_time
        if gpus_to_bind:
            local_scheduler.release_gpus(executor)
        executor.state = ReplicaState.IDLE
        executor.executions += 1
        kernel.executions_completed += 1

        yield from self.reply_egress(platform, steps)
        metrics.completed_at = env.now
        metrics.status = "ok"

        # Post-execution state replication happens off the critical path.
        if task.code:
            platform.spawn_background(self._replicate_state(platform, kernel,
                                                            executor.replica_id, task))
        return metrics

    @staticmethod
    def _kernel_owns_gpus(executor, kernel: DistributedKernel) -> bool:
        """Whether the kernel already holds GPUs on the executor's host."""
        return bool(executor.host.gpus.owners().get(kernel.kernel_id))

    def _replicate_state(self, platform: "NotebookOSPlatform",
                         kernel: DistributedKernel, executor_replica: str,
                         task: TaskRecord):
        runstate = getattr(platform, "runstate", None)
        namespace = (runstate.decisions.namespace_objects(kernel)
                     if runstate is not None else kernel.namespace_objects())
        report = yield from kernel.synchronizer.synchronize(
            task.code, namespace, executor_replica,
            node_id=executor_replica)
        if report.raft_sync_latency > 0:
            platform.metrics.raft_sync_latencies.append(report.raft_sync_latency)
        return report
