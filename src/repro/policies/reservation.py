"""The Reservation baseline (§5.1.1).

Reservation emulates today's notebook platforms (the Adobe research cluster,
Google Colab): one long-running kernel container per session with fixed
resources — including GPUs — exclusively allocated for the session's entire
lifetime.  Interactivity is excellent (the GPUs are always there), utilization
is terrible (the GPUs are idle whenever the user is not training).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.api.registry import register_policy
from repro.cluster.container import Container
from repro.cluster.host import Host
from repro.cluster.resources import ResourceRequest
from repro.metrics.collector import TaskMetrics
from repro.policies.base import SchedulingPolicy
from repro.workload.trace import SessionTrace, TaskRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.platform import NotebookOSPlatform


@dataclass
class _Reservation:
    """The resources held by one session under the Reservation policy."""

    host: Host
    container: Container
    request: ResourceRequest
    gpus_reserved: int


@register_policy("reservation",
                 description="one long-running container per session with "
                             "exclusively reserved GPUs (today's NaaS)")
class ReservationPolicy(SchedulingPolicy):
    """One long-running container per session with exclusively reserved GPUs."""

    name = "reservation"
    uses_autoscaler = False
    replication_factor = 1

    def __init__(self, state_persist_s: float = 0.15) -> None:
        # Small post-execution state persistence on the critical path
        # (Figure 16, step 9): kernels flush small updated state after a cell.
        self.state_persist_s = state_persist_s
        self._reservations: Dict[str, _Reservation] = {}

    # ------------------------------------------------------------------
    # Session lifecycle: reserve for the whole lifetime.
    # ------------------------------------------------------------------
    def on_session_start(self, platform: "NotebookOSPlatform", session: SessionTrace):
        env = platform.env
        request = ResourceRequest(millicpus=4000, memory_mb=16384,
                                  gpus=session.gpus_requested,
                                  vram_gb=8.0 * session.gpus_requested)
        host = self._find_host(platform, request)
        while host is None:
            yield env.process(platform.global_scheduler.scale_out(
                1, reason=f"reservation for {session.session_id}"))
            host = self._find_host(platform, request)
        host.pool.commit(request)
        host.subscribe(session.session_id, request.gpus)
        scheduler = platform.cluster.scheduler_for(host.host_id)
        container = yield from scheduler.runtime.provision(
            request, prewarmed=False)
        container.assign(session.session_id, f"{session.session_id}-kernel")
        host.register_container(container.container_id, container)
        self._reservations[session.session_id] = _Reservation(
            host=host, container=container, request=request,
            gpus_reserved=request.gpus)
        return self._reservations[session.session_id]

    def on_session_end(self, platform: "NotebookOSPlatform", session: SessionTrace):
        reservation = self._reservations.pop(session.session_id, None)
        if reservation is None:
            return
        host = reservation.host
        host.pool.release(reservation.request)
        host.unsubscribe(session.session_id)
        host.unregister_container(reservation.container.container_id)
        if session.session_id in host.gpus.owners():
            host.release_gpus(session.session_id, platform.env.now)
        scheduler = platform.cluster.scheduler_for(host.host_id)
        yield platform.env.process(scheduler.runtime.terminate(reservation.container))

    def _find_host(self, platform: "NotebookOSPlatform",
                   request: ResourceRequest) -> Optional[Host]:
        # The selection key embeds the host id, so the minimum is unique and
        # any iteration order yields the same host as the previous
        # materialized-list scan; iter_ranked avoids building that list.
        return min((h for h in platform.cluster.iter_ranked()
                    if h.pool.can_commit(request)),
                   key=lambda h: (h.pool.committed.gpus, h.host_id),
                   default=None)

    # ------------------------------------------------------------------
    # Batched decisions: deliberately nothing.
    # ------------------------------------------------------------------
    def decide_batch(self, platform: "NotebookOSPlatform", batch) -> int:
        """No decisions are safely cacheable for Reservation.

        ``_find_host`` filters on ``host.pool.can_commit`` — CPU/memory
        commits on the per-host :class:`ResourcePool`, which is *not*
        covered by the cluster version counter (pool commit/release fires
        no delta hook) — so a version-guarded memo of it could serve stale
        answers.  The task chain itself holds no repeated pure decision:
        the reservation pins the host for the session's lifetime.
        """
        return 0

    # ------------------------------------------------------------------
    # Cell execution: the GPUs are already bound to the session.
    # ------------------------------------------------------------------
    def execute_task(self, platform: "NotebookOSPlatform", session: SessionTrace,
                     task: TaskRecord, metrics: TaskMetrics):
        env = platform.env
        reservation = self._reservations.get(session.session_id)
        if reservation is None:
            reservation = yield from self.on_session_start(platform, session)
        steps = metrics.steps
        metrics.kernel_id = f"{session.session_id}-kernel"

        yield from self.request_ingress(platform, steps)

        host = reservation.host
        gpus = min(task.gpus, reservation.gpus_reserved) if task.is_gpu_task else 0
        if gpus and host.can_bind_gpus(gpus):
            host.bind_gpus(session.session_id, gpus, env.now)

        model = session.assignment.model if session.assignment else None
        load_time = platform.gpu_binding.load_time(model, platform.rng) if gpus else 0.0
        steps.record("intermediary_interval", load_time)
        if load_time:
            yield load_time

        metrics.started_at = env.now
        metrics.executor_replica = metrics.kernel_id
        steps.record("execute_code", task.duration)
        yield task.duration

        # The reserved kernel persists small updated state after the cell.
        steps.record("kernel_postprocess", self.state_persist_s)
        yield self.state_persist_s
        if gpus and session.session_id in host.gpus.owners():
            host.release_gpus(session.session_id, env.now)

        yield from self.reply_egress(platform, steps)
        metrics.completed_at = env.now
        metrics.status = "ok"
        return metrics

    # ------------------------------------------------------------------
    # Metrics: provisioned GPUs are the reserved GPUs of active sessions.
    # ------------------------------------------------------------------
    def provisioned_gpus(self, platform: "NotebookOSPlatform") -> float:
        return float(sum(r.gpus_reserved for r in self._reservations.values()))
