"""Scheduling policies: NotebookOS and the evaluation baselines (§5.1.1).

The paper implements its baselines *inside* NotebookOS; this package mirrors
that structure.  One platform (:class:`repro.core.platform.NotebookOSPlatform`)
hosts any of these policy objects, which change how sessions are provisioned,
how cell executions acquire GPUs, and what "provisioned GPUs" means:

* :class:`NotebookOSPolicy` — the full system: replicated kernels, executor
  elections, dynamic GPU binding, oversubscription, migration, auto-scaling;
* :class:`ReservationPolicy` — today's NaaS behaviour: one long-running
  container per session with exclusively reserved GPUs;
* :class:`BatchPolicy` — an FCFS batch GPU scheduler: a fresh container per
  submission, GPUs allocated on demand, data staged in and out every time;
* :class:`LargeContainerPoolPolicy` — NotebookOS (LCP): a large shared pool
  of pre-warmed containers traded against interactivity;
* :mod:`repro.policies.oracle` — the oracle curve (exact GPUs required).

Each class registers itself with the :mod:`repro.api` policy registry
(``@register_policy("name")``), which is how every entry point — the
:class:`~repro.api.Simulation` builder, the experiment sweeps and CLI, the
benchmarks — resolves policy names.  Third-party policies register the same
way; nothing here is special-cased (see EXPERIMENTS.md, "Extending repro").

``POLICY_REGISTRY`` and :func:`make_policy` below are deprecated shims kept
for source compatibility; use ``repro.api.default_policy_registry()``.
"""

import warnings

from repro.api.registry import default_policy_registry
from repro.policies.base import SchedulingPolicy
from repro.policies.notebookos import NotebookOSPolicy
from repro.policies.reservation import ReservationPolicy
from repro.policies.batch import BatchPolicy
from repro.policies.lcp import LargeContainerPoolPolicy
from repro.policies.oracle import oracle_gpu_timeline

#: Deprecated: name -> class mapping, kept for source compatibility with the
#: pre-``repro.api`` layout.  New code should use
#: ``repro.api.default_policy_registry()``, which also sees policies
#: registered by downstream code.
POLICY_REGISTRY = {
    "notebookos": NotebookOSPolicy,
    "reservation": ReservationPolicy,
    "batch": BatchPolicy,
    "lcp": LargeContainerPoolPolicy,
    "notebookos-lcp": LargeContainerPoolPolicy,
}


_MAKE_POLICY_WARNED = False


def make_policy(name: str, **kwargs) -> SchedulingPolicy:
    """Deprecated shim: instantiate a policy by its registry name.

    Delegates to the :mod:`repro.api` policy registry (so it also resolves
    policies registered after import, unlike the frozen ``POLICY_REGISTRY``
    dict).  Unknown names raise ``ValueError`` exactly as before.

    Emits ``DeprecationWarning`` exactly once per process — a long sweep
    calling the shim thousands of times should nudge, not flood (warning
    dedup by location does not help callers that loop from many sites, so
    the shim tracks it itself).
    """
    from repro.api.registry import UnknownPolicyError

    global _MAKE_POLICY_WARNED
    if not _MAKE_POLICY_WARNED:
        _MAKE_POLICY_WARNED = True
        warnings.warn(
            "repro.policies.make_policy is deprecated; use "
            "repro.api.default_policy_registry().create(name, **kwargs)",
            DeprecationWarning, stacklevel=2)
    try:
        return default_policy_registry().create(name, **kwargs)
    except UnknownPolicyError as error:
        raise ValueError(error.args[0]) from None


__all__ = [
    "BatchPolicy",
    "LargeContainerPoolPolicy",
    "NotebookOSPolicy",
    "POLICY_REGISTRY",
    "ReservationPolicy",
    "SchedulingPolicy",
    "make_policy",
    "oracle_gpu_timeline",
]
