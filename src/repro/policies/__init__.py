"""Scheduling policies: NotebookOS and the evaluation baselines (§5.1.1).

The paper implements its baselines *inside* NotebookOS; this package mirrors
that structure.  One platform (:class:`repro.core.platform.NotebookOSPlatform`)
hosts any of these policy objects, which change how sessions are provisioned,
how cell executions acquire GPUs, and what "provisioned GPUs" means:

* :class:`NotebookOSPolicy` — the full system: replicated kernels, executor
  elections, dynamic GPU binding, oversubscription, migration, auto-scaling;
* :class:`ReservationPolicy` — today's NaaS behaviour: one long-running
  container per session with exclusively reserved GPUs;
* :class:`BatchPolicy` — an FCFS batch GPU scheduler: a fresh container per
  submission, GPUs allocated on demand, data staged in and out every time;
* :class:`LargeContainerPoolPolicy` — NotebookOS (LCP): a large shared pool
  of pre-warmed containers traded against interactivity;
* :mod:`repro.policies.oracle` — the oracle curve (exact GPUs required).
"""

from repro.policies.base import SchedulingPolicy
from repro.policies.notebookos import NotebookOSPolicy
from repro.policies.reservation import ReservationPolicy
from repro.policies.batch import BatchPolicy
from repro.policies.lcp import LargeContainerPoolPolicy
from repro.policies.oracle import oracle_gpu_timeline

POLICY_REGISTRY = {
    "notebookos": NotebookOSPolicy,
    "reservation": ReservationPolicy,
    "batch": BatchPolicy,
    "lcp": LargeContainerPoolPolicy,
    "notebookos-lcp": LargeContainerPoolPolicy,
}


def make_policy(name: str, **kwargs) -> SchedulingPolicy:
    """Instantiate a policy by its registry name."""
    try:
        policy_cls = POLICY_REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(f"unknown policy {name!r}; choose from "
                         f"{sorted(POLICY_REGISTRY)}") from None
    return policy_cls(**kwargs)


__all__ = [
    "BatchPolicy",
    "LargeContainerPoolPolicy",
    "NotebookOSPolicy",
    "POLICY_REGISTRY",
    "ReservationPolicy",
    "SchedulingPolicy",
    "make_policy",
    "oracle_gpu_timeline",
]
