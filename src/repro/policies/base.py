"""The scheduling-policy interface and shared request-path helpers.

A policy decides what happens when a session starts, when a cell task is
submitted, and when a session ends.  Every hook is a simulation process (a
generator the platform wraps in :meth:`Environment.process`), so policies can
wait on container provisioning, GPU availability, data staging, and so on.

The helpers here implement the request-path steps shared by every policy
(Figure 15): the client → Jupyter Server → Global Scheduler → Local Scheduler
→ kernel hops and their bookkeeping in the per-step latency breakdown.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.metrics.collector import TaskMetrics
from repro.metrics.latency_breakdown import StepLatencies
from repro.workload.trace import SessionTrace, TaskRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.platform import NotebookOSPlatform


class SchedulingPolicy:
    """Base class for the NotebookOS policy and the evaluation baselines."""

    name = "base"
    uses_autoscaler = False
    replication_factor = 1

    # ------------------------------------------------------------------
    # Lifecycle hooks (all simulation processes).
    # ------------------------------------------------------------------
    def on_session_start(self, platform: "NotebookOSPlatform",
                         session: SessionTrace):
        """Provision whatever the policy needs for a new session."""
        yield 0.0

    def execute_task(self, platform: "NotebookOSPlatform", session: SessionTrace,
                     task: TaskRecord, metrics: TaskMetrics):
        """Execute one submitted cell task end to end."""
        raise NotImplementedError
        yield  # pragma: no cover - makes this a generator for subclass parity

    def on_session_end(self, platform: "NotebookOSPlatform", session: SessionTrace):
        """Tear down per-session resources."""
        yield 0.0

    # ------------------------------------------------------------------
    # Batched decisions (columnar fast path).
    # ------------------------------------------------------------------
    def decide_batch(self, platform: "NotebookOSPlatform", batch) -> int:
        """Warm the policy-decision cache for one same-timestamp batch.

        The platform's :class:`~repro.core.runstate.RunState` calls this
        *synchronously* (not a simulation process) at the first admission of
        each distinct submit timestamp, passing an
        :class:`~repro.core.runstate.AdmissionBatch` that covers every task
        submitting at that instant — one policy call per policy per
        timestamp, mirroring the engine's fused same-timestamp dispatch.

        Implementations must be **pure** with respect to simulation state:
        no mutation, no RNG draws, no simulated time — only reads and
        version-guarded decision-cache stores, so a batched run stays
        bit-identical to the frozen per-task reference regardless of how
        accurate the warm-ahead turns out to be.  Returns the number of
        decisions warmed (0 for policies with nothing cacheable).
        """
        return 0

    # ------------------------------------------------------------------
    # Metrics hooks.
    # ------------------------------------------------------------------
    def provisioned_gpus(self, platform: "NotebookOSPlatform") -> float:
        """The "provisioned GPUs" series this policy contributes to Figure 8."""
        return float(platform.cluster.total_gpus())

    # ------------------------------------------------------------------
    # Shared request-path helpers.
    # ------------------------------------------------------------------
    @staticmethod
    def request_ingress(platform: "NotebookOSPlatform", steps: StepLatencies,
                        gs_extra: float = 0.0):
        """Request-path helper: client → GS → LS → kernel hops (a generator —
        callers ``yield from`` it inside their own process).

        Records steps (1)–(5) of Figure 15.  ``gs_extra`` adds policy-specific
        Global Scheduler work (queueing, on-demand provisioning) to step (1).

        Nothing observable happens between the constant-delay hops, so the
        whole chain is batched into **one** scheduled wake-up: the per-hop
        delays are accumulated into an absolute wake time with the same float
        additions the individual sleeps performed (bit-identical timestamps)
        and slept through with a single ``env.at`` event instead of three.
        """
        config = platform.config
        env = platform.env
        # Jupyter Server processing plus the hop to the Global Scheduler is
        # part of the (unnumbered) client-side path; it is tiny and constant.
        wake = env.now + (config.jupyter_processing_s + config.network_hop_s)
        steps.record("gs_process_request", config.gs_processing_s + gs_extra)
        wake = wake + (config.gs_processing_s + gs_extra)
        steps.record("gs_to_ls_hop", config.network_hop_s)
        steps.record("ls_process_request", config.ls_processing_s)
        steps.record("ls_to_kernel_hop", config.network_hop_s)
        steps.record("kernel_preprocess", config.kernel_preprocess_s)
        wake = wake + (2 * config.network_hop_s + config.ls_processing_s
                       + config.kernel_preprocess_s)
        yield env.at(wake)

    @staticmethod
    def reply_egress(platform: "NotebookOSPlatform", steps: StepLatencies):
        """Request-path helper: kernel → LS → GS → client reply (step 10+);
        callers ``yield from`` it — already a single sleep."""
        config = platform.config
        steps.record("kernel_to_ls_hop", config.network_hop_s)
        yield 3 * config.network_hop_s + config.jupyter_processing_s

    @staticmethod
    def stage_model_and_dataset(platform: "NotebookOSPlatform",
                                session: SessionTrace, owner: str,
                                node_id: Optional[str] = None):
        """Simulation process: fetch model parameters + dataset from storage.

        Returns the staging latency.  Used by the Batch and LCP baselines,
        which must download the session's model and dataset before every
        execution (their containers hold no session state).
        """
        env = platform.env
        start = env.now
        assignment = session.assignment
        model_bytes = (assignment.model.parameter_bytes if assignment
                       else 200 * 1024 ** 2)
        dataset_bytes = (min(assignment.dataset.size_bytes, 4 * 1024 ** 3) if assignment
                         else 1024 ** 3)
        key_prefix = f"staging/{session.session_id}"
        datastore = platform.datastore
        if not datastore.contains(f"{key_prefix}/model"):
            yield from datastore.write(f"{key_prefix}/model", model_bytes,
                                       owner=owner)
            yield from datastore.write(f"{key_prefix}/dataset", dataset_bytes,
                                       owner=owner)
        yield from datastore.read(f"{key_prefix}/model", node_id=node_id)
        yield from datastore.read(f"{key_prefix}/dataset", node_id=node_id)
        return env.now - start

    @staticmethod
    def persist_model(platform: "NotebookOSPlatform", session: SessionTrace,
                      owner: str, node_id: Optional[str] = None):
        """Simulation process: write updated model parameters back to storage."""
        env = platform.env
        start = env.now
        assignment = session.assignment
        model_bytes = (assignment.model.parameter_bytes if assignment
                       else 200 * 1024 ** 2)
        yield from platform.datastore.write(
            f"staging/{session.session_id}/model", model_bytes, owner=owner,
            node_id=node_id)
        return env.now - start
