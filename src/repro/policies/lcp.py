"""The NotebookOS (LCP) baseline: a large shared pre-warmed container pool.

NotebookOS (LCP) trades some interactivity for lower resource cost (§5.1.1).
Instead of three long-lived replicas per kernel it keeps a large pool of
pre-warmed, *shared* containers.  When a cell task arrives, a warm container
on a host with idle GPUs serves it; because the container holds no session
state, the model parameters and dataset must first be downloaded (the
"warming-up" operation that lengthens TCT, §5.3.3).  After execution the
container returns to the pool.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.api.registry import register_policy
from repro.cluster.host import Host
from repro.cluster.resources import ResourceRequest
from repro.metrics.collector import TaskMetrics
from repro.policies.base import SchedulingPolicy
from repro.workload.trace import SessionTrace, TaskRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.platform import NotebookOSPlatform


@register_policy("lcp", aliases=("notebookos-lcp",),
                 description="a large shared pool of pre-warmed containers "
                             "traded against interactivity")
class LargeContainerPoolPolicy(SchedulingPolicy):
    """Serve cell tasks from a large pool of shared pre-warmed containers."""

    name = "notebookos-lcp"
    uses_autoscaler = True
    replication_factor = 1

    def __init__(self, gpu_wait_poll_s: float = 5.0) -> None:
        self.gpu_wait_poll_s = gpu_wait_poll_s

    # ------------------------------------------------------------------
    # Host / container acquisition.
    # ------------------------------------------------------------------
    def _find_host(self, platform: "NotebookOSPlatform", gpus: int) -> Optional[Host]:
        # Version-guarded memo over the scan below: the guard covers both
        # the cluster index (host/GPU churn) and the prewarmer (warm-pool
        # churn), the two inputs the scan reads.
        runstate = getattr(platform, "runstate", None)
        if runstate is not None:
            return runstate.decisions.warm_pool_host(
                platform.cluster, platform.prewarmer, gpus,
                lambda: self._scan_for_host(platform, gpus))
        return self._scan_for_host(platform, gpus)

    def _scan_for_host(self, platform: "NotebookOSPlatform",
                       gpus: int) -> Optional[Host]:
        # The frozen reference scan.  Served from the cluster's idle-GPU
        # buckets: only qualifying hosts are enumerated (best bucket first,
        # host ids ascending), so the common few-hosts-qualify case costs
        # O(answer) instead of the old O(n) rank-list scan.  The selection
        # is identical to minimizing (-has_warm_container, -idle_gpus,
        # host_id) over qualifying hosts: walking (idle desc, id asc), the
        # first warm host is the minimum among warm hosts, and the very
        # first host is the no-warm fallback.
        available = platform.prewarmer.available
        fallback: Optional[Host] = None
        for host in platform.cluster.iter_hosts_by_idle_desc(gpus):
            if available(host.host_id):
                return host
            if fallback is None:
                fallback = host
        return fallback

    # ------------------------------------------------------------------
    # Batched decisions.
    # ------------------------------------------------------------------
    def decide_batch(self, platform: "NotebookOSPlatform", batch) -> int:
        """Warm one host probe per distinct GPU request size in the batch.

        ``execute_task`` probes synchronously at admission time — before any
        ingress sleep — so a warmed probe is a guaranteed cache hit for
        every task in the batch (the clamp below mirrors the per-task
        effective request computation).
        """
        runstate = getattr(platform, "runstate", None)
        if runstate is None or not runstate.enabled:
            return 0
        cap = platform.cluster_config.host_spec.num_gpus
        warmed = 0
        for gpus in batch.gpu_requests():
            self._find_host(platform, min(gpus, cap))
            warmed += 1
        return warmed

    # ------------------------------------------------------------------
    # Cell execution.
    # ------------------------------------------------------------------
    def execute_task(self, platform: "NotebookOSPlatform", session: SessionTrace,
                     task: TaskRecord, metrics: TaskMetrics):
        env = platform.env
        steps = metrics.steps
        job_id = f"{session.session_id}-lcp-{task.task_index}"
        metrics.kernel_id = job_id
        gpus = min(task.gpus, platform.cluster_config.host_spec.num_gpus) \
            if task.is_gpu_task else 0

        # Wait for a host with enough idle GPUs, then grab a warm container
        # from its pool (or pay a cold start when the pool is exhausted).
        wait_start = env.now
        host = self._find_host(platform, gpus)
        while host is None:
            yield self.gpu_wait_poll_s
            host = self._find_host(platform, gpus)
        if gpus:
            host.bind_gpus(job_id, gpus, env.now)
        scheduler = platform.cluster.scheduler_for(host.host_id)
        container = platform.prewarmer.take(host.host_id)
        if container is None:
            container = yield from scheduler.runtime.provision(
                ResourceRequest(gpus=gpus), prewarmed=False)
        else:
            yield scheduler.runtime.latency_model.warm_start(platform.rng)
        container.assign(job_id, job_id)
        acquisition_delay = env.now - wait_start

        yield from self.request_ingress(platform, steps,
                                        gs_extra=acquisition_delay)

        # Warming-up: download the session's model parameters and dataset.
        stage_time = yield from self.stage_model_and_dataset(
            platform, session, owner=job_id, node_id=host.host_id)
        steps.record("intermediary_interval", stage_time)

        metrics.started_at = env.now
        metrics.executor_replica = job_id
        steps.record("execute_code", task.duration)
        yield task.duration

        # Persist the updated model so the next (different) container can
        # pick the session up where this one left off.
        persist_time = yield from self.persist_model(
            platform, session, owner=job_id, node_id=host.host_id)
        steps.record("kernel_postprocess", persist_time)

        if gpus and job_id in host.gpus.owners():
            host.release_gpus(job_id, env.now)
        # The container returns to the pool rather than being terminated.
        platform.prewarmer.put_back(host.host_id, container)
        yield from self.reply_egress(platform, steps)
        metrics.completed_at = env.now
        metrics.status = "ok"
        return metrics

    def provisioned_gpus(self, platform: "NotebookOSPlatform") -> float:
        return float(platform.cluster.total_gpus())
