"""The Batch (FCFS GPU cluster scheduler) baseline (§5.1.1).

Batch represents batch GPU cluster schedulers (Gandiva, Tiresias, Themis, …)
attached to a notebook front end: every code submission becomes a job that
waits in an FCFS queue for GPUs, gets a freshly provisioned container, stages
its model and dataset in from remote storage, runs, writes its results back,
and tears the container down.  Resource usage is excellent; interactivity
suffers from queueing and cold starts (Figure 9(a) / Figure 17).
"""

from __future__ import annotations

from collections import deque
from itertools import count
from typing import TYPE_CHECKING, Optional

from repro.api.registry import register_policy
from repro.cluster.host import Host
from repro.cluster.resources import ResourceRequest
from repro.metrics.collector import TaskMetrics
from repro.policies.base import SchedulingPolicy
from repro.workload.trace import SessionTrace, TaskRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.platform import NotebookOSPlatform


@register_policy("batch",
                 description="FCFS batch GPU scheduling: fresh container per "
                             "submission, data staged in and out every time")
class BatchPolicy(SchedulingPolicy):
    """First-come, first-served on-demand containers and GPU allocation."""

    name = "batch"
    uses_autoscaler = False
    replication_factor = 1

    def __init__(self, queue_poll_interval_s: float = 5.0) -> None:
        self.queue_poll_interval_s = queue_poll_interval_s
        self._queue: deque[int] = deque()
        self._ticket_counter = count(1)

    # ------------------------------------------------------------------
    # FCFS admission.
    # ------------------------------------------------------------------
    def _find_host(self, platform: "NotebookOSPlatform", gpus: int) -> Optional[Host]:
        # Served by the cluster's idle-GPU buckets: hopeless polls (no
        # qualifying bucket) are rejected in O(buckets) while the FCFS queue
        # waits for capacity, and a hit reads max(idle_gpus, host_id)
        # straight off the best bucket — never a host-list scan.  With the
        # decision cache wired, repeated polls between cluster deltas (the
        # saturated-queue steady state) are one dict lookup.
        runstate = getattr(platform, "runstate", None)
        if runstate is not None:
            return runstate.decisions.most_idle_host(platform.cluster, gpus)
        return platform.cluster.most_idle_host(gpus)

    # ------------------------------------------------------------------
    # Batched decisions.
    # ------------------------------------------------------------------
    def decide_batch(self, platform: "NotebookOSPlatform", batch) -> int:
        """Warm one FCFS host probe per distinct GPU request size.

        Queue tickets stay strictly consumption-driven — pre-assigning them
        here would reorder the FCFS queue — so only the pure host probes
        are warmed (the clamp and the ``max(gpus, 1)`` floor mirror the
        per-task effective request computation in ``execute_task``).
        """
        runstate = getattr(platform, "runstate", None)
        if runstate is None or not runstate.enabled:
            return 0
        cap = platform.cluster_config.host_spec.num_gpus
        warmed = 0
        for gpus in batch.gpu_requests():
            gpus = min(gpus, cap)
            self._find_host(platform, max(gpus, 1) if gpus else 0)
            warmed += 1
        return warmed

    def _acquire_host(self, platform: "NotebookOSPlatform", gpus: int):
        """Simulation process: FCFS-wait until some host has ``gpus`` idle GPUs."""
        ticket = next(self._ticket_counter)
        self._queue.append(ticket)
        try:
            while True:
                if self._queue[0] == ticket:
                    host = self._find_host(platform, gpus)
                    if host is not None:
                        return host
                yield self.queue_poll_interval_s
        finally:
            self._queue.remove(ticket)

    # ------------------------------------------------------------------
    # Cell execution.
    # ------------------------------------------------------------------
    def execute_task(self, platform: "NotebookOSPlatform", session: SessionTrace,
                     task: TaskRecord, metrics: TaskMetrics):
        env = platform.env
        steps = metrics.steps
        job_id = f"{session.session_id}-job-{task.task_index}"
        metrics.kernel_id = job_id
        gpus = min(task.gpus, platform.cluster_config.host_spec.num_gpus) \
            if task.is_gpu_task else 0

        # Step (1): queueing for GPUs plus on-demand container provisioning
        # both happen before the request ever reaches a kernel (Figure 17).
        queue_start = env.now
        host = yield from self._acquire_host(platform, max(gpus, 1) if gpus else 0)
        scheduler = platform.cluster.scheduler_for(host.host_id)
        if gpus:
            host.bind_gpus(job_id, gpus, env.now)
        container = yield from scheduler.runtime.provision(
            ResourceRequest(gpus=gpus), prewarmed=False)
        container.assign(job_id, job_id)
        host.register_container(container.container_id, container)
        provisioning_delay = env.now - queue_start

        yield from self.request_ingress(platform, steps,
                                        gs_extra=provisioning_delay)

        # Mandatory pre-processing data I/O: stage the model and dataset.
        stage_time = yield from self.stage_model_and_dataset(
            platform, session, owner=job_id, node_id=job_id)
        steps.record("intermediary_interval", stage_time)

        metrics.started_at = env.now
        metrics.executor_replica = job_id
        steps.record("execute_code", task.duration)
        yield task.duration

        # Mandatory post-processing data I/O: persist the updated model.
        persist_time = yield from self.persist_model(
            platform, session, owner=job_id, node_id=job_id)
        steps.record("kernel_postprocess", persist_time)

        if gpus and job_id in host.gpus.owners():
            host.release_gpus(job_id, env.now)
        host.unregister_container(container.container_id)
        yield from self.reply_egress(platform, steps)
        metrics.completed_at = env.now
        metrics.status = "ok"

        # Container teardown happens after the reply (not on the critical path).
        platform.spawn_background(scheduler.runtime.terminate(container))
        return metrics

    # ------------------------------------------------------------------
    # Metrics: only GPUs actively serving jobs count as provisioned.
    # ------------------------------------------------------------------
    def provisioned_gpus(self, platform: "NotebookOSPlatform") -> float:
        return float(platform.cluster.committed_training_gpus())
