"""Deterministic host-failure injection (the ``failure_storm`` stressor).

Promoted from ``examples/failure_injection.py`` into the core so failure
storms are a first-class, registered, sweepable workload condition rather
than example-only scaffolding.  Enable via
:attr:`PlatformConfig.host_failure_interval_s`; the platform then spawns
:func:`chaos_process` as a background process alongside the workload.

Every ``interval`` simulated seconds the process picks a random active GPU
server (from the platform's own seeded ``"chaos"`` substream, so the victim
sequence is a pure function of the run seed — identical per shard under the
space-sharded runner), fails every kernel replica hosted there through the
Global Scheduler's normal recovery path (each replica is recreated from
persisted state on another host, §3.2.5), and decommissions the dead
server.  The auto-scaler backfills as demand requires.

Rounds that would shrink the cluster below
:attr:`PlatformConfig.min_surviving_hosts` active hosts are skipped — the
storm degrades the platform, it never destroys it.

Each executed failure is appended to ``platform.chaos_log`` as
``(time, host_id, replicas_failed)``; the per-replica fallout surfaces
through the normal ``replica_failure`` platform events, so hook
subscribers and the metrics collector see the storm without any new
event kind.
"""

from __future__ import annotations

__all__ = ["chaos_process"]


def chaos_process(platform, interval_s: float, min_surviving_hosts: int = 2):
    """Simulation process: periodically fail one random active host."""
    env = platform.env
    scheduler = platform.global_scheduler
    rng = platform.rng.substream("chaos")
    while True:
        yield interval_s
        cluster = platform.cluster
        active = cluster.active_hosts
        if len(active) <= min_surviving_hosts:
            continue
        victim = rng.choice(sorted(active, key=lambda h: h.host_id))
        local = cluster.scheduler_for(victim.host_id)
        doomed = [(kernel, replica)
                  for replica in list(local.replicas.values())
                  for kernel in [scheduler.kernels.get(replica.kernel_id)]
                  if kernel is not None]
        platform.chaos_log.append((env.now, victim.host_id, len(doomed)))
        # Mark the server dead *before* recreating its replicas so the
        # placement machinery (which only considers active hosts) cannot
        # resurrect a replica onto the host that just killed it.
        victim.decommission(env.now)
        # Fail every hosted replica; each is recreated elsewhere from its
        # persisted state through the normal placement machinery.
        for kernel, replica in doomed:
            yield from scheduler.handle_replica_failure(kernel, replica)
        yield from local.decommission()
        platform.provisioner.release(victim)
        cluster.remove_host(victim.host_id)
