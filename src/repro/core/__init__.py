"""The NotebookOS control plane.

This package implements the paper's primary contribution: the replicated
notebook platform itself.

* :mod:`repro.core.config` — platform and cluster configuration;
* :mod:`repro.core.placement` — kernel replica placement policies and the
  subscription-ratio accounting of §3.4.1;
* :mod:`repro.core.election` — the executor replica election protocol of
  §3.2.2 (LEAD / YIELD / VOTE proposals over the kernel's Raft log);
* :mod:`repro.core.gpu_binding` — dynamic GPU binding and the host↔GPU
  model-parameter copy costs of §3.3;
* :mod:`repro.core.distributed_kernel` — kernel replicas and the distributed
  kernel abstraction;
* :mod:`repro.core.local_scheduler` — the per-server Local Scheduler;
* :mod:`repro.core.global_scheduler` — the Global Scheduler: placement,
  routing, migration, and failure handling;
* :mod:`repro.core.autoscaler` — the auto-scaling policy of §3.4.2;
* :mod:`repro.core.platform` — the :class:`NotebookOSPlatform` facade and the
  :func:`run_experiment` entry point used by examples and benchmarks.
"""

from repro.core.config import ClusterConfig, PlatformConfig
from repro.core.election import ElectionOutcome, ExecutorElection, ReplicaProposal
from repro.core.gpu_binding import GpuBindingModel
from repro.core.distributed_kernel import DistributedKernel, KernelReplica, ReplicaState
from repro.core.placement import LeastLoadedPlacement, PlacementDecision, PlacementPolicy
from repro.core.local_scheduler import LocalScheduler
from repro.core.global_scheduler import GlobalScheduler
from repro.core.autoscaler import AutoScaler
from repro.core.platform import NotebookOSPlatform, run_experiment

__all__ = [
    "AutoScaler",
    "ClusterConfig",
    "DistributedKernel",
    "ElectionOutcome",
    "ExecutorElection",
    "GlobalScheduler",
    "GpuBindingModel",
    "KernelReplica",
    "LeastLoadedPlacement",
    "LocalScheduler",
    "NotebookOSPlatform",
    "PlacementDecision",
    "PlacementPolicy",
    "PlatformConfig",
    "ReplicaProposal",
    "ReplicaState",
    "run_experiment",
]
