"""The executor replica election protocol (§3.2.2, Figure 5).

Each time a user submits a cell, every replica of the target kernel appends a
LEAD or YIELD proposal to the kernel's Raft log — LEAD if the replica's host
can bind the GPUs the task needs, YIELD otherwise (or when the Global
Scheduler converted its request into a ``yield_request``).  The first LEAD
proposal committed by Raft wins; every replica then appends a VOTE for the
winner.  If all replicas YIELD, the election fails and the Global Scheduler
migrates one replica to a host with available resources.

The protocol logic here is exact; the Raft round-trip latency of the
propose/commit/vote cycle is either taken from a live Raft group (fidelity
``"raft"``) or sampled from a calibrated latency model (fidelity ``"model"``),
as configured in :class:`repro.core.config.PlatformConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.simulation.distributions import SeededRandom


@dataclass(frozen=True)
class ReplicaProposal:
    """One replica's LEAD / YIELD proposal for an election."""

    replica_id: str
    host_id: str
    lead: bool
    reason: str = ""

    @property
    def proposal(self) -> str:
        return "LEAD" if self.lead else "YIELD"


@dataclass
class ElectionOutcome:
    """The result of one executor election."""

    election_id: int
    winner: Optional[ReplicaProposal]
    proposals: List[ReplicaProposal] = field(default_factory=list)
    latency_s: float = 0.0
    converted_to_yield: int = 0

    @property
    def failed(self) -> bool:
        """All replicas yielded: the Global Scheduler must migrate a replica."""
        return self.winner is None

    @property
    def lead_count(self) -> int:
        return sum(1 for p in self.proposals if p.lead)

    def signature(self) -> tuple:
        """A compact, hashable record of everything this outcome decided.

        Differential tests compare signatures between the batched-columnar
        path and the frozen per-task reference — equal signatures mean the
        same winner, the same sampled Raft latency (i.e. the same RNG
        stream position), the same yield conversions, and the same
        proposals in the same order.
        """
        return (self.election_id,
                self.winner.replica_id if self.winner is not None else None,
                self.latency_s,
                self.converted_to_yield,
                tuple((p.replica_id, p.host_id, p.lead)
                      for p in self.proposals))


@dataclass
class ElectionLatencyModel:
    """Latency of the propose → commit → vote cycle (tens of milliseconds)."""

    median_s: float = 0.018
    sigma: float = 0.6
    minimum_s: float = 0.004

    def sample(self, rng: SeededRandom) -> float:
        return max(self.minimum_s,
                   rng.lognormvariate(math.log(self.median_s), self.sigma))


class ExecutorElection:
    """Runs executor elections for one distributed kernel."""

    def __init__(self, kernel_id: str, rng: Optional[SeededRandom] = None,
                 latency_model: Optional[ElectionLatencyModel] = None) -> None:
        self.kernel_id = kernel_id
        self._rng = rng or SeededRandom(hash(kernel_id) & 0x7FFFFFFF)
        self.latency_model = latency_model or ElectionLatencyModel()
        self.elections_held = 0
        self.failed_elections = 0
        self.outcomes: List[ElectionOutcome] = []
        self.last_executor_id: Optional[str] = None

    def decide(self, proposals: List[ReplicaProposal],
               preferred_replica: Optional[str] = None) -> ElectionOutcome:
        """Decide an election given every replica's proposal.

        ``preferred_replica`` models the Global Scheduler short-circuit: when
        the scheduler has sufficient resource information it designates the
        executor directly and converts the other replicas' requests into
        ``yield_request`` messages, bypassing the LEAD race (§3.2.2).  The
        designated replica still only wins if it proposed LEAD.
        """
        if not proposals:
            raise ValueError("an election requires at least one proposal")
        self.elections_held += 1
        election_id = self.elections_held

        effective = list(proposals)
        converted = 0
        if preferred_replica is not None:
            designated_can_lead = any(
                p.lead and p.replica_id == preferred_replica for p in proposals)
            if designated_can_lead:
                converted = sum(1 for p in proposals
                                if p.lead and p.replica_id != preferred_replica)
                effective = [
                    ReplicaProposal(replica_id=p.replica_id, host_id=p.host_id,
                                    lead=(p.replica_id == preferred_replica),
                                    reason="yield_request" if p.replica_id != preferred_replica
                                    else p.reason)
                    for p in proposals]

        lead_proposals = [p for p in effective if p.lead]
        winner: Optional[ReplicaProposal]
        if not lead_proposals:
            winner = None
            self.failed_elections += 1
        elif preferred_replica is not None and any(
                p.replica_id == preferred_replica for p in lead_proposals):
            winner = next(p for p in lead_proposals
                          if p.replica_id == preferred_replica)
        else:
            # Raft commits proposals in arrival order; with symmetric links the
            # first committed LEAD is effectively uniform among the leaders —
            # with a bias toward the previous executor, whose proposal path is
            # warm (this is what yields the high executor-reuse fraction the
            # paper reports in §5.3.2).
            previous = [p for p in lead_proposals
                        if p.replica_id == self.last_executor_id]
            if previous and self._rng.random() < 0.9:
                winner = previous[0]
            else:
                winner = self._rng.choice(lead_proposals)

        outcome = ElectionOutcome(election_id=election_id, winner=winner,
                                  proposals=list(proposals),
                                  latency_s=self.latency_model.sample(self._rng),
                                  converted_to_yield=converted)
        if winner is not None:
            self.last_executor_id = winner.replica_id
        self.outcomes.append(outcome)
        return outcome

    @property
    def failure_rate(self) -> float:
        if self.elections_held == 0:
            return 0.0
        return self.failed_elections / self.elections_held
