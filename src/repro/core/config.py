"""Platform and cluster configuration.

All tunables mentioned in the paper live here with the paper's values as
defaults: three replicas per distributed kernel, an auto-scaling multiplier
``f = 1.05``, a small pre-warmed container pool, and 8-GPU servers matching
the Adobe research cluster's p3.16xlarge instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.container import ContainerLatencyModel
from repro.cluster.host import HostSpec
from repro.cluster.prewarmer import PrewarmPolicy


@dataclass
class ClusterConfig:
    """Shape and size of the GPU server cluster."""

    initial_hosts: int = 30
    host_spec: HostSpec = field(default_factory=HostSpec)
    min_hosts: int = 1
    max_hosts: int = 120
    vm_boot_time_mean_s: float = 95.0

    def validate(self) -> None:
        if self.initial_hosts < 0:
            raise ValueError("initial_hosts must be non-negative")
        if not self.min_hosts <= max(1, self.initial_hosts) <= self.max_hosts:
            raise ValueError(
                f"require min_hosts <= initial_hosts <= max_hosts, got "
                f"{self.min_hosts} / {self.initial_hosts} / {self.max_hosts}")


@dataclass
class PlatformConfig:
    """Behavioural configuration of the NotebookOS control plane."""

    # Replication / scheduling (§3.2, §3.4).
    replication_factor: int = 3
    subscription_ratio_limit: Optional[float] = None  # None = dynamic cluster-wide limit
    subscription_high_watermark: float = 3.0
    oversubscription_enabled: bool = True
    # Columnar run state + batched policy decisions (repro.core.runstate):
    # same-timestamp admissions are batched into one decide_batch call per
    # policy per timestamp, and pure policy decisions are served from a
    # version-guarded cache.  Results are bit-identical either way (the
    # cache computes misses through the frozen per-task path); disabling
    # forces the frozen reference path end to end — differential tests and
    # the bench_policy A/B use this.
    policy_batching_enabled: bool = True

    # Auto-scaling (§3.4.2).
    autoscaler_enabled: bool = True
    autoscaler_interval_s: float = 60.0
    autoscaler_multiplier: float = 1.05
    scaling_buffer_hosts: int = 2
    max_scale_in_per_round: int = 2

    # Pre-warmed container pool (§3.2.3).
    prewarm_policy: PrewarmPolicy = field(default_factory=PrewarmPolicy)

    # Container provisioning latencies.
    container_latency: ContainerLatencyModel = field(default_factory=ContainerLatencyModel)

    # Data store backend for large-object checkpointing (§3.2.4).
    datastore_backend: str = "s3"

    # Kernel coordination fidelity: "model" samples Raft round-trip latencies
    # from a calibrated distribution; "raft" runs a live Raft group per kernel
    # (accurate but only practical for small workloads / protocol tests).
    kernel_fidelity: str = "model"

    # Control-plane hop latencies (seconds).
    jupyter_processing_s: float = 0.002
    gs_processing_s: float = 0.003
    ls_processing_s: float = 0.002
    network_hop_s: float = 0.001
    kernel_preprocess_s: float = 0.002

    # Migration (§3.2.3).  Retries cover the boot time of a scale-out the
    # migration itself may have triggered before the migration is aborted.
    migration_retry_interval_s: float = 15.0
    migration_max_retries: int = 20

    # Metrics.  Sketch mode trades per-task records for fixed-memory
    # percentile sketches (see MetricsCollector) — opt-in, because the
    # golden digests pin the exact-mode serialization.
    metrics_sample_interval_s: float = 60.0
    metrics_sketch_mode: bool = False
    metrics_sketch_compression: int = 300

    # Idle reclamation interval used by the GPU-hours-saved analysis (Fig. 13).
    idle_reclamation_interval_s: float = 3600.0

    # QoS control plane (repro.qos): a QosConfig (or its dict form) with
    # the declarative targets the closed-loop controller evaluates at
    # telemetry window closes.  None — the default — builds no controller
    # at all, so bare runs stay byte-identical to builds without the
    # subsystem (the golden digests pin this).
    qos: Optional[object] = None

    # Failure storm (repro.core.chaos): when set, the platform runs a
    # deterministic chaos process that decommissions one active host every
    # interval (victims chosen from the platform's own seeded substream),
    # failing the replicas on it through the Global Scheduler's normal
    # recovery path.  None disables the process entirely.
    host_failure_interval_s: Optional[float] = None
    # The chaos process skips a round rather than shrink the cluster
    # below this many active hosts.
    min_surviving_hosts: int = 2

    # Determinism.
    seed: int = 0

    def validate(self) -> None:
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be at least 1")
        if self.replication_factor == 2:
            # §3.1: a replication factor of 2 is unsupported by Raft.
            raise ValueError("a replication factor of 2 is unsupported by Raft")
        if self.autoscaler_multiplier < 1.0:
            raise ValueError("autoscaler_multiplier must be >= 1.0")
        if self.kernel_fidelity not in ("model", "raft"):
            raise ValueError("kernel_fidelity must be 'model' or 'raft'")
        if self.metrics_sample_interval_s <= 0:
            raise ValueError("metrics_sample_interval_s must be positive")
        if self.metrics_sketch_compression < 20:
            raise ValueError("metrics_sketch_compression must be >= 20")
        if self.host_failure_interval_s is not None \
                and self.host_failure_interval_s <= 0:
            raise ValueError("host_failure_interval_s must be positive")
        if self.min_surviving_hosts < 1:
            raise ValueError("min_surviving_hosts must be at least 1")
        self.qos = self.normalized_qos()
        if self.qos is not None:
            self.qos.validate()
        self.prewarm_policy.validate()

    def normalized_qos(self):
        """The ``qos`` block as a QosConfig (dicts are parsed), or None."""
        if self.qos is None or isinstance(self.qos, dict) and not self.qos:
            return None
        from repro.qos.targets import QosConfig

        if isinstance(self.qos, QosConfig):
            return self.qos
        if isinstance(self.qos, dict):
            return QosConfig.from_dict(self.qos)
        raise ValueError(f"qos must be a QosConfig or dict, "
                         f"got {type(self.qos).__name__}")
