"""Dynamic GPU binding and host↔GPU data movement costs (§3.3).

NotebookOS binds GPUs to a kernel replica right before it executes
user-submitted code and releases them as soon as the task completes.  On the
critical path it loads model parameters from host memory onto the allocated
GPUs ("typically ... up to a couple hundred milliseconds"), and after the
task it copies updated GPU state back to host memory before returning the
result to the user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.simulation.distributions import SeededRandom
from repro.workload.models import ModelProfile


@dataclass
class GpuBindingModel:
    """Latency model for GPU bind / unbind data movement."""

    # Effective host→GPU and GPU→host copy bandwidth (PCIe gen3 x16-ish after
    # framework overheads).
    host_to_gpu_bandwidth_bytes_per_s: float = 6e9
    gpu_to_host_bandwidth_bytes_per_s: float = 5e9
    bind_overhead_s: float = 0.020
    unbind_overhead_s: float = 0.010
    jitter_sigma: float = 0.15

    def _jitter(self, value: float, rng: Optional[SeededRandom]) -> float:
        if rng is None:
            return value
        return value * max(0.5, rng.gauss(1.0, self.jitter_sigma))

    def load_time(self, model: Optional[ModelProfile],
                  rng: Optional[SeededRandom] = None) -> float:
        """Time to load model parameters from host memory onto the GPUs."""
        parameter_bytes = model.parameter_bytes if model is not None else 0
        copy_time = parameter_bytes / self.host_to_gpu_bandwidth_bytes_per_s
        return self._jitter(self.bind_overhead_s + copy_time, rng)

    def unload_time(self, model: Optional[ModelProfile],
                    rng: Optional[SeededRandom] = None) -> float:
        """Time to copy updated GPU state back to host memory after a task."""
        parameter_bytes = model.parameter_bytes if model is not None else 0
        copy_time = parameter_bytes / self.gpu_to_host_bandwidth_bytes_per_s
        return self._jitter(self.unbind_overhead_s + copy_time, rng)
